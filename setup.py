"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) fail with
``invalid command 'bdist_wheel'``.  This shim enables the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
