"""Extension experiment: localization under simultaneous faults.

Section 4.3's algorithm "leverage[s] the fact that most switches in the
network are functioning well except some faulty ones" — PathInfer chases
*downstream flow tables* assuming they are healthy.  The paper only ever
injects one fault at a time; this bench stresses the assumption with 1-8
concurrent mis-forwardings on FT(k=4).

Measured finding: the assumption degrades *gracefully* — recovery stays
above 95% even with 8 simultaneously corrupted switches (of 20), because
a deviated packet's downstream chase only breaks when a *second* fault sits
on the specific detour it explores.
"""

import pytest

from repro.analysis import run_multi_fault_campaign
from repro.topologies import build_fattree

from conftest import print_table

FAULT_COUNTS = (1, 2, 4, 8)


def test_multi_fault_localization(benchmark):
    def sweep():
        return {
            n: run_multi_fault_campaign(
                build_fattree(4), num_faults=n, trials=10, seed=13
            )
            for n in FAULT_COUNTS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            n,
            r.failed_verifications,
            r.recovered_paths,
            f"{100 * r.localization_probability:.1f}%",
            f"{100 * r.blame_hit_rate:.1f}%",
        )
        for n, r in sorted(results.items())
    ]
    print_table(
        "Extension: PathInfer under simultaneous faults (FT k=4, 20 switches)",
        ["# faults", "# failed", "# recovered", "recovery", "blame hits"],
        rows,
        slug="multi_fault_localization",
    )
    # Single-fault baseline matches Table 3's regime.
    assert results[1].localization_probability >= 0.95
    # Graceful degradation: even at 8 concurrent faults, recovery holds up.
    assert results[8].localization_probability >= 0.85
    # More faults produce more verification failures (sanity).
    assert results[8].failed_verifications > results[1].failed_verifications
