"""Control-plane fast path gates (ISSUE 5): build + update + resync.

Three speedups, each with a BDD-fingerprint parity oracle against the
slow/reference path, land in ``benchmarks/results/BENCH_build.json``:

* **parallel full build** — partition-by-entry-port across a fork pool vs
  the serial builder, on a fat-tree (``REPRO_BUILD_FT_K``, default 6).
  The >=2x gate needs real cores; on starved runners the measured ratio is
  recorded honestly and the gate scales down (see ``_speedup_floor``).
* **coalesced churn** — staging ``REPRO_BUILD_CHURN`` (default 1000) rule
  events and flushing once vs applying them one-by-one; >=5x, always.
* **delta resync** — recompiling only the dirty pairs of a sharded-daemon
  replica vs a full ``build_shard_specs`` recompile; >=5x, always.

``REPRO_BENCH_PARITY_ONLY=1`` (the CI smoke mode) keeps every parity
assertion and drops the speed gates, so a queued shared runner cannot fail
the build on noise.
"""

import os
import pickle
import time

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.daemon import build_pair_spec, build_shard_specs, replica_digest, _shard_of
from repro.core.incremental import IncrementalPathTable
from repro.core.pathtable import PathTableBuilder
from repro.core.reports import PortCodec
from repro.persist.snapshot import table_fingerprint
from repro.topologies import (
    build_fattree,
    build_internet2,
    build_stanford,
    internet2_lpm_ruleset,
)

from conftest import env_int, print_table, write_json

PARITY_ONLY = os.environ.get("REPRO_BENCH_PARITY_ONLY") == "1"
FT_K = env_int("REPRO_BUILD_FT_K", 4 if PARITY_ONLY else 6)
CHURN_EVENTS = env_int("REPRO_BUILD_CHURN", 200 if PARITY_ONLY else 1000)
RESYNC_WORKERS = 4

_payload = {"parity_only": PARITY_ONLY}


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _speedup_floor(cpus: int) -> float:
    """The parallel-build gate, scaled to what the hardware can deliver.

    The ISSUE gate (>=2x on fat-tree k>=6) presumes >=4 usable cores; a
    2-core runner can at best approach 2x, and a 1-core runner can only go
    backwards (fork + pickle overhead with zero added compute).  The
    measured ratio and the cpu count are always recorded in
    ``BENCH_build.json`` so a capable machine's run is auditable.
    """
    if cpus >= 4:
        return 2.0
    if cpus >= 2:
        return 1.2
    return 0.0


def base_operations(ruleset):
    return [
        (switch, prefix, port)
        for switch, rules in sorted(ruleset.items())
        for prefix, port in rules
    ]


def churn_events(ruleset, count, target=None):
    """``count`` order-safe rule events: fresh adds, then del/re-add pairs.

    With ``target`` every event lands on that one switch — the paper's
    Figure 14 protocol (rules installed one-by-one into the last router);
    without it events cycle across every switch.
    """
    switches = sorted(ruleset)
    adds = count // 2
    events = [
        (
            "add",
            target or switches[i % len(switches)],
            f"172.{16 + i // 250}.{i % 250}.0/24",
            1,
        )
        for i in range(adds)
    ]
    redo = events[: count - adds - (count - adds) // 2]
    events += [("del", switch, prefix, None) for _op, switch, prefix, _p in redo]
    events += [("add", switch, prefix, port) for _op, switch, prefix, port in redo]
    return events[:count]


def populated_updater(scenario, ruleset):
    hs = HeaderSpace()
    inc = IncrementalPathTable(scenario.topo, hs)
    for switch, prefix, port in base_operations(ruleset):
        inc.add_rule(switch, prefix, port)
    return hs, inc


def test_parallel_build_speedup_and_parity():
    scenario = build_fattree(FT_K)
    cpus = usable_cpus()
    workers = max(2, cpus)

    hs_serial = HeaderSpace()
    serial = PathTableBuilder(scenario.topo, hs_serial).build()
    hs_par = HeaderSpace()
    parallel = PathTableBuilder(scenario.topo, hs_par).build(workers=workers)
    if parallel.build_workers == 1:
        pytest.skip("no fork start method on this platform")

    assert table_fingerprint(parallel, hs_par.bdd) == table_fingerprint(
        serial, hs_serial.bdd
    )
    speedup = serial.build_time_s / parallel.build_time_s
    floor = _speedup_floor(cpus)
    _payload["parallel_build"] = {
        "fattree_k": FT_K,
        "paths": serial.num_paths(),
        "serial_s": round(serial.build_time_s, 4),
        "parallel_s": round(parallel.build_time_s, 4),
        "workers": parallel.build_workers,
        "cpus": cpus,
        "speedup": round(speedup, 3),
        "gate_floor": floor,
    }
    print_table(
        f"Parallel path-table build, fat-tree k={FT_K}",
        ["metric", "value"],
        [
            ("serial (s)", f"{serial.build_time_s:.3f}"),
            ("parallel (s)", f"{parallel.build_time_s:.3f}"),
            ("workers / cpus", f"{parallel.build_workers} / {cpus}"),
            ("speedup", f"{speedup:.2f}x"),
            ("gate", f">={floor}x" if floor else "parity only (single cpu)"),
        ],
        slug="build_parallel",
    )
    if not PARITY_ONLY and floor:
        assert speedup >= floor


@pytest.mark.parametrize(
    "name,factory",
    [
        ("Stanford", lambda: build_stanford(subnets_per_zone=2)),
        ("Internet2", lambda: build_internet2(prefixes_per_pop=2)),
    ],
)
def test_parallel_parity_reference_topologies(name, factory):
    """The ISSUE's parity clause: parallel == serial on Stanford/Internet2."""
    scenario = factory()
    hs_serial = HeaderSpace()
    serial = PathTableBuilder(scenario.topo, hs_serial).build()
    hs_par = HeaderSpace()
    parallel = PathTableBuilder(scenario.topo, hs_par).build(workers=3)
    if parallel.build_workers == 1:
        pytest.skip("no fork start method on this platform")
    assert table_fingerprint(parallel, hs_par.bdd) == table_fingerprint(
        serial, hs_serial.bdd
    )
    _payload.setdefault("parallel_parity", {})[name] = True


def test_coalesced_churn_speedup_and_parity():
    scenario = build_internet2(prefixes_per_pop=2, install_routes=False)
    ruleset = internet2_lpm_ruleset(scenario)
    events = churn_events(ruleset, CHURN_EVENTS)

    hs_event, per_event = populated_updater(scenario, ruleset)
    started = time.perf_counter()
    for op, switch, prefix, port in events:
        if op == "add":
            per_event.add_rule(switch, prefix, port)
        else:
            per_event.delete_rule(switch, prefix)
    per_event_s = time.perf_counter() - started

    hs_coal, coalesced = populated_updater(scenario, ruleset)
    started = time.perf_counter()
    for op, switch, prefix, port in events:
        if op == "add":
            coalesced.stage_add_rule(switch, prefix, port)
        else:
            coalesced.stage_delete_rule(switch, prefix)
    flush = coalesced.flush_updates()
    coalesced_s = time.perf_counter() - started

    want = table_fingerprint(per_event.table, hs_event.bdd)
    assert table_fingerprint(coalesced.table, hs_coal.bdd) == want
    rebuilt = PathTableBuilder(
        scenario.topo, hs_coal, provider=coalesced.provider
    ).build()
    assert table_fingerprint(rebuilt, hs_coal.bdd) == want

    speedup = per_event_s / coalesced_s
    _payload["coalesced_churn"] = {
        "events": len(events),
        "per_event_s": round(per_event_s, 4),
        "coalesced_s": round(coalesced_s, 4),
        "per_event_ms_per_rule": round(1e3 * per_event_s / len(events), 4),
        "coalesced_ms_per_rule": round(1e3 * coalesced_s / len(events), 4),
        "dirty_switches": flush.dirty_switches,
        "dirty_ports": flush.dirty_ports,
        "speedup": round(speedup, 2),
    }
    print_table(
        f"Coalesced rule churn, Internet2, {len(events)} events",
        ["metric", "value"],
        [
            ("per-event total (s)", f"{per_event_s:.3f}"),
            ("coalesced total (s)", f"{coalesced_s:.3f}"),
            ("dirty switches / ports", f"{flush.dirty_switches} / {flush.dirty_ports}"),
            ("speedup", f"{speedup:.1f}x"),
            ("gate", "parity only" if PARITY_ONLY else ">=5x"),
        ],
        slug="build_coalesced",
    )
    if not PARITY_ONLY:
        assert speedup >= 5.0


def test_delta_resync_speedup_and_parity():
    """Dirty-pair patches vs whole-replica recompile, equally warm.

    Churn follows the paper's Figure 14 protocol — a burst of updates on
    one router — so the dirty region is a small fraction of the table's
    pairs, which is exactly the case the delta path exists for.
    """
    scenario = build_internet2(prefixes_per_pop=3, install_routes=False)
    ruleset = internet2_lpm_ruleset(scenario)
    churn = churn_events(ruleset, 24, target=sorted(ruleset)[-1])

    def churned(inc):
        for op, switch, prefix, port in churn:
            if op == "add":
                inc.add_rule(switch, prefix, port)
            else:
                inc.delete_rule(switch, prefix)

    # Two identical warm states: A measures the delta path, B the full
    # recompile, so neither benefits from the other's matcher cache.
    hs_a, inc_a = populated_updater(scenario, ruleset)
    hs_b, inc_b = populated_updater(scenario, ruleset)
    codec_a = PortCodec(sorted(scenario.topo.switches))
    codec_b = PortCodec(sorted(scenario.topo.switches))
    pre_specs = build_shard_specs(inc_a.table, hs_a, codec_a, RESYNC_WORKERS)
    build_shard_specs(inc_b.table, hs_b, codec_b, RESYNC_WORKERS)
    token = inc_a.table.dirty_token()
    churned(inc_a)
    churned(inc_b)

    # Delta path, as resync_replicas() runs it: journal -> per-pair specs
    # -> pickled patch messages.
    started = time.perf_counter()
    _token, dirty = inc_a.table.dirty_since(token)
    assert dirty is not None, "journal overflowed; enlarge the cap or shrink churn"
    patches = [{} for _ in range(RESYNC_WORKERS)]
    for inport, outport in dirty:
        in_wire = codec_a.encode(inport)
        out_wire = codec_a.encode(outport)
        shard = _shard_of((in_wire << 16) | out_wire, RESYNC_WORKERS)
        patches[shard][(in_wire, out_wire)] = build_pair_spec(
            inc_a.table, hs_a, inport, outport
        )
    delta_bytes = sum(len(pickle.dumps(p)) for p in patches if p)
    delta_s = time.perf_counter() - started

    # Full path, as the pre-delta resync ran it: any version bump threw the
    # whole pair-index cache away (reproduced here by an untracked touch),
    # then every pair's replica spec was rebuilt and shipped.
    inc_b.table.touch()
    started = time.perf_counter()
    full_specs = build_shard_specs(inc_b.table, hs_b, codec_b, RESYNC_WORKERS)
    full_bytes = sum(len(pickle.dumps(s)) for s in full_specs)
    full_s = time.perf_counter() - started

    # Parity: applying the patches to the pre-churn replicas must land on
    # the same digests as the full recompile (what the workers do live).
    for shard in range(RESYNC_WORKERS):
        replica = dict(pre_specs[shard])
        for key, spec in patches[shard].items():
            if spec is None:
                replica.pop(key, None)
            else:
                replica[key] = spec
        assert replica_digest(replica) == replica_digest(full_specs[shard])

    speedup = full_s / delta_s
    _payload["delta_resync"] = {
        "churn_events": len(churn),
        "pairs_total": len(inc_b.table.pairs()),
        "pairs_patched": len(dirty),
        "full_s": round(full_s, 4),
        "delta_s": round(delta_s, 4),
        "full_bytes": full_bytes,
        "delta_bytes": delta_bytes,
        "speedup": round(speedup, 2),
    }
    print_table(
        "Sharded-replica resync: dirty-pair delta vs full recompile",
        ["metric", "value"],
        [
            ("pairs (total / patched)", f"{len(inc_b.table.pairs())} / {len(dirty)}"),
            ("full recompile (s)", f"{full_s:.4f}"),
            ("delta patch (s)", f"{delta_s:.4f}"),
            ("bytes (full / delta)", f"{full_bytes} / {delta_bytes}"),
            ("speedup", f"{speedup:.1f}x"),
            ("gate", "parity only" if PARITY_ONLY else ">=5x"),
        ],
        slug="build_resync",
    )
    if not PARITY_ONLY:
        assert speedup >= 5.0


def test_zzz_write_results():
    """Runs last (name-ordered within the file): persist BENCH_build.json."""
    assert "coalesced_churn" in _payload and "delta_resync" in _payload
    path = write_json("BENCH_build", _payload)
    assert os.path.exists(path)
