"""Figure 12 — false negative rate vs Bloom filter size.

Paper reference: sweeping the tag width from 8 to 64 bits, both the
absolute (``n2/n``) and relative (``n2/n1``) false-negative rates fall
rapidly; at 16 bits the absolute rate is ~0.1% for Stanford, and both rates
hit zero for widths above 32 bits.  Verification has no false positives by
construction (asserted in the unit tests), so FNR fully characterises
detection accuracy.
"""

import pytest

from repro.analysis import sweep_fnr_over_bits

from conftest import FNR_TRIALS, print_table

BIT_WIDTHS = (8, 16, 24, 32, 48, 64)


def run_sweep(row):
    return sweep_fnr_over_bits(
        row.builder, row.table, bit_widths=BIT_WIDTHS, trials=FNR_TRIALS, seed=7
    )


@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row", "ft4_row"])
def test_fig12_sweep(benchmark, fixture, request):
    """One Figure 12 curve per topology (Stanford, Internet2, FT k=4)."""
    row = request.getfixturevalue(fixture)
    results = benchmark.pedantic(lambda: run_sweep(row), rounds=1, iterations=1)

    table_rows = [
        (
            row.setup,
            r.bits,
            r.trials,
            r.arrived,
            r.missed,
            f"{100 * r.absolute_fnr:.2f}%",
            f"{100 * r.relative_fnr:.2f}%",
        )
        for r in results
    ]
    print_table(
        f"Figure 12 ({row.setup}): FNR vs Bloom filter size "
        f"(paper: abs ~0.1% @16b Stanford, 0 above 32b)",
        ["setup", "bits", "n", "n1", "n2", "abs FNR", "rel FNR"],
        table_rows,
        slug=f"fig12_fnr_{row.setup.lower().replace('(', '').replace(')', '').replace('=', '')}",
    )

    by_bits = {r.bits: r for r in results}
    # Shape: relative >= absolute at every width.
    for r in results:
        assert r.relative_fnr >= r.absolute_fnr - 1e-12
    # Shape: FNR is (weakly) decreasing as the filter widens.
    rates = [by_bits[b].absolute_fnr for b in BIT_WIDTHS]
    assert all(a >= b - 0.01 for a, b in zip(rates, rates[1:]))
    # Paper: (essentially) zero above 32 bits.  Their sample showed exactly
    # zero; ours allows the statistically expected stray subset-collision.
    assert by_bits[48].absolute_fnr <= 0.001
    assert by_bits[64].absolute_fnr <= 0.001
    # Paper: small absolute FNR at the deployed 16-bit width.
    assert by_bits[16].absolute_fnr <= 0.05
