"""Ingest path: frame-native batched socket drain vs per-datagram loop.

The same healthy report stream (fat-tree k=4, compiled matchers) is blasted
over loopback UDP through :class:`UdpReportListener` at ``ingest_batch=1``
(the legacy recvfrom/submit loop) and at 128/256 (one blocking receive,
then a non-blocking ``recv_into`` drain into a preallocated frame buffer,
one ``submit_frame`` per wakeup).  Elapsed time covers first send through
``daemon.join()``, so the rate is the whole pipeline: socket, screen,
queue, and the vectorized wire-verification kernel.

The sender is paced against ``listener.received`` with a window smaller
than the kernel receive buffer, so loopback never drops and every run must
reconcile its ledger *exactly* — the parity phase then checks the modes
agree on processed/verified/failed/malformed, i.e. batching changed the
unit of transport, not one verdict.

Gate: the 128-drain rate must be >= 3x the per-datagram rate
(``REPRO_INGEST_FLOOR``; conditioned on >= 2 usable CPUs so the listener
and workers actually overlap, and skipped under
``REPRO_BENCH_PARITY_ONLY=1``).  A sampler-churn row times the O(1) LRU
eviction in :class:`FlowSampler` against the old min-scan policy it
replaced.  Machine-readable output lands in
``benchmarks/results/BENCH_ingest.json``.

Knobs: ``REPRO_INGEST_REPORTS`` (stream length),
``REPRO_INGEST_SAMPLER_TOUCHES`` (churn length).
"""

import os
import socket
import time

import pytest

from conftest import env_int, print_table, write_json

from repro.core.daemon import UdpReportListener, VeriDPDaemon
from repro.core.reports import pack_report
from repro.core.sampling import FlowSampler
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.topologies import build_fattree


PARITY_ONLY = os.environ.get("REPRO_BENCH_PARITY_ONLY") == "1"
TOTAL_REPORTS = env_int("REPRO_INGEST_REPORTS", 3_000 if PARITY_ONLY else 12_000)
SAMPLER_TOUCHES = env_int(
    "REPRO_INGEST_SAMPLER_TOUCHES", 20_000 if PARITY_ONLY else 100_000
)
INGEST_FLOOR = float(os.environ.get("REPRO_INGEST_FLOOR", "") or 3.0)
BATCHES = (1, 128, 256)

#: The scalar listener keeps the kernel's default receive buffer
#: (~208 KiB, ~270 small-datagram skbs on Linux), so the sender may never
#: run further ahead than the buffer can absorb: window + check stride
#: (64) stays under that capacity, and no loopback datagram is ever shed.
PACE_WINDOW = 192
PACE_STRIDE = 64
SEND_DEADLINE = 120.0

_results = []
_sampler_row = {}


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def ingest_floor(cpus: int) -> float:
    """The batched-vs-scalar gate, conditioned on real parallelism."""
    if PARITY_ONLY or cpus < 2:
        return 0.0
    return INGEST_FLOOR


@pytest.fixture(scope="module")
def report_stream():
    scenario = build_fattree(4)
    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    base = []
    for src, dst in scenario.host_pairs():
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        base += [pack_report(r, net.codec) for r in result.reports]
    payloads = []
    while len(payloads) < TOTAL_REPORTS:
        payloads += base
    server.refresh_if_dirty()
    server.table.compile_matchers(server.hs)
    return server, payloads[:TOTAL_REPORTS]


def run_mode(server, payloads, ingest_batch):
    daemon = VeriDPDaemon(server, workers=2, queue_size=len(payloads) + 1)
    daemon.start()
    listener = UdpReportListener(daemon, ingest_batch=ingest_batch)
    listener.start()
    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        started = time.perf_counter()
        deadline = time.monotonic() + SEND_DEADLINE
        for sent, payload in enumerate(payloads, start=1):
            sender.sendto(payload, listener.address)
            if sent % PACE_STRIDE == 0:
                while (
                    listener.received < sent - PACE_WINDOW
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.0005)
        while (
            listener.received < len(payloads)
            and time.monotonic() < deadline
        ):
            time.sleep(0.002)
        assert daemon.join(timeout=SEND_DEADLINE), daemon.stats()
        elapsed = time.perf_counter() - started
    finally:
        sender.close()
        listener.stop()
        daemon.stop()

    stats = daemon.stats()
    lstats = listener.stats()
    # Paced loopback means the ledger must reconcile to the report: every
    # datagram received, none shed anywhere along the path.
    assert lstats["received"] == len(payloads), lstats
    assert lstats["wrong_size"] == 0 and lstats["oversize"] == 0, lstats
    assert lstats["malformed"] == 0 and lstats["dropped"] == 0, lstats
    assert stats["submitted"] == len(payloads), stats
    assert (
        stats["processed"]
        + stats["malformed"]
        + stats["verify_errors"]
        + stats["dropped"]
        == len(payloads)
    ), stats
    assert stats["dropped"] == 0, stats
    return {
        "ingest_batch": ingest_batch,
        "reports_per_s": len(payloads) / elapsed,
        "elapsed_s": elapsed,
        "frames": stats["frames"],
        "wire_pass": stats["wire_pass"],
        "processed": stats["processed"],
        "verified": stats["verified"],
        "failed": stats["failed"],
        "malformed": stats["malformed"],
    }


@pytest.mark.parametrize("ingest_batch", BATCHES)
def test_ingest_path_throughput(report_stream, ingest_batch):
    server, payloads = report_stream
    _results.append(run_mode(server, payloads, ingest_batch))


def test_ingest_mode_parity():
    """Batching may change the transport unit, never a verdict."""
    if len(_results) < len(BATCHES):
        pytest.skip("throughput samples missing")
    scalar = _results[0]
    for result in _results[1:]:
        for key in ("processed", "verified", "failed", "malformed"):
            assert result[key] == scalar[key], (key, scalar, result)
    # The frame path actually engaged: frames were assembled and the wire
    # kernel bulk-passed rows the scalar loop verified one by one.
    for result in _results[1:]:
        assert result["frames"] > 0, result
        assert result["wire_pass"] > 0, result


class _MinScanSampler:
    """The pre-optimization eviction: O(n) scan for the oldest last hit."""

    def __init__(self, default_interval=1.0, capacity=None):
        self.default_interval = default_interval
        self.capacity = capacity
        self._state = {}

    def should_sample(self, flow_key, now):
        state = self._state.get(flow_key)
        if state is None:
            if self.capacity is not None and len(self._state) >= self.capacity:
                victim = min(self._state, key=lambda k: self._state[k][1])
                del self._state[victim]
            self._state[flow_key] = (now, now)
            return True
        last_sampled, _ = state
        if now - last_sampled > self.default_interval:
            self._state[flow_key] = (now, now)
            return True
        self._state[flow_key] = (last_sampled, now)
        return False


def _churn(sampler, touches, capacity):
    # 8x more distinct flows than table slots: almost every touch is a
    # miss, so every touch exercises the eviction policy.
    span = capacity * 8
    started = time.perf_counter()
    for i in range(touches):
        sampler.should_sample((i * 7919) % span, float(i))
    return touches / (time.perf_counter() - started)


def test_sampler_churn():
    """Satellite row: O(1) LRU eviction vs the min-scan it replaced.

    The reference gets 10x fewer touches (each of its misses scans the
    whole table); rates are per-touch so the comparison stays fair.
    """
    capacity = 512
    fast_rate = _churn(
        FlowSampler(default_interval=1.0, capacity=capacity),
        SAMPLER_TOUCHES,
        capacity,
    )
    ref_rate = _churn(
        _MinScanSampler(default_interval=1.0, capacity=capacity),
        max(1_000, SAMPLER_TOUCHES // 10),
        capacity,
    )
    _sampler_row.update(
        capacity=capacity,
        touches=SAMPLER_TOUCHES,
        lru_touches_per_s=fast_rate,
        minscan_touches_per_s=ref_rate,
        speedup=fast_rate / ref_rate,
    )
    if not PARITY_ONLY:
        assert fast_rate > ref_rate, _sampler_row


def test_ingest_report():
    if not _results:
        pytest.skip("no throughput samples collected")
    cpus = usable_cpus()
    floor = ingest_floor(cpus)
    base = _results[0]["reports_per_s"]
    rows = [
        (
            r["ingest_batch"],
            f"{r['reports_per_s']:,.0f}",
            f"{r['elapsed_s']:.2f}",
            r["frames"],
            f"{r['reports_per_s'] / base:.2f}x",
        )
        for r in _results
    ]
    if _sampler_row:
        rows.append((
            "lru-churn",
            f"{_sampler_row['lru_touches_per_s']:,.0f}",
            f"vs min-scan {_sampler_row['minscan_touches_per_s']:,.0f}",
            "-",
            f"{_sampler_row['speedup']:.2f}x",
        ))
    print_table(
        f"Ingest path: drained datagrams per wakeup ({TOTAL_REPORTS} reports "
        f"over loopback UDP, {cpus} cpus, "
        + (f"gate >={floor:.1f}x at batch 128" if floor else "gate off")
        + ")",
        ["ingest_batch", "reports/s", "elapsed s", "frames", "vs scalar"],
        rows,
        slug="BENCH_ingest",
    )
    speedup_at_128 = next(
        (
            r["reports_per_s"] / base
            for r in _results
            if r["ingest_batch"] == 128
        ),
        None,
    )
    write_json("BENCH_ingest", {
        "reports": TOTAL_REPORTS,
        "cpus": cpus,
        "parity_only": PARITY_ONLY,
        "results": _results,
        "sampler_churn": _sampler_row or None,
        "speedup_at_128": speedup_at_128,
        "floor": floor,
    })
    if floor and speedup_at_128 is not None:
        assert speedup_at_128 >= floor, (
            f"batched ingestion {speedup_at_128:.2f}x below the "
            f"{floor:.1f}x floor on {cpus} cpus"
        )
