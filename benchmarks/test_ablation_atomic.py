"""Ablation: direct BDD traversal vs atomic-predicate traversal ([56]).

The paper builds its header-set machinery on Yang & Lam's atomic
predicates.  This bench quantifies what that buys Algorithm 2: after a
one-time atomisation of all transfer predicates, every traversal
intersection becomes a native set operation.  The one-time cost amortises
across rebuilds (and in [56]'s setting, across all subsequent queries).

Output: per-topology traversal time direct vs atomic, atomisation cost,
and the number of atoms (tiny compared to 2^104 headers — the compression
that makes the technique work).
"""

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.atomic_builder import AtomicPathTableBuilder
from repro.core.pathtable import PathTableBuilder
from repro.topologies import build_fattree, build_internet2, build_stanford

from conftest import I2_PREFIXES, STANFORD_SUBNETS, print_table

SCENARIOS = [
    ("Stanford", lambda: build_stanford(subnets_per_zone=STANFORD_SUBNETS)),
    ("Internet2", lambda: build_internet2(prefixes_per_pop=I2_PREFIXES)),
    ("FT(k=6)", lambda: build_fattree(6)),
]

_rows = []


@pytest.mark.parametrize("name,factory", SCENARIOS, ids=[n for n, _ in SCENARIOS])
def test_atomic_vs_direct(benchmark, name, factory):
    scenario = factory()
    hs_direct = HeaderSpace()
    direct_builder = PathTableBuilder(scenario.topo, hs_direct)
    direct_table = direct_builder.build()

    hs_atomic = HeaderSpace()
    atomic_builder = AtomicPathTableBuilder(scenario.topo, hs_atomic)
    atomic_builder.build()  # includes one-time atomisation

    # Benchmark the *repeated* cost: one traversal with atoms ready.
    atomic_table = benchmark.pedantic(
        atomic_builder.build, rounds=3, iterations=1, warmup_rounds=1
    )

    speedup = direct_table.build_time_s / max(atomic_table.build_time_s, 1e-9)
    _rows.append(
        (
            name,
            f"{direct_table.build_time_s:.3f}",
            f"{atomic_table.build_time_s:.3f}",
            f"{atomic_builder.atomization_time_s:.3f}",
            len(atomic_builder.universe),
            f"{speedup:.1f}x",
        )
    )
    benchmark.extra_info.update(
        atoms=len(atomic_builder.universe),
        traversal_speedup=round(speedup, 2),
    )

    # The optimisation must not change the result.
    sig_direct = {
        (i, o, e.hops) for i, o, e in direct_table.all_entries()
    }
    sig_atomic = {
        (i, o, e.hops) for i, o, e in atomic_table.all_entries()
    }
    assert sig_direct == sig_atomic
    # And it must actually help the traversal.
    assert atomic_table.build_time_s < direct_table.build_time_s


def test_atomic_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if _rows:
        print_table(
            "Ablation: Algorithm 2 traversal, direct BDDs vs atomic predicates",
            ["setup", "direct (s)", "atomic (s)", "atomize (s)", "atoms", "speedup"],
            _rows,
            slug="ablation_atomic_predicates",
        )
