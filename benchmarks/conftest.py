"""Shared fixtures and reporting helpers for the paper-reproduction benches.

Every benchmark prints the table/figure it regenerates next to the paper's
reference numbers.  Scale knobs come from environment variables so CI can
run the quick defaults while a workstation reproduces at larger scale:

* ``REPRO_STANFORD_SUBNETS``  (default 2)  — subnets per Stanford zone,
* ``REPRO_I2_PREFIXES``       (default 3)  — prefixes per Internet2 PoP,
* ``REPRO_FNR_TRIALS``        (default 2000) — deviation trials per point,
* ``REPRO_LOC_TRIALS``        (default 15) — fault-injection trials.
"""

import json
import os

import pytest

from repro.analysis import build_and_measure
from repro.topologies import build_fattree, build_internet2, build_stanford


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


STANFORD_SUBNETS = env_int("REPRO_STANFORD_SUBNETS", 2)
I2_PREFIXES = env_int("REPRO_I2_PREFIXES", 3)
FNR_TRIALS = env_int("REPRO_FNR_TRIALS", 2000)
LOC_TRIALS = env_int("REPRO_LOC_TRIALS", 15)


@pytest.fixture(scope="session")
def stanford_row():
    return build_and_measure(
        build_stanford(subnets_per_zone=STANFORD_SUBNETS), "Stanford"
    )


@pytest.fixture(scope="session")
def internet2_row():
    return build_and_measure(
        build_internet2(prefixes_per_pop=I2_PREFIXES), "Internet2"
    )


@pytest.fixture(scope="session")
def ft4_row():
    return build_and_measure(build_fattree(4), "FT(k=4)")


@pytest.fixture(scope="session")
def ft6_row():
    return build_and_measure(build_fattree(6), "FT(k=6)")


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def print_table(title: str, headers, rows, slug: str = "") -> None:
    """Render an aligned text table; also persist it to benchmarks/results/.

    pytest captures stdout, so the persisted copy is what survives a normal
    ``pytest benchmarks/ --benchmark-only`` run; use ``-s`` to see it live.
    """
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "=" * 72,
        title,
        "=" * 72,
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += [
        "  ".join(str(c).ljust(w) for c, w in zip(row, widths)) for row in rows
    ]
    text = "\n".join(lines)
    print("\n" + text)
    if slug:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as handle:
            handle.write(text + "\n")


def write_json(slug: str, payload) -> str:
    """Persist machine-readable bench output to benchmarks/results/<slug>.json.

    The text tables are for humans; these files are for CI trend tracking
    and regression gates.  Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{slug}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
