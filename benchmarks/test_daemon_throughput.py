"""Daemon throughput — the paper's multi-threading expectation, tested.

Section 6.4: "Since the verification is still single-threaded without
optimization, we expect a higher throughput with multi-threading in the
future."  We measure a 1/2/4-worker daemon on the same report stream.

Honest finding: in *CPython* the verification fast path is CPU-bound and
GIL-serialised, so threads add queueing overhead without parallel speedup —
the paper's expectation holds for their C implementation, not for this one.
The bench reports the numbers rather than hiding them; the single-threaded
figure is the meaningful Python datum (compare Figure 13).
"""

import pytest

from repro.core.daemon import VeriDPDaemon
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.topologies import build_fattree

from conftest import print_table

_rows = []


@pytest.fixture(scope="module")
def report_stream():
    scenario = build_fattree(4)
    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    payloads = []
    for src, dst in scenario.host_pairs():
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        payloads += [pack_report(r, net.codec) for r in result.reports]
    payloads = payloads * 8  # ~2k reports
    return server, payloads


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_daemon_throughput(benchmark, report_stream, workers):
    server, payloads = report_stream

    def run():
        daemon = VeriDPDaemon(server, workers=workers, queue_size=len(payloads) + 1)
        daemon.start()
        for payload in payloads:
            daemon.submit(payload)
        daemon.join()
        daemon.stop()
        return daemon.stats()

    stats = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    assert stats["processed"] == len(payloads)
    assert stats["failed"] == 0
    reports_per_s = len(payloads) / benchmark.stats["mean"]
    _rows.append((workers, len(payloads), f"{reports_per_s:,.0f}"))
    benchmark.extra_info.update(reports_per_s=int(reports_per_s))


def test_daemon_throughput_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if _rows:
        print_table(
            "Daemon throughput vs workers (GIL-bound: flat is the expected "
            "CPython result; the paper's C server would scale)",
            ["workers", "reports", "reports/s"],
            sorted(_rows),
            slug="daemon_throughput",
        )
