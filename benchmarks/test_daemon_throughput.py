"""Daemon throughput — the paper's multi-threading expectation, tested.

Section 6.4: "Since the verification is still single-threaded without
optimization, we expect a higher throughput with multi-threading in the
future."  We measure a 1/2/4-worker daemon on the same report stream in two
execution modes:

* **thread** — :class:`VeriDPDaemon`, shared-memory worker threads.  In
  CPython the verification fast path is CPU-bound and GIL-serialised, so
  threads add queueing overhead without parallel speedup — the paper's
  expectation holds for their C implementation, not for this mode.
* **process** — :class:`ShardedVeriDPDaemon`, one OS process per shard with
  its own compiled path-table replica, sidestepping the GIL.  Scaling here
  is bounded by available CPU cores: the monotonic 1->4 worker gate only
  arms when the machine actually exposes 4+ cores, otherwise the honest
  (flat or IPC-dominated) curve is recorded without pretending otherwise.

Machine-readable output lands in ``benchmarks/results/BENCH_daemon.json``.
"""

import os

import pytest

from repro.core.daemon import ShardedVeriDPDaemon, VeriDPDaemon
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.topologies import build_fattree

from conftest import print_table, write_json

#: (mode, workers) -> reports/s, filled by the parametrized benches.
_rates = {}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def report_stream():
    scenario = build_fattree(4)
    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    payloads = []
    for src, dst in scenario.host_pairs():
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        payloads += [pack_report(r, net.codec) for r in result.reports]
    payloads = payloads * 8  # ~2k reports
    server.refresh_if_dirty()
    server.table.compile_matchers(server.hs)
    return server, payloads


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_daemon_thread_throughput(benchmark, report_stream, workers):
    server, payloads = report_stream

    def run():
        daemon = VeriDPDaemon(server, workers=workers, queue_size=len(payloads) + 1)
        daemon.start()
        for payload in payloads:
            daemon.submit(payload)
        daemon.join()
        daemon.stop()
        return daemon.stats()

    stats = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    assert stats["processed"] == len(payloads)
    assert stats["failed"] == 0
    reports_per_s = len(payloads) / benchmark.stats["mean"]
    _rates[("thread", workers)] = (len(payloads), reports_per_s)
    benchmark.extra_info.update(mode="thread", reports_per_s=int(reports_per_s))


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_daemon_process_throughput(benchmark, report_stream, workers):
    server, payloads = report_stream

    def run():
        daemon = ShardedVeriDPDaemon(server, workers=workers)
        daemon.start()
        for payload in payloads:
            daemon.submit(payload)
        daemon.join()
        daemon.stop()
        return daemon.stats()

    stats = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    assert stats["processed"] == len(payloads)
    assert stats["failed"] == 0
    reports_per_s = len(payloads) / benchmark.stats["mean"]
    _rates[("process", workers)] = (len(payloads), reports_per_s)
    benchmark.extra_info.update(mode="process", reports_per_s=int(reports_per_s))


def test_daemon_throughput_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rates:
        pytest.skip("no throughput samples collected")
    cores = _available_cores()
    rows = [
        (mode, workers, reports, f"{rate:,.0f}")
        for (mode, workers), (reports, rate) in sorted(_rates.items())
    ]
    print_table(
        f"Daemon throughput vs workers ({cores} CPU core(s) available; "
        "thread mode is GIL-bound by design, process mode scales with cores)",
        ["mode", "workers", "reports", "reports/s"],
        rows,
        slug="daemon_throughput",
    )
    write_json(
        "BENCH_daemon",
        {
            "cpu_cores": cores,
            "modes": {
                mode: {
                    str(workers): round(rate)
                    for (m, workers), (_, rate) in sorted(_rates.items())
                    if m == mode
                }
                for mode in {m for m, _ in _rates}
            },
        },
    )
    process_curve = [
        rate for (m, _), (_, rate) in sorted(_rates.items()) if m == "process"
    ]
    if cores >= 4 and len(process_curve) == 3:
        # Only meaningful when the hardware can actually run 4 workers in
        # parallel; on smaller boxes the curve is recorded but not gated.
        assert process_curve == sorted(process_curve), (
            f"process mode should scale monotonically 1->4 workers on a "
            f"{cores}-core machine, got {process_curve}"
        )


@pytest.mark.parametrize("policy", ["block", "drop-new", "drop-oldest"])
def test_daemon_overflow_policy_throughput(benchmark, report_stream, policy):
    """Backpressure bookkeeping must not tax the happy path.

    The queue is sized to the stream, so no policy actually drops here —
    this row isolates the per-submit cost of the policy machinery itself.
    """
    server, payloads = report_stream

    def run():
        daemon = VeriDPDaemon(
            server, workers=2, queue_size=len(payloads) + 1, overflow=policy
        )
        daemon.start()
        for payload in payloads:
            daemon.submit(payload)
        daemon.join()
        daemon.stop()
        return daemon.stats()

    stats = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    assert stats["processed"] == len(payloads)
    assert stats["dropped"] == 0
    reports_per_s = len(payloads) / benchmark.stats["mean"]
    _rates[(f"thread/{policy}", 2)] = (len(payloads), reports_per_s)
    benchmark.extra_info.update(mode=f"thread/{policy}", reports_per_s=int(reports_per_s))


def test_daemon_supervised_restart_cost(benchmark, report_stream):
    """Throughput of a supervised run that loses (and restarts) one worker.

    The delta against the plain 2-worker process row is the price of one
    SIGKILL: backoff, respawn, replica rebuild, and batch salvage.
    """
    from repro.core.resilience import RestartBackoff

    server, payloads = report_stream

    def run():
        daemon = ShardedVeriDPDaemon(
            server,
            workers=2,
            restart_budget=3,
            poll_interval=0.02,
            backoff=RestartBackoff(base=0.01, cap=0.05),
        )
        daemon.start()
        for i, payload in enumerate(payloads):
            daemon.submit(payload)
            if i == len(payloads) // 2:
                daemon.kill_worker(0)
        daemon.join()
        daemon.stop()
        return daemon.stats()

    stats = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=1)
    assert stats["restarts"] >= 1
    assert not stats["degraded"]
    assert (
        stats["processed"]
        + stats["malformed"]
        + stats["verify_errors"]
        + stats["dropped_full_queue"]
        + stats["lost_in_restart"]
        == len(payloads)
    )
    reports_per_s = len(payloads) / benchmark.stats["mean"]
    _rates[("process/1-kill", 2)] = (len(payloads), reports_per_s)
    benchmark.extra_info.update(mode="process/1-kill", reports_per_s=int(reports_per_s))
