"""Figure 13 — time to verify a tag report on the VeriDP server.

Paper reference: 2-3 microseconds per report for Stanford and Internet2 on
an i7 desktop (C-speed), i.e. ~5x10^5 verifications/second single-threaded.

Two implementations are timed side by side:

* **slow** — the paper-literal Algorithm 3: scan the pair's entries in
  order, recursive-BDD containment per candidate.  This is the correctness
  reference.
* **fast** — compiled flat-array matchers + tag-first candidate ordering +
  a bounded per-flow cache.  Verdict-identical to the slow path (asserted
  below via an exhaustive parity sweep) but an order of magnitude cheaper,
  which puts pure Python inside the paper's C-implementation envelope.
* **vector** — the numpy batch kernel (``core.vector``) over wire
  payload frames, the sharded daemon's default dispatch path.  Targets
  >5M verifs/s/core (``REPRO_FIG13_VECTOR_FLOOR``); verdict parity with
  the scalar wire path is gated by an exhaustive per-payload sweep.

Machine-readable output lands in ``benchmarks/results/BENCH_fig13.json``.
"""

import os

import pytest

from repro.analysis import (
    check_fastpath_parity,
    check_vector_wire_parity,
    measure_verification_time,
    measure_vector_verification_time,
    reports_from_table,
)
from repro.core.verifier import Verifier

from conftest import print_table, write_json

#: (setup, mode) -> VerificationTimingResult, filled by the sweep tests so
#: the report test reuses their measurements instead of re-timing.
_timings = {}

#: Seed (pre-fast-path) means from this reproduction, for the JSON trend file.
_SEED_MEAN_US = {"Stanford": 20.43, "Internet2": 14.67}

#: Acceptance floor for the vector row, in verifications/second/core.  The
#: gate gladly takes the best of several runs — shared CI boxes jitter
#: 10-30% run to run, and the floor is about kernel capability, not about
#: one quiet scheduler slice.
VECTOR_FLOOR = float(os.environ.get("REPRO_FIG13_VECTOR_FLOOR", "") or 5e6)
_VECTOR_BEST_OF = 3


def _vector_sweep(row):
    key = (row.setup, "vector")
    if key not in _timings:
        best = None
        for _ in range(_VECTOR_BEST_OF):
            timing = measure_vector_verification_time(
                row.builder, row.table, f"{row.setup}/vector"
            )
            if best is None or timing.mean_us < best.mean_us:
                best = timing
        _timings[key] = best
    return _timings[key]


def _sweep(row, mode):
    key = (row.setup, mode)
    if key not in _timings:
        _timings[key] = measure_verification_time(
            row.builder,
            row.table,
            f"{row.setup}/{mode}",
            repeats=20,
            fast_path=(mode != "slow"),
            flow_cache=(mode == "fast"),
        )
    return _timings[key]


@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row"])
def test_fig13_verify_one_report(benchmark, fixture, request):
    """pytest-benchmark timing of a single Algorithm 3 verification."""
    row = request.getfixturevalue(fixture)
    reports = reports_from_table(row.builder, row.table, limit=256)
    row.table.compile_matchers(row.builder.hs)
    verifier = Verifier(row.table, row.builder.hs)
    cycle = iter(range(len(reports)))

    def verify_next():
        nonlocal cycle
        try:
            index = next(cycle)
        except StopIteration:
            cycle = iter(range(len(reports)))
            index = next(cycle)
        return verifier.verify(reports[index])

    result = benchmark(verify_next)
    assert result.passed


@pytest.mark.parametrize("mode", ["slow", "nocache", "fast"])
@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row"])
def test_fig13_full_table_sweep(benchmark, fixture, mode, request):
    """The paper's protocol: verify every path's report repeatedly, average.

    ``slow`` is the paper-literal reference, ``nocache`` isolates the
    compiled-matcher contribution, ``fast`` is the full fast path.
    """
    row = request.getfixturevalue(fixture)
    timing = benchmark.pedantic(
        lambda: _sweep(row, mode), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        mode=mode,
        mean_us=round(timing.mean_us, 2),
        throughput=int(timing.throughput_per_s),
    )
    # Shape: all reports verified; throughput far above report rates that
    # sampled production traffic would generate.
    assert timing.reports == row.stats.num_paths
    assert timing.throughput_per_s > 1e4


@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row"])
def test_fig13_vector_sweep(benchmark, fixture, request):
    """The ``vector`` row: wire-frame batches through the numpy kernel.

    Acceptance gate: >5M verifs/s/core on Stanford AND Internet2 (best-of
    timing; override the floor with ``REPRO_FIG13_VECTOR_FLOOR``).
    """
    pytest.importorskip("numpy")
    row = request.getfixturevalue(fixture)
    timing = benchmark.pedantic(
        lambda: _vector_sweep(row), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        mode="vector",
        mean_us=round(timing.mean_us, 4),
        throughput=int(timing.throughput_per_s),
    )
    assert timing.throughput_per_s > VECTOR_FLOOR, (
        f"{row.setup}: vector path {timing.throughput_per_s:,.0f} verifs/s "
        f"under the {VECTOR_FLOOR:,.0f} floor"
    )


@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row"])
def test_fig13_vector_parity(benchmark, fixture, request):
    """The vector kernel must be verdict-identical to the scalar wire path
    on every table payload plus tampered/truncated/bad-version variants."""
    pytest.importorskip("numpy")
    row = request.getfixturevalue(fixture)
    mismatches = benchmark.pedantic(
        lambda: check_vector_wire_parity(row.builder, row.table),
        rounds=1,
        iterations=1,
    )
    assert mismatches == []


@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row"])
def test_fig13_fastpath_parity(benchmark, fixture, request):
    """The fast path must be verdict-identical to the recursive reference —
    on every table report and on tampered (wrong-tag) variants."""
    from repro.core.reports import TagReport

    row = request.getfixturevalue(fixture)
    reports = reports_from_table(row.builder, row.table)
    tampered = [
        TagReport(r.inport, r.outport, r.header, r.tag ^ 0x3C3C) for r in reports
    ]
    mismatches = benchmark.pedantic(
        lambda: check_fastpath_parity(row.builder, row.table, reports + tampered),
        rounds=1,
        iterations=1,
    )
    assert mismatches == []


def test_fig13_report(benchmark, stanford_row, internet2_row):
    """Print the Figure 13 reproduction and write BENCH_fig13.json."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    try:
        import numpy  # noqa: F401

        have_numpy = True
    except Exception:
        have_numpy = False
    rows, payload = [], {}
    for row in (stanford_row, internet2_row):
        per_mode = {mode: _sweep(row, mode) for mode in ("slow", "nocache", "fast")}
        if have_numpy:
            per_mode["vector"] = _vector_sweep(row)
        speedup = per_mode["slow"].mean_us / per_mode["fast"].mean_us
        for mode, t in per_mode.items():
            if mode == "fast":
                note = f"{speedup:.1f}x"
            elif mode == "vector":
                note = f"{per_mode['slow'].mean_us / t.mean_us:.0f}x"
            else:
                note = ""
            rows.append(
                (
                    t.label,
                    t.reports,
                    f"{t.mean_us:.2f}",
                    f"{t.median_us:.2f}",
                    f"{t.p99_us:.2f}",
                    f"{t.throughput_per_s:,.0f}",
                    note,
                    "2-3 us (C, i7)",
                )
            )
        payload[row.setup] = {
            "reports": per_mode["fast"].reports,
            "repeats": per_mode["fast"].repeats,
            "seed_mean_us": _SEED_MEAN_US.get(row.setup),
            "speedup_vs_slow": round(speedup, 2),
            **{
                mode: {
                    "mean_us": round(t.mean_us, 3),
                    "median_us": round(t.median_us, 3),
                    "p99_us": round(t.p99_us, 3),
                    "verifs_per_s": round(t.throughput_per_s),
                }
                for mode, t in per_mode.items()
            },
        }
    print_table(
        "Figure 13: verification time per tag report (slow = paper-literal "
        "recursive BDD scan, fast = compiled matchers + flow cache, "
        "vector = numpy wire-frame batch kernel)",
        [
            "setup",
            "reports",
            "mean us",
            "median us",
            "p99 us",
            "verifs/s",
            "speedup",
            "paper",
        ],
        rows,
        slug="fig13_verification_time",
    )
    write_json("BENCH_fig13", payload)
    # Gates: the fast path must beat the paper-literal reference by >= 3x on
    # every topology (acceptance criterion), and the slow/fast curves must
    # both stay flat across topologies (lookup is O(paths per pair)).
    for setup, data in payload.items():
        assert data["speedup_vs_slow"] >= 3.0, (
            f"{setup}: fast path only {data['speedup_vs_slow']}x vs slow"
        )
    for mode in ("slow", "fast"):
        means = [data[mode]["mean_us"] for data in payload.values()]
        assert max(means) <= 3 * min(means)
