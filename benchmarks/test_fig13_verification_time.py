"""Figure 13 — time to verify a tag report on the VeriDP server.

Paper reference: 2-3 microseconds per report for Stanford and Internet2 on
an i7 desktop (C-speed), i.e. ~5x10^5 verifications/second single-threaded.
Pure Python is 1-2 orders slower per operation, so the absolute target here
is the *shape*: per-report time flat across topologies (lookup is O(paths
per pair), not O(table size)) and comfortably above 10^4 verifications/s.
"""

import pytest

from repro.analysis import measure_verification_time, reports_from_table
from repro.core.verifier import Verifier

from conftest import print_table

_timings = {}


@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row"])
def test_fig13_verify_one_report(benchmark, fixture, request):
    """pytest-benchmark timing of a single Algorithm 3 verification."""
    row = request.getfixturevalue(fixture)
    reports = reports_from_table(row.builder, row.table, limit=256)
    verifier = Verifier(row.table, row.builder.hs)
    cycle = iter(range(len(reports)))

    def verify_next():
        nonlocal cycle
        try:
            index = next(cycle)
        except StopIteration:
            cycle = iter(range(len(reports)))
            index = next(cycle)
        return verifier.verify(reports[index])

    result = benchmark(verify_next)
    assert result.passed


@pytest.mark.parametrize("fixture", ["stanford_row", "internet2_row"])
def test_fig13_full_table_sweep(benchmark, fixture, request):
    """The paper's protocol: verify every path's report repeatedly, average."""
    row = request.getfixturevalue(fixture)

    def sweep():
        return measure_verification_time(
            row.builder, row.table, row.setup, repeats=20
        )

    timing = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _timings[row.setup] = timing
    benchmark.extra_info.update(
        mean_us=round(timing.mean_us, 2),
        throughput=int(timing.throughput_per_s),
    )
    # Shape: all reports verified; throughput far above report rates that
    # sampled production traffic would generate.
    assert timing.reports == row.stats.num_paths
    assert timing.throughput_per_s > 1e4


def test_fig13_report(benchmark, stanford_row, internet2_row):
    """Print the Figure 13 reproduction."""
    for row in (stanford_row, internet2_row):
        if row.setup not in _timings:
            _timings[row.setup] = measure_verification_time(
                row.builder, row.table, row.setup, repeats=20
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        (
            t.label,
            t.reports,
            f"{t.mean_us:.2f}",
            f"{t.median_us:.2f}",
            f"{t.p99_us:.2f}",
            f"{t.throughput_per_s:,.0f}",
            "2-3 us (C, i7)",
        )
        for t in _timings.values()
    ]
    print_table(
        "Figure 13: verification time per tag report",
        ["setup", "reports", "mean us", "median us", "p99 us", "verifs/s", "paper"],
        rows,
        slug="fig13_verification_time",
    )
    # Shape: Stanford and Internet2 within ~3x of each other (flat curve).
    means = [t.mean_us for t in _timings.values()]
    assert max(means) <= 3 * min(means)
