"""Slice-layer overhead bench: attribution cost and incremental isolation.

The multi-tenant layer must be effectively free on the hot path: per-report
tenant attribution is a longest-prefix-match dict probe (no BDD
evaluation), so the verify pipeline's per-report cost may grow by at most
10% over the unsliced baseline — and that bound must hold whether the
fabric carries 1, 8 or 32 tenants (tenant-count independence).

The second gate covers the isolation verifier: after a single-rule flush,
the incremental recheck must examine strictly fewer (pair, tenant) proofs
than the full pairwise sweep — scoped by the dirty-pair journal and the
change feed's victim set — and be measurably faster.

Machine-readable output lands in ``benchmarks/results/BENCH_slice.json``.
"""

import gc
import time

from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.slice.isolation import IsolationVerifier
from repro.slice.registry import SliceRegistry, TenantSpec
from repro.topologies import build_fattree
from repro.topologies.base import lpm_ruleset_for

from conftest import print_table, write_json

TENANT_COUNTS = [1, 8, 32]
OVERHEAD_GATE = 0.10  # sliced per-report cost <= 1.10x unsliced
REPLAYS = 6  # batch replays per measurement
REPEATS = 5  # interleaved measurement rounds per config (min taken)


def _split_prefix(prefix: str) -> list:
    """One /24 -> its two /25 halves (to mint 32 disjoint prefixes)."""
    base, plen = prefix.rsplit("/", 1)
    plen = int(plen)
    octets = [int(o) for o in base.split(".")]
    value = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
    half = 1 << (32 - plen - 1)
    out = []
    for v in (value, value | half):
        out.append(
            f"{v >> 24}.{(v >> 16) & 255}.{(v >> 8) & 255}.{v & 255}/{plen + 1}"
        )
    return out


def _prefix_groups(subnets, count):
    """Partition the fabric's address space into ``count`` disjoint groups."""
    prefixes = sorted(subnets.values())
    if count > len(prefixes):
        prefixes = sorted(p for prefix in prefixes for p in _split_prefix(prefix))
    groups = [[] for _ in range(count)]
    for i, prefix in enumerate(prefixes):
        groups[i % count].append(prefix)
    return groups


def _attribution_registry(server, count):
    """``count`` prefix-only tenants (attribution cost, no port ownership)."""
    registry = SliceRegistry(server.hs)
    scenario_subnets = server.topo_subnets
    for i, group in enumerate(_prefix_groups(scenario_subnets, count)):
        registry.register(
            TenantSpec(name=f"t{i:02d}", prefixes=tuple(group))
        )
    return registry


def _report_batch():
    """A fixed wire-format report batch off every FT(k=4) host pair."""
    scenario = build_fattree(4)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    payloads = []
    for src, dst in scenario.host_pairs():
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        payloads.extend(
            pack_report(report, net.codec) for report in result.reports
        )
    return scenario, payloads


def _replay(server, payloads) -> float:
    """Seconds for one gc-quiesced replay of the batch."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(REPLAYS):
            for payload in payloads:
                server.receive_report_bytes(payload)
        return time.perf_counter() - start
    finally:
        gc.enable()


def test_per_report_attribution_overhead(benchmark):
    scenario, payloads = _report_batch()

    def sweep():
        servers = {}
        base_server = VeriDPServer(scenario.topo, scenario.channel)
        base_server.topo_subnets = scenario.subnets
        servers["unsliced"] = base_server
        for count in TENANT_COUNTS:
            server = VeriDPServer(scenario.topo, scenario.channel)
            server.topo_subnets = scenario.subnets
            server.set_slices(_attribution_registry(server, count))
            servers[f"{count}-tenant"] = server
        # Interleave the configs round-robin so clock drift, GC pressure
        # and cache effects land on every config equally — sequential
        # blocks systematically penalise whichever config runs last.
        best = {key: float("inf") for key in servers}
        for key, server in servers.items():  # warm-up pass
            _replay(server, payloads)
        for _ in range(REPEATS):
            for key, server in servers.items():
                best[key] = min(best[key], _replay(server, payloads))
        per_report = len(payloads) * REPLAYS
        for count in TENANT_COUNTS:
            server = servers[f"{count}-tenant"]
            # Attribution really happened: every report found its tenant.
            assert sum(server.tenant_reports.values()) == (REPEATS + 1) * per_report
            assert "" not in server.tenant_reports
        return {key: value / per_report for key, value in best.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    base = results["unsliced"]
    rows = [("unsliced", f"{base * 1e6:.2f}", "1.00x", "-")]
    payload = {"per_report_us": {"unsliced": base * 1e6}, "gate": OVERHEAD_GATE}
    for count in TENANT_COUNTS:
        cost = results[f"{count}-tenant"]
        rows.append(
            (
                f"{count} tenants",
                f"{cost * 1e6:.2f}",
                f"{cost / base:.2f}x",
                f"<= {1 + OVERHEAD_GATE:.2f}x",
            )
        )
        payload["per_report_us"][f"tenants_{count}"] = cost * 1e6
    print_table(
        "per-report verify cost under slicing (FT(k=4), "
        f"{len(payloads)} reports/batch)",
        ["config", "us/report", "vs unsliced", "gate"],
        rows,
        slug="slice_overhead",
    )
    write_json("BENCH_slice", payload)
    for count in TENANT_COUNTS:
        cost = results[f"{count}-tenant"]
        assert cost <= base * (1 + OVERHEAD_GATE), (
            f"{count}-tenant per-report cost {cost * 1e6:.2f}us exceeds "
            f"{1 + OVERHEAD_GATE:.2f}x the unsliced {base * 1e6:.2f}us"
        )


def test_incremental_recheck_beats_full_sweep(benchmark):
    scenario = build_fattree(4)
    hosts = sorted(scenario.subnets)
    server = VeriDPServer(scenario.topo, channel=None, incremental=True)
    ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
    for switch in sorted(ruleset):
        for prefix, port in ruleset[switch]:
            server.apply_rule_update(switch, prefix, port)
    registry = SliceRegistry(server.hs, scenario.topo)
    groups = [[] for _ in range(8)]
    for i, host in enumerate(hosts):
        groups[i % 8].append(host)
    for i, members in enumerate(groups):
        registry.register(
            TenantSpec(
                name=f"t{i}",
                prefixes=tuple(scenario.subnets[h] for h in members),
                hosts=tuple(members),
            )
        )
    iso = IsolationVerifier(
        registry,
        server.table,
        server.hs,
        provider=server._provider,
        updater=server.updater,
    )

    def measure():
        start = time.perf_counter()
        iso.check_full()
        full_s = time.perf_counter() - start
        full_pairs = iso.last_tenant_pairs
        # One-rule flush: leak a /26 of t0's subnet to t1's edge port — the
        # recheck has real cross-tenant proofs to run, scoped to the dirty
        # pairs and the change feed's victim set.
        offender = scenario.topo.host_port(hosts[1])
        sub = scenario.subnets[hosts[0]].rsplit("/", 1)[0] + "/26"
        server.apply_rule_update(offender.switch, sub, offender.port)
        start = time.perf_counter()
        incidents = iso.recheck()
        incr_s = time.perf_counter() - start
        incr_pairs = iso.last_tenant_pairs
        server.apply_rule_delete(offender.switch, sub)
        iso.recheck()  # heal, re-arm the cursors
        return {
            "full_s": full_s,
            "incr_s": incr_s,
            "full_tenant_pairs": full_pairs,
            "incr_tenant_pairs": incr_pairs,
            "victims": sorted(iso.last_victims or []),
            "incidents": len(incidents),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)

    speedup = result["full_s"] / max(result["incr_s"], 1e-9)
    print_table(
        "isolation recheck: incremental vs full (FT(k=4), 8 tenants)",
        ["mode", "tenant-pair proofs", "ms"],
        [
            ("full sweep", result["full_tenant_pairs"],
             f"{result['full_s'] * 1e3:.2f}"),
            ("incremental", result["incr_tenant_pairs"],
             f"{result['incr_s'] * 1e3:.2f}"),
            ("speedup", "-", f"{speedup:.1f}x"),
        ],
        slug="slice_recheck",
    )
    payload = dict(result)
    payload["speedup"] = speedup
    write_json("BENCH_slice_recheck", payload)
    # The accounting gate: the recheck caught the injected leak while
    # proving strictly fewer tenant pairs than the sweep (scoped by dirty
    # pairs x change-feed victims), and ran faster doing it.
    assert result["incidents"] > 0
    assert result["victims"] == ["t0"]
    assert 0 < result["incr_tenant_pairs"] < result["full_tenant_pairs"]
    assert result["incr_s"] < result["full_s"]
