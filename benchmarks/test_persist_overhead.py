"""Durability overhead gates — the WAL must not tax Figure 13.

Two gates, both machine-readable in ``benchmarks/results/BENCH_persist.json``:

* **Ingestion overhead** — the per-report fast path (decode + batch
  verify on compiled matchers with a warm flow cache) is run twice over
  identical batches, once bare and once with each batch appended to a
  write-ahead log at ``fsync="interval"`` first, exactly as
  ``ShardedVeriDPDaemon._dispatch_inner`` does in durable mode (one
  batched WAL append per shard batch, before any worker sees it).  The
  paired median-of-differences overhead must stay under 10%.

* **Cold start** — restoring the Stanford path table from a snapshot
  (read + restore_state) must beat recomputing it from the rule set,
  which is the whole point of checkpointing.

Measurement is paired for the same reason as ``test_obs_overhead``: each
sample times adjacent bare/WAL groups, the median difference cancels
box drift, and the gate re-measures with more repeats before failing.
"""

import os
import shutil
import tempfile
from time import perf_counter

from repro.analysis import reports_from_table
from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable, LpmProvider
from repro.core.reports import PortCodec, pack_report, unpack_report
from repro.core.verifier import Verifier
from repro.persist.recovery import capture_state, restore_state
from repro.persist.snapshot import read_snapshot, write_snapshot
from repro.persist.wal import WriteAheadLog
from repro.topologies import build_stanford
from repro.topologies.base import lpm_ruleset_for

from conftest import STANFORD_SUBNETS, print_table, write_json

BATCH_SIZE = 64  # VeriDPDaemon's default: one WAL append per report
BASE_REPEATS = int(os.environ.get("REPRO_PERSIST_REPEATS", "30"))
GATE_PCT = 10.0
ATTEMPTS = 3


def _fastpath_rig(row):
    reports = reports_from_table(row.builder, row.table)
    row.table.compile_matchers(row.builder.hs)
    verifier = Verifier(row.table, row.builder.hs)
    codec = PortCodec(sorted(row.builder.topo.switches))
    payloads = [pack_report(report, codec) for report in reports]
    batches = [
        payloads[i : i + BATCH_SIZE]
        for i in range(0, len(payloads), BATCH_SIZE)
    ]
    return verifier, codec, batches, len(reports)


def _measure_wal_overhead(row, repeats):
    verifier, codec, batches, reports = _fastpath_rig(row)
    wal_dir = tempfile.mkdtemp(prefix="bench-wal-")
    wal = WriteAheadLog(wal_dir, fsync="interval")
    try:

        def bare():
            for batch in batches:
                decoded = [unpack_report(payload, codec) for payload in batch]
                verifier.verify_batch(decoded)

        def walled():
            # Mirrors the durable dispatch path: one batch record appended
            # to the WAL, then decode + verify, per batch.
            for batch in batches:
                wal.append_report_batch(batch)
                decoded = [unpack_report(payload, codec) for payload in batch]
                verifier.verify_batch(decoded)

        bare()  # warm: flow cache, lazy matcher state, allocator
        walled()
        group = 3
        diffs = []
        bare_s = float("inf")
        for _ in range(repeats):
            start = perf_counter()
            for _ in range(group):
                bare()
            bare_sample = (perf_counter() - start) / group
            start = perf_counter()
            for _ in range(group):
                walled()
            walled_sample = (perf_counter() - start) / group
            bare_s = min(bare_s, bare_sample)
            diffs.append(walled_sample - bare_sample)
        stats = wal.stats()
    finally:
        wal.close()
        shutil.rmtree(wal_dir, ignore_errors=True)
    diffs.sort()
    median_diff = diffs[len(diffs) // 2]
    overhead_pct = median_diff / bare_s * 100.0
    return {
        "reports": reports,
        "batches": len(batches),
        "repeats": repeats,
        "fsync": "interval",
        "wal_fsyncs": stats["wal_fsyncs"],
        "wal_records": stats["wal_records_report"],
        "bare_us_per_report": round(bare_s / reports * 1e6, 4),
        "walled_us_per_report": round(
            (bare_s + median_diff) / reports * 1e6, 4
        ),
        "overhead_pct": round(overhead_pct, 3),
    }


def _measure_cold_start(repeats=5):
    scenario = build_stanford(
        subnets_per_zone=STANFORD_SUBNETS,
        install_routes=False,
        with_acls=False,
        with_ssh_detours=False,
    )
    ruleset = lpm_ruleset_for(scenario.topo, scenario.subnets)
    flat = [
        (switch, prefix, port)
        for switch, rules in sorted(ruleset.items())
        for prefix, port in rules
    ]

    def recompute():
        hs = HeaderSpace()
        provider = LpmProvider(scenario.topo, hs)
        for switch, prefix, port in flat:
            provider.add_rule(switch, prefix, port)
        return hs, IncrementalPathTable(scenario.topo, hs, provider=provider)

    hs, updater = recompute()  # warm + the state to checkpoint
    snap_dir = tempfile.mkdtemp(prefix="bench-snap-")
    path = os.path.join(snap_dir, "state.snap")
    try:
        write_snapshot(
            path, capture_state(scenario.topo, hs, updater, 1, 1)
        )
        snapshot_bytes = os.path.getsize(path)
        recompute_s = float("inf")
        restore_s = float("inf")
        for _ in range(repeats):
            start = perf_counter()
            recompute()
            recompute_s = min(recompute_s, perf_counter() - start)
            start = perf_counter()
            restore_state(read_snapshot(path), scenario.topo)
            restore_s = min(restore_s, perf_counter() - start)
    finally:
        shutil.rmtree(snap_dir, ignore_errors=True)
    return {
        "rules": len(flat),
        "snapshot_bytes": snapshot_bytes,
        "recompute_ms": round(recompute_s * 1e3, 3),
        "cold_start_ms": round(restore_s * 1e3, 3),
        "speedup": round(recompute_s / restore_s, 2),
    }


def test_persist_overhead_gates(benchmark, stanford_row, internet2_row):
    payload = {"gate_pct": GATE_PCT, "batch_size": BATCH_SIZE, "setups": {}}

    def run_all():
        for row in (stanford_row, internet2_row):
            result = None
            for attempt in range(1, ATTEMPTS + 1):
                result = _measure_wal_overhead(row, BASE_REPEATS * attempt)
                result["attempts"] = attempt
                if result["overhead_pct"] < GATE_PCT:
                    break
            payload["setups"][row.setup] = result
        payload["cold_start"] = _measure_cold_start()

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        (
            setup,
            result["reports"],
            result["bare_us_per_report"],
            result["walled_us_per_report"],
            f"{result['overhead_pct']:+.2f}%",
            f"< {GATE_PCT:.0f}%",
        )
        for setup, result in payload["setups"].items()
    ]
    cold = payload["cold_start"]
    rows.append(
        (
            "Stanford cold start",
            cold["rules"],
            cold["recompute_ms"],
            cold["cold_start_ms"],
            f"x{cold['speedup']}",
            "restore < recompute",
        )
    )
    print_table(
        "Durability overhead: WAL append (fsync=interval) on the Figure 13 "
        "fast path + snapshot cold start",
        ["setup", "n", "bare", "with WAL", "delta", "gate"],
        rows,
        slug="persist_overhead",
    )
    write_json("BENCH_persist", payload)

    for setup, result in payload["setups"].items():
        assert result["overhead_pct"] < GATE_PCT, (
            f"{setup}: WAL overhead {result['overhead_pct']}% breaches the "
            f"{GATE_PCT}% gate after {result['attempts']} attempts"
        )
    assert cold["cold_start_ms"] < cold["recompute_ms"], (
        f"cold start {cold['cold_start_ms']}ms is not faster than "
        f"recompute {cold['recompute_ms']}ms"
    )
