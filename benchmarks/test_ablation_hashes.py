"""Ablation: Bloom hash count (the paper fixes k=3 without a sweep).

Section 5 adopts Kirsch-Mitzenmacher with exactly three hashes.  Sweeping
k on a 16-bit tag over ~4-hop fat-tree paths measures both sides of the
coin: detection FNR (tag-equality collisions) and the ``may_contain``
false-positive rate that Algorithm 4's localization rides on.

**Reproduction finding:** both metrics share a shallow optimum at small k
(k=2 measures best here; the analytic optimum of ``(1-(1-1/m)^{kn})^k``
for m=16, n≈4 indeed sits near k≈m·ln2/n ≈ 2.8 — flat between 2 and 3),
and both degrade sharply once ``k*n`` saturates the 16 bits (k >= 4).
The paper's k=3 is within noise of optimal; the real design constraint is
avoiding the saturation cliff, which the bench pins down.
"""

import random

import pytest

from repro.core.bloom import BloomTagScheme
from repro.analysis import measure_fnr
from repro.netmodel.hops import Hop

from conftest import print_table

HASH_COUNTS = (1, 2, 3, 4, 5)


def membership_fp_rate(row, k: int, trials: int, rng: random.Random) -> float:
    """Rate of ``may_contain`` false positives for foreign hops."""
    scheme = BloomTagScheme(bits=16, hashes=k)
    entries = [e for _, _, e in row.table.all_entries() if len(e.hops) >= 3]
    false_positives = 0
    for i in range(trials):
        entry = rng.choice(entries)
        tag = scheme.tag_of_path(entry.hops)
        foreign = Hop(rng.randrange(1, 50), f"ghost{i}", rng.randrange(1, 50))
        if scheme.may_contain(tag, foreign):
            false_positives += 1
    return false_positives / trials


def test_ablation_hash_count(benchmark, ft4_row):
    def sweep():
        fnr = {}
        member_fp = {}
        for k in HASH_COUNTS:
            fnr[k] = measure_fnr(
                ft4_row.builder, ft4_row.table, bits=16, trials=1500,
                rng=random.Random(21), hashes=k,
            )
            member_fp[k] = membership_fp_rate(
                ft4_row, k, trials=3000, rng=random.Random(22)
            )
        return fnr, member_fp

    fnr, member_fp = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            k,
            fnr[k].missed,
            f"{100 * fnr[k].absolute_fnr:.2f}%",
            f"{100 * member_fp[k]:.2f}%",
        )
        for k in HASH_COUNTS
    ]
    print_table(
        "Ablation: Bloom hash count at 16-bit tags (FT k=4; paper uses k=3).\n"
        "Detection favours small k; localization membership favours larger k.",
        ["k hashes", "missed (n2)", "detection FNR", "membership FP (Alg 4)"],
        rows,
        slug="ablation_hash_count",
    )
    # The saturation cliff: k=5 is strictly worse than k=3 on both axes.
    assert fnr[5].missed > fnr[3].missed
    assert member_fp[5] > member_fp[3]
    # The optimum is shallow around small k: the paper's k=3 stays within
    # a small absolute margin of the best measured k on both metrics.
    best_fnr = min(fnr[k].absolute_fnr for k in HASH_COUNTS)
    best_fp = min(member_fp[k] for k in HASH_COUNTS)
    assert fnr[3].absolute_fnr <= best_fnr + 0.02
    assert member_fp[3] <= best_fp + 0.08
    # And k=3 keeps detection FNR within a few percent absolute overall.
    assert fnr[3].absolute_fnr < 0.05
