"""Baseline comparison — the qualitative claims of Sections 3.1 and 7, measured.

The paper argues VeriDP occupies a spot no existing tool covers:

* **ATPG** checks probe reception only → blind to deviations that still
  deliver (waypoint bypass, TE collapse, priority bugs),
* **Monocle** probes rule presence → sound per switch, but probe
  generation cost scales with table size, capping the update rate it can
  track,
* **NetSight** records exact per-hop histories → detects everything, at a
  per-packet-per-hop postcard cost,
* **VeriDP** detects path-level deviations from sampled real traffic at
  one small report per sampled packet — but is blind to silent hardware
  death (its acknowledged limitation; ATPG/NetSight do catch that).

This bench builds each fault scenario from the paper's motivation sections
and runs all four detectors, then measures the overhead axes: monitoring
bytes per delivered packet (NetSight vs VeriDP) and probe-generation time
scaling (Monocle).
"""

import pytest

from repro.baselines import AtpgProber, MonocleProber, NetSightCollector
from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.core.server import VeriDPServer
from repro.dataplane import (
    DataPlaneNetwork,
    DeleteRule,
    IgnorePriorities,
    KillSwitch,
    ModifyRuleOutput,
)
from repro.netmodel.rules import DROP_PORT, FlowRule, Forward, Match
from repro.topologies import build_fattree, build_figure5, build_stanford

from conftest import print_table


def apply_fault(name, scenario, net):
    """The fault menagerie from Sections 2.2/2.3, on the Figure 5 network."""
    ssh = scenario.header_between("H1", "H3", dst_port=22)
    if name == "black hole":
        rule = net.switch("S1").table.lookup(ssh, 1)
        ModifyRuleOutput("S1", rule.rule_id, DROP_PORT).apply(net)
    elif name == "waypoint bypass":
        rule = net.switch("S1").table.lookup(ssh, 1)  # the SSH detour rule
        DeleteRule("S1", rule.rule_id).apply(net)
    elif name == "priority bug":
        IgnorePriorities("S1").apply(net)
    elif name == "switch death":
        KillSwitch("S2").apply(net)
    else:
        raise ValueError(name)


def run_atpg(prober, net):
    return prober.run(net).detected_fault


def run_monocle(scenario, net):
    detected = False
    for switch_id, info in scenario.topo.switches.items():
        switch = net.switch(switch_id)
        if switch.dead:
            # A dead switch answers no probes: trivially detected.
            detected = True
            continue
        prober = MonocleProber(switch_id, info.flow_table)
        if prober.run(switch).detected_fault:
            detected = True
    return detected


def run_netsight(scenario, builder, net):
    collector = NetSightCollector(builder)
    packet_id = 0
    detected = False
    for src, dst in scenario.host_pairs():
        for dst_port in (22, 80):
            header = scenario.header_between(src, dst, dst_port=dst_port)
            result = net.inject_from_host(src, header)
            collector.record_walk(packet_id, header, result.hops)
            verdict = collector.check_history(packet_id)
            if verdict is False:
                detected = True
            if result.status == "lost":
                detected = True  # incomplete history: postcards stop mid-path
            packet_id += 1
    return detected


def run_veridp(scenario, server, net):
    server.drain_incidents()
    lost_any = False
    for src, dst in scenario.host_pairs():
        for dst_port in (22, 80):
            result = net.inject_from_host(
                src, scenario.header_between(src, dst, dst_port=dst_port)
            )
            lost_any |= result.status == "lost"
    return bool(server.drain_incidents())


FAULTS = ["black hole", "waypoint bypass", "priority bug", "switch death"]

# What each system *should* say, per the paper's positioning.
EXPECTED = {
    # fault:            (atpg, monocle, netsight, veridp)
    "black hole": (True, True, True, True),
    "waypoint bypass": (False, True, True, True),
    "priority bug": (False, True, True, True),
    "switch death": (True, True, True, False),  # VeriDP's blind spot
}


def test_detection_matrix(benchmark):
    """Which tool detects which fault class (Figure 5 network)."""

    def build_matrix():
        matrix = {}
        for fault in FAULTS:
            scenario = build_figure5()
            hs = HeaderSpace()
            builder = PathTableBuilder(scenario.topo, hs)
            table = builder.build()
            server = VeriDPServer(scenario.topo, scenario.channel)
            net = DataPlaneNetwork(
                scenario.topo,
                scenario.channel,
                report_sink=server.receive_report_bytes,
            )
            atpg = AtpgProber(builder, table)
            apply_fault(fault, scenario, net)
            matrix[fault] = (
                run_atpg(atpg, net),
                run_monocle(scenario, net),
                run_netsight(scenario, builder, net),
                run_veridp(scenario, server, net),
            )
        return matrix

    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)

    def mark(flag):
        return "detect" if flag else "MISS"

    rows = [
        (fault, *(mark(v) for v in verdicts)) for fault, verdicts in matrix.items()
    ]
    print_table(
        "Baseline comparison: detection matrix (paper §3.1/§7 claims, measured)",
        ["fault", "ATPG", "Monocle", "NetSight", "VeriDP"],
        rows,
        slug="baseline_detection_matrix",
    )
    assert matrix == EXPECTED


def test_monitoring_overhead(benchmark, ft4_row):
    """Bytes of monitoring traffic per delivered packet: NetSight vs VeriDP."""
    from repro.baselines.netsight import POSTCARD_BYTES

    scenario = build_fattree(4)
    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    sink_bytes = []
    net = DataPlaneNetwork(
        scenario.topo,
        scenario.channel,
        report_sink=lambda payload: sink_bytes.append(len(payload)),
    )
    collector = NetSightCollector()

    def workload():
        sink_bytes.clear()
        collector._histories.clear()
        collector.postcards_received = 0
        packets = 0
        for packet_id, (src, dst) in enumerate(scenario.host_pairs()):
            header = scenario.header_between(src, dst)
            result = net.inject_from_host(src, header)
            collector.record_walk(packet_id, header, result.hops)
            packets += 1
        return packets

    packets = benchmark.pedantic(workload, rounds=1, iterations=1)
    veridp_bytes = sum(sink_bytes)
    netsight_bytes = collector.traffic_bytes()
    rows = [
        ("NetSight postcards", collector.postcards_received, netsight_bytes,
         f"{netsight_bytes / packets:.1f}"),
        ("VeriDP tag reports", len(sink_bytes), veridp_bytes,
         f"{veridp_bytes / packets:.1f}"),
        ("ratio", "-", f"{netsight_bytes / veridp_bytes:.1f}x", "-"),
    ]
    print_table(
        "Baseline comparison: monitoring traffic for all-pairs on FT(k=4), "
        "every packet sampled (sampling lowers VeriDP further)",
        ["system", "messages", "bytes", "bytes/packet"],
        rows,
        slug="baseline_overhead",
    )
    # NetSight ships one postcard per hop; VeriDP one report per packet.
    assert collector.postcards_received > len(sink_bytes)
    assert netsight_bytes >= 4 * veridp_bytes  # avg path len ~4-5 hops


@pytest.mark.parametrize("num_rules", [50, 100, 200])
def test_monocle_probe_generation_scaling(benchmark, num_rules):
    """Monocle's bottleneck: probe generation time grows superlinearly with
    table size (the published system: ~43 s for 10K rules)."""
    from repro.netmodel.topology import Topology

    topo = Topology()
    info = topo.add_switch("S", num_ports=8)
    for i in range(num_rules):
        info.flow_table.add(
            FlowRule(
                100 + (i % 7),
                Match.build(dst=f"10.{i % 250}.{i // 250}.0/24"),
                Forward(1 + i % 8),
            )
        )

    prober = benchmark.pedantic(
        lambda: MonocleProber("S", info.flow_table), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        rules=num_rules,
        probes=len(prober.probes),
        generation_s=round(prober.generation_time_s, 4),
    )
    assert len(prober.probes) + len(prober.untestable) == num_rules


def test_probe_set_sizes(benchmark):
    """Probes needed: ATPG-style greedy hop cover vs the representative set.

    Both derive headers the same way (``repro.probe.headers``); they differ
    in what they promise.  ATPG keeps only probes adding new *hop* coverage
    — fewer packets, but entries sharing their hops with an already-kept
    probe are never exercised end-to-end.  The representative set keeps one
    probe per path-table entry: more packets, every configured path pinned.
    """
    from repro.probe.headers import plan_table

    def measure():
        rows = []
        for name, factory in (
            ("Figure 5", build_figure5),
            ("FT(k=4)", lambda: build_fattree(4)),
            ("Stanford", build_stanford),
        ):
            scenario = factory()
            hs = HeaderSpace()
            builder = PathTableBuilder(scenario.topo, hs)
            table = builder.build()
            atpg = AtpgProber(builder, table)
            plans = plan_table(table, hs)
            total_entries = sum(len(v) for v in plans.values())
            rep_probes = sum(len(v) for v in plans.values())
            rows.append(
                (
                    name,
                    total_entries,
                    len(atpg.probes),
                    rep_probes,
                    f"{len(atpg.probes) / total_entries:.0%}",
                    "100%",
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Baseline comparison: probes needed, ATPG-style hop cover vs "
        "representative set (path coverage = entries exercised end-to-end)",
        ["setup", "entries", "ATPG probes", "rep. probes",
         "ATPG path cov", "rep. path cov"],
        rows,
        slug="baseline_probe_sets",
    )
    for _, entries, atpg_probes, rep_probes, _, _ in rows:
        # ATPG's hop cover needs no more probes than one-per-entry...
        assert atpg_probes <= rep_probes == entries
    # ...and on multipath fabrics it leaves real path-coverage gaps.
    ft4 = next(r for r in rows if r[0] == "FT(k=4)")
    assert ft4[2] < ft4[3]
