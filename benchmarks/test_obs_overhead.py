"""Observability overhead gate — instrumentation must not tax Figure 13.

The daemon instruments its hot loop at *batch* granularity (one decode
span, one verify span and one histogram observation per batch) precisely
so the metrics plane stays off the per-report fast path; hot-path counters
are plain ints exposed through zero-cost callback instruments.  This bench
measures that choice: the daemon's per-batch unit of work — decode the
wire payloads, verify the batch on the Figure 13 fast path (compiled
matchers + warm flow cache) — is run twice over identical batches, once
bare and once wrapped exactly the way ``VeriDPDaemon._process_batch``
wraps it, and the per-report overhead must stay under 5%.

Measurement is paired: each sample times a group of bare passes then an
adjacent group of instrumented passes, and the *median of the paired
differences* is compared against the best bare time.  On a 1-CPU bench box
the drift between two sequential measurement blocks alone exceeds the
gate; pairing cancels the drift and the median discards scheduler-tick
outliers.  The gate still re-measures with more repeats before failing.

Machine-readable output lands in ``benchmarks/results/BENCH_obs.json``.
"""

import os
from time import perf_counter

from repro.analysis import reports_from_table
from repro.core.reports import PortCodec, pack_report, unpack_report
from repro.core.verifier import Verifier
from repro.obs import DEFAULT_BUCKETS, Observability

from conftest import print_table, write_json

#: VeriDPDaemon's default batch size; one span pair per batch.
BATCH_SIZE = 64
BASE_REPEATS = int(os.environ.get("REPRO_OBS_REPEATS", "30"))
GATE_PCT = 5.0
ATTEMPTS = 3  # each retry triples the repeats to average out box noise


def _fastpath_rig(row):
    reports = reports_from_table(row.builder, row.table)
    row.table.compile_matchers(row.builder.hs)
    verifier = Verifier(row.table, row.builder.hs)
    codec = PortCodec(sorted(row.builder.topo.switches))
    payloads = [pack_report(report, codec) for report in reports]
    batches = [
        payloads[i : i + BATCH_SIZE]
        for i in range(0, len(payloads), BATCH_SIZE)
    ]
    return verifier, codec, batches, len(reports)


def _measure(row, repeats):
    verifier, codec, batches, reports = _fastpath_rig(row)

    def bare():
        for batch in batches:
            decoded = [unpack_report(payload, codec) for payload in batch]
            verifier.verify_batch(decoded)

    obs = Observability()
    hist = obs.registry.histogram(
        "veridp_verify_batch_seconds",
        "Wall-clock seconds spent verifying one batch.",
        buckets=DEFAULT_BUCKETS,
    ).labels()

    def instrumented():
        # Mirrors VeriDPDaemon._process_batch: decode span + verify span +
        # one histogram observation per batch; per-report work is untouched.
        for batch in batches:
            with obs.span("decode", reports=len(batch)):
                decoded = [unpack_report(payload, codec) for payload in batch]
            with obs.span("verify", reports=len(decoded)):
                result = verifier.verify_batch(decoded)
            hist.observe(result.elapsed_s)

    bare()  # warm: flow cache, lazy matcher state, allocator
    instrumented()
    group = 3  # passes per timed sample; amortises timer/scheduler ticks
    diffs = []
    bare_s = float("inf")
    for _ in range(repeats):
        start = perf_counter()
        for _ in range(group):
            bare()
        bare_sample = (perf_counter() - start) / group
        start = perf_counter()
        for _ in range(group):
            instrumented()
        instr_sample = (perf_counter() - start) / group
        bare_s = min(bare_s, bare_sample)
        diffs.append(instr_sample - bare_sample)
    diffs.sort()
    median_diff = diffs[len(diffs) // 2]
    overhead_pct = median_diff / bare_s * 100.0
    return {
        "reports": reports,
        "batches": len(batches),
        "repeats": repeats,
        "bare_us_per_report": round(bare_s / reports * 1e6, 4),
        "instrumented_us_per_report": round(
            (bare_s + median_diff) / reports * 1e6, 4
        ),
        "overhead_pct": round(overhead_pct, 3),
    }


def test_obs_overhead_under_5pct(benchmark, stanford_row, internet2_row):
    """Satellite 5: the observability wrap costs <5% on the fast path."""
    payload = {"gate_pct": GATE_PCT, "batch_size": BATCH_SIZE, "setups": {}}
    rows = []

    def run_all():
        for row in (stanford_row, internet2_row):
            result = None
            for attempt in range(1, ATTEMPTS + 1):
                result = _measure(row, BASE_REPEATS * attempt)
                result["attempts"] = attempt
                if result["overhead_pct"] < GATE_PCT:
                    break
            payload["setups"][row.setup] = result

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for setup, result in payload["setups"].items():
        rows.append(
            (
                setup,
                result["reports"],
                result["bare_us_per_report"],
                result["instrumented_us_per_report"],
                f"{result['overhead_pct']:+.2f}%",
                f"< {GATE_PCT:.0f}%",
            )
        )
    print_table(
        "Observability overhead on the Figure 13 fast path "
        "(batch-granular spans + histogram, min-of-repeats)",
        ["setup", "reports", "bare us/rep", "instr us/rep", "overhead", "gate"],
        rows,
        slug="obs_overhead",
    )
    write_json("BENCH_obs", payload)

    for setup, result in payload["setups"].items():
        assert result["overhead_pct"] < GATE_PCT, (
            f"{setup}: observability overhead {result['overhead_pct']}% "
            f"breaches the {GATE_PCT}% gate after {result['attempts']} attempts"
        )
