"""Detection rates across the full §2.2 fault taxonomy, measured.

The paper's accuracy experiments use one fault shape (output-port
rewrites).  This campaign fuzzes every modelled fault class on fat-tree
traffic and reports detection/blame rates — including the structurally
expected zero for silent hardware death, whose packets vanish without a
tag report (§3.3: "we do not consider packet drops due to hardware
failures").
"""

import pytest

from repro.analysis.fuzz import FAULT_KINDS, run_fault_fuzz
from repro.topologies import build_fattree

from conftest import print_table


def test_fault_class_fuzz(benchmark):
    report = benchmark.pedantic(
        lambda: run_fault_fuzz(lambda: build_fattree(4), trials_per_class=5, seed=3),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Fault-class fuzz (FT k=4): detection & blame rates per §2.2 class",
        ["fault class", "trials", "exercised", "detected", "detection", "blame",
         "silent losses"],
        report.rows(),
        slug="fault_class_fuzz",
    )
    stats = report.per_class
    assert set(stats) == set(FAULT_KINDS)
    # Table-content faults: detected and blamed whenever exercised.
    for kind in ("modify-output", "delete-rule", "inject-shadow", "ignore-priority"):
        s = stats[kind]
        assert s.exercised > 0
        assert s.detection_rate >= 0.99, kind
        assert s.blame_rate >= 0.8, kind
    # The documented blind spot: hardware death emits nothing.
    dead = stats["kill-switch"]
    assert dead.exercised > 0
    assert dead.detected == 0
    assert dead.silent_losses > 0
