"""Table 3 — probability of successful fault localization.

Paper reference (Table 3):

| Setup   | # failed verif. | # recovered paths | localization prob. |
|---------|-----------------|-------------------|--------------------|
| FT(k=4) | 2,527           | 2,505             | 99.2%              |
| FT(k=6) | 7,148           | 6,902             | 96.6%              |

Per trial: rewrite a random rule's output port, all-pairs ping, verify all
tag reports, and for each failure try to recover the packet's actual path
with Algorithm 4.  The trial count is scaled down from the paper's (hours of
Mininet pings) via ``REPRO_LOC_TRIALS``; the claim under test is the shape:
recovery probability in the high 90s, slightly lower for the larger tree.
"""

import pytest

from repro.analysis import run_localization_campaign
from repro.topologies import build_fattree

from conftest import LOC_TRIALS, print_table

PAPER = {
    "FT(k=4)": (2527, 2505, "99.2%"),
    "FT(k=6)": (7148, 6902, "96.6%"),
}

_results = {}


@pytest.mark.parametrize("k,label", [(4, "FT(k=4)"), (6, "FT(k=6)")])
def test_table3_campaign(benchmark, k, label):
    """Run the fault-injection campaign for one fat-tree arity."""
    trials = LOC_TRIALS if k == 4 else max(LOC_TRIALS // 3, 3)

    def campaign():
        return run_localization_campaign(
            build_fattree(k), trials=trials, seed=11, label=label
        )

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    _results[label] = result
    benchmark.extra_info.update(
        failed=result.failed_verifications,
        recovered=result.recovered_paths,
        probability=round(result.localization_probability, 4),
    )
    assert result.faults_exercised == trials
    if result.failed_verifications:
        assert result.localization_probability >= 0.9  # paper: 96.6-99.2%
        assert result.blame_accuracy >= 0.9


def test_table3_report(benchmark):
    """Print the Table 3 reproduction next to the paper's numbers."""
    for label, k in (("FT(k=4)", 4), ("FT(k=6)", 6)):
        if label not in _results:
            trials = LOC_TRIALS if k == 4 else max(LOC_TRIALS // 3, 3)
            _results[label] = run_localization_campaign(
                build_fattree(k), trials=trials, seed=11, label=label
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        (
            label,
            r.failed_verifications,
            r.recovered_paths,
            f"{100 * r.localization_probability:.1f}%",
            f"{100 * r.blame_accuracy:.1f}%",
            f"{PAPER[label][0]}/{PAPER[label][1]}/{PAPER[label][2]}",
        )
        for label, r in sorted(_results.items())
    ]
    print_table(
        "Table 3: fault localization (ours vs paper failed/recovered/prob)",
        ["setup", "# failed", "# recovered", "loc. prob", "blame acc", "paper"],
        rows,
        slug="table3_localization",
    )
