"""Table 2 — path table statistics.

Paper reference (Table 2):

| Setup     | # entries | # paths | avg. path len. | time (s) |
|-----------|-----------|---------|----------------|----------|
| Stanford  | 26K       | 77K     | 4.85           | 4.32     |
| Internet2 | 43K       | 50K     | 2.89           | 3.22     |
| FT(k=4)   | 448       | 448     | 3.79           | 0.10     |
| FT(k=6)   | 4176      | 4176    | 4.23           | 0.26     |

Our Stanford/Internet2 are synthetic (scaled rule counts, see DESIGN.md), so
absolute entry counts differ; the *shape* — fat trees have exactly one path
per pair, Internet2's paths are shorter than Stanford's/fat-trees', build
time grows with network size but stays interactive — is asserted below.
"""

import pytest

from repro.bdd.headerspace import HeaderSpace
from repro.core.pathtable import PathTableBuilder
from repro.topologies import build_fattree, build_internet2, build_stanford

from conftest import I2_PREFIXES, STANFORD_SUBNETS, print_table

PAPER_ROWS = {
    "Stanford": (26_000, 77_000, 4.85, 4.32),
    "Internet2": (43_000, 50_000, 2.89, 3.22),
    "FT(k=4)": (448, 448, 3.79, 0.10),
    "FT(k=6)": (4176, 4176, 4.23, 0.26),
}

SCENARIOS = [
    ("Stanford", lambda: build_stanford(subnets_per_zone=STANFORD_SUBNETS)),
    ("Internet2", lambda: build_internet2(prefixes_per_pop=I2_PREFIXES)),
    ("FT(k=4)", lambda: build_fattree(4)),
    ("FT(k=6)", lambda: build_fattree(6)),
]

_measured = {}


@pytest.mark.parametrize("setup,factory", SCENARIOS, ids=[s for s, _ in SCENARIOS])
def test_table2_build(benchmark, setup, factory):
    """Benchmark Algorithm 2's full path-table construction per topology."""
    scenario = factory()

    def build():
        return PathTableBuilder(scenario.topo, HeaderSpace()).build()

    table = benchmark.pedantic(build, rounds=3, iterations=1, warmup_rounds=1)
    stats = table.stats()
    _measured[setup] = stats
    benchmark.extra_info.update(
        entries=stats.num_pairs,
        paths=stats.num_paths,
        avg_path_len=round(stats.avg_path_length, 2),
    )
    assert stats.num_paths >= stats.num_pairs > 0
    if setup.startswith("FT"):
        # Fat trees with single-path routing: exactly one path per pair.
        assert stats.num_paths == stats.num_pairs


def test_table2_report(benchmark, stanford_row, internet2_row, ft4_row, ft6_row):
    """Print the measured Table 2 next to the paper's reference."""
    measured = [stanford_row, internet2_row, ft4_row, ft6_row]
    benchmark.pedantic(
        lambda: [row.table.stats() for row in measured], rounds=3, iterations=1
    )
    rows = []
    for row in measured:
        paper = PAPER_ROWS[row.setup]
        s = row.stats
        rows.append(
            (
                row.setup,
                s.num_pairs,
                s.num_paths,
                f"{s.avg_path_length:.2f}",
                f"{s.build_time_s:.3f}",
                f"{paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}",
            )
        )
    print_table(
        "Table 2: path table statistics (ours vs paper entries/paths/len/time)",
        ["setup", "entries", "paths", "avg len", "time (s)", "paper"],
        rows,
        slug="table2_pathtable",
    )
    # Shape assertions that survive the synthetic scaling:
    assert ft4_row.stats.num_paths < ft6_row.stats.num_paths
    assert 3.0 <= ft4_row.stats.avg_path_length <= 4.5  # paper: 3.79
    assert 3.5 <= ft6_row.stats.avg_path_length <= 5.0  # paper: 4.23
    assert internet2_row.stats.avg_path_length < stanford_row.stats.avg_path_length + 1
