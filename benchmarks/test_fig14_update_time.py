"""Figure 14 — time to add a new rule incrementally (Internet2).

Paper reference: rules are installed one-by-one into the last of Internet2's
9 routers with the other 8 pre-populated; "for most rules, the time to
update the path table is less than 10ms", which keeps up with data-plane
update latencies (several ms).

We run the same protocol on the Internet2-like network and additionally
compare against the naive baseline (full Algorithm 2 rebuild per rule),
which is the comparison motivating Section 4.4.
"""

import statistics

import pytest

from repro.analysis import measure_update_times
from repro.bdd.headerspace import HeaderSpace
from repro.core.incremental import IncrementalPathTable, LpmProvider
from repro.core.pathtable import PathTableBuilder
from repro.topologies import build_internet2, internet2_lpm_ruleset

from conftest import I2_PREFIXES, print_table

TARGET = "NEWY"


@pytest.fixture(scope="module")
def i2_setup():
    scenario = build_internet2(prefixes_per_pop=I2_PREFIXES, install_routes=False)
    return scenario, internet2_lpm_ruleset(scenario)


def test_fig14_incremental_series(benchmark, i2_setup):
    """The paper's protocol: per-rule incremental update times."""
    scenario, ruleset = i2_setup

    def protocol():
        return measure_update_times(scenario, ruleset, TARGET, label="Internet2")

    timing, inc = benchmark.pedantic(protocol, rounds=1, iterations=1)
    benchmark.extra_info.update(
        rules=len(timing.times_ms),
        mean_ms=round(timing.mean_ms, 3),
        max_ms=round(timing.max_ms, 3),
        under_10ms=round(timing.fraction_under(10.0), 4),
    )

    rows = [
        ("rules installed", len(timing.times_ms)),
        ("mean (ms)", f"{timing.mean_ms:.3f}"),
        ("median (ms)", f"{statistics.median(timing.times_ms):.3f}"),
        ("max (ms)", f"{timing.max_ms:.3f}"),
        ("% under 10 ms", f"{100 * timing.fraction_under(10.0):.1f}%"),
        ("paper", "most rules < 10 ms"),
    ]
    print_table(
        "Figure 14: incremental path-table update time (Internet2, last router)",
        ["metric", "value"],
        rows,
        slug="fig14_update_time",
    )
    # The headline claim: most updates complete under 10 ms.
    assert timing.fraction_under(10.0) >= 0.8


def test_fig14_single_update(benchmark, i2_setup):
    """pytest-benchmark timing of one incremental rule addition."""
    scenario, ruleset = i2_setup
    hs = HeaderSpace()
    provider = LpmProvider(scenario.topo, hs)
    for switch_id, rules in ruleset.items():
        for prefix, out_port in rules:
            provider.add_rule(switch_id, prefix, out_port)
    inc = IncrementalPathTable(scenario.topo, hs, provider=provider)
    toggle = {"installed": False}
    probe_prefix, probe_port = "203.0.113.0/24", 1

    def add_and_remove():
        # Keep the table state stable across benchmark iterations.
        inc.add_rule(TARGET, probe_prefix, probe_port)
        inc.delete_rule(TARGET, probe_prefix)

    benchmark(add_and_remove)


def test_fig14_acl_updates(benchmark, i2_setup):
    """Our extension of Figure 14: incremental *ACL* update times.

    The paper claims (without measuring) that "the incremental update can
    also be performed with ACL rules"; this times inbound-deny add/remove
    cycles on a fully populated Internet2 and holds them to the same
    10 ms envelope.
    """
    from repro.netmodel.rules import Match

    scenario, ruleset = i2_setup
    hs = HeaderSpace()
    provider = LpmProvider(scenario.topo, hs)
    for switch_id, rules in ruleset.items():
        for prefix, out_port in rules:
            provider.add_rule(switch_id, prefix, out_port)
    inc = IncrementalPathTable(scenario.topo, hs, provider=provider)
    denies = [
        ("KANS", 1, Match.build(dst=f"10.0.{i}.0/24").to_bdd(hs))
        for i in range(8)
    ] + [
        ("CHIC", 2, Match.build(dst_port=22 + i).to_bdd(hs)) for i in range(8)
    ]

    def churn():
        times = []
        for switch, port, pred in denies:
            times.append(inc.add_inbound_deny(switch, port, pred))
        for switch, port, pred in denies:
            times.append(inc.remove_inbound_deny(switch, port, pred))
        return times

    times = benchmark.pedantic(churn, rounds=1, iterations=1)
    mean_ms = 1e3 * sum(times) / len(times)
    max_ms = 1e3 * max(times)
    print_table(
        "Figure 14 extension: incremental ACL update time (Internet2)",
        ["metric", "value"],
        [
            ("acl updates", len(times)),
            ("mean (ms)", f"{mean_ms:.3f}"),
            ("max (ms)", f"{max_ms:.3f}"),
        ],
        slug="fig14_acl_updates",
    )
    benchmark.extra_info.update(mean_ms=round(mean_ms, 3), max_ms=round(max_ms, 3))
    assert max_ms < 100  # same order as rule updates; generous CI envelope


def test_fig14_vs_full_rebuild(benchmark, i2_setup):
    """The baseline Section 4.4 replaces: full rebuild per rule change."""
    scenario, ruleset = i2_setup
    hs = HeaderSpace()
    provider = LpmProvider(scenario.topo, hs)
    for switch_id, rules in ruleset.items():
        for prefix, out_port in rules:
            provider.add_rule(switch_id, prefix, out_port)
    builder = PathTableBuilder(scenario.topo, hs, provider=provider)

    rebuild_s = benchmark(builder.build).build_time_s

    # Compare one incremental update against one full rebuild.
    inc = IncrementalPathTable(scenario.topo, hs, provider=provider)
    incremental_s = inc.add_rule(TARGET, "198.51.100.0/24", 1)
    print_table(
        "Figure 14 ablation: incremental update vs full rebuild",
        ["approach", "seconds"],
        [
            ("full rebuild", f"{rebuild_s:.4f}"),
            ("incremental add", f"{incremental_s:.4f}"),
            ("speedup", f"{rebuild_s / max(incremental_s, 1e-9):.1f}x"),
        ],
        slug="fig14_ablation_rebuild",
    )
    assert incremental_s < rebuild_s
