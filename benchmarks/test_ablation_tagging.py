"""Ablation: Bloom-filter tagging vs the rejected alternatives.

Section 3.3 of the paper: "Initially, we were tempted to use hash-based
tagging ... Later, we found that this tagging method prevents us from
localizing the faulty switch."  Section 4.3 additionally rejects a strawman
localizer (blame the first hop failing the Bloom membership test) because
Bloom false positives mis-blame downstream switches.

This bench quantifies both decisions:

1. **Detection** — XOR-hash tags detect deviations at least as well as
   Bloom tags of the same width (in fact better: XOR is order- and
   multiset-sensitive, while Bloom saturates bits), so the paper's choice
   of Bloom *costs* a little detection accuracy.  The trade is deliberate:
2. **Localization gap** — only the Bloom tag supports per-hop membership
   tests; the XOR tag has no such API, so Algorithm 4 cannot run at all.
3. **Strawman vs PathInfer** — at narrow widths where false positives
   bite, PathInfer's path reconstruction blames the truly faulty switch
   far more often than the strawman's first-failing-hop heuristic.
"""

import random

import pytest

from repro.analysis.fnr import simulate_deviation
from repro.core.bloom import BloomTagScheme, XorTagScheme
from repro.core.localization import PathInferLocalizer, StrawmanLocalizer
from repro.core.reports import TagReport
from repro.netmodel.packet import Header
from repro.netmodel.rules import DROP_PORT
from repro.netmodel.topology import PortRef

from conftest import print_table

TRIALS = 1500


def deviation_cases(row, rng, trials):
    """Random single-switch deviations with ground truth, as in Fig 12/Tab 3."""
    candidates = [
        (inport, outport, entry)
        for inport, outport, entry in row.table.all_entries()
        if outport.port != DROP_PORT and len(entry.hops) >= 2
    ]
    cases = []
    for _ in range(trials):
        inport, outport, entry = rng.choice(candidates)
        header = row.builder.hs.sample_header(entry.headers)
        deviate_at = rng.randrange(len(entry.hops))
        victim = entry.hops[deviate_at]
        ports = [
            p for p in row.builder.topo.ports_of(victim.switch) if p != victim.out_port
        ]
        wrong = rng.choice(ports)
        real = simulate_deviation(row.builder, entry.hops, header, deviate_at, wrong)
        cases.append((inport, outport, entry, header, real, victim.switch))
    return cases


def test_ablation_detection_parity(benchmark, ft4_row):
    """Detection comparison on same-exit deviations: XOR never loses to
    Bloom (it is order/multiset-sensitive); Bloom pays a small FNR for the
    membership structure localization needs."""
    rng = random.Random(5)
    cases = deviation_cases(ft4_row, rng, TRIALS)

    def count_misses():
        missed = {"bloom": 0, "xor": 0, "same_exit": 0}
        bloom = BloomTagScheme(bits=16)
        xor = XorTagScheme(bits=16)
        for inport, outport, entry, header, real, _ in cases:
            last = real[-1]
            if not (last.switch == outport.switch and last.out_port == outport.port):
                continue  # wrong exit: caught structurally by both schemes
            missed["same_exit"] += 1
            if bloom.tag_of_path(real) == bloom.tag_of_path(entry.hops):
                missed["bloom"] += 1
            if xor.tag_of_path(real) == xor.tag_of_path(entry.hops):
                missed["xor"] += 1
        return missed

    missed = benchmark.pedantic(count_misses, rounds=1, iterations=1)
    print_table(
        "Ablation: detection misses at 16 bits (same-exit deviations only)",
        ["scheme", "missed", "of same-exit cases"],
        [
            ("bloom", missed["bloom"], missed["same_exit"]),
            ("xor-hash", missed["xor"], missed["same_exit"]),
        ],
        slug="ablation_detection_parity",
    )
    # Both schemes are strong detectors at 16 bits; XOR never loses.
    assert missed["bloom"] <= 0.06 * max(missed["same_exit"], 1)
    assert missed["xor"] <= missed["bloom"]


def test_ablation_localization_gap(benchmark):
    """The structural point: the XOR scheme has no membership test, so the
    localization machinery cannot even be instantiated for it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert hasattr(BloomTagScheme(), "may_contain")
    assert not hasattr(XorTagScheme(), "may_contain")


@pytest.mark.parametrize("bits", [8, 16])
def test_ablation_strawman_vs_pathinfer(benchmark, ft4_row, bits):
    """Blame accuracy: first-failing-hop heuristic vs Algorithm 4."""
    rng = random.Random(6)
    cases = deviation_cases(ft4_row, rng, 400)
    scheme = BloomTagScheme(bits=bits)
    strawman = StrawmanLocalizer(ft4_row.builder, scheme)
    pathinfer = PathInferLocalizer(ft4_row.builder, scheme, ft4_row.builder.topo)

    def run():
        correct = {"strawman": 0, "pathinfer": 0, "detected": 0}
        for inport, outport, entry, header, real, faulty_switch in cases:
            tag = scheme.tag_of_path(real)
            last = real[-1]
            report = TagReport(
                inport=inport,
                outport=PortRef(last.switch, last.out_port),
                header=Header(**header),
                tag=tag,
            )
            if tuple(real) == entry.hops:
                continue  # deviation was a no-op
            correct["detected"] += 1
            if faulty_switch in strawman.localize(report).blamed_switches():
                correct["strawman"] += 1
            if faulty_switch in pathinfer.localize(report).blamed_switches():
                correct["pathinfer"] += 1
        return correct

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    detected = max(result["detected"], 1)
    print_table(
        f"Ablation: blame accuracy at {bits}-bit tags (FT k=4)",
        ["localizer", "correct blames", "cases", "accuracy"],
        [
            (
                name,
                result[name],
                result["detected"],
                f"{100 * result[name] / detected:.1f}%",
            )
            for name in ("strawman", "pathinfer")
        ],
        slug=f"ablation_strawman_{bits}b",
    )
    # PathInfer must never lose to the strawman, and should win when false
    # positives are plentiful (8-bit tags).
    assert result["pathinfer"] >= result["strawman"]
    if bits == 8:
        assert result["pathinfer"] > 0
