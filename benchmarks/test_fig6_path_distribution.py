"""Figure 6 — distribution of the number of paths per (inport, outport) pair.

The paper plots this distribution for the Stanford backbone and Internet2 to
justify Algorithm 3's linear scan: "the number of paths per inport-outport
pair is relatively small".  We regenerate the histogram and CDF for both
topologies and assert the linear-scan feasibility claim: the overwhelming
majority of pairs hold only a handful of paths.
"""

import pytest

from repro.analysis import distribution_cdf, path_count_distribution

from conftest import print_table


def test_fig6_distribution(benchmark, stanford_row, internet2_row):
    """Regenerate the Figure 6 series for Stanford-like and Internet2-like."""
    dists = benchmark.pedantic(
        lambda: {
            "Stanford": path_count_distribution(stanford_row.table),
            "Internet2": path_count_distribution(internet2_row.table),
        },
        rounds=3,
        iterations=1,
    )
    rows = []
    for label, dist in dists.items():
        cdf = distribution_cdf(dist)
        total_pairs = sum(dist.values())
        for k, frac in cdf:
            rows.append((label, k, dist[k], f"{100 * frac:.1f}%"))
        # Linear-scan feasibility: nearly all pairs have few paths.
        frac_small = sum(count for k, count in dist.items() if k <= 4) / total_pairs
        assert frac_small >= 0.95, f"{label}: too many paths per pair for linear scan"
        assert max(dist) <= 16, f"{label}: pathological pair with {max(dist)} paths"
    print_table(
        "Figure 6: paths per (inport, outport) pair (histogram + CDF)",
        ["setup", "#paths/pair", "#pairs", "CDF"],
        rows,
        slug="fig6_path_distribution",
    )


def test_fig6_lookup_cost_is_flat(benchmark, stanford_row):
    """The practical consequence of Figure 6: per-pair scans stay O(few).

    Benchmark a verification-style scan over every pair's path list.
    """
    table = stanford_row.table
    hs = stanford_row.builder.hs

    def scan_all_pairs():
        touched = 0
        for pair in table.pairs():
            touched += len(table.lookup(*pair))
        return touched

    total = benchmark(scan_all_pairs)
    assert total == table.num_paths()
    # The average list length is what the linear scan costs per report.
    avg = total / len(table.pairs())
    assert avg <= 4.0
