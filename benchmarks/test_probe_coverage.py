"""Active coverage bench: probes vs coverage, and the fuzz detection gate.

Passive VeriDP coverage is whatever sampled traffic happens to exercise;
the active prober (``repro.probe``) closes the rest under a budget.  This
bench measures the coverage-vs-budget curve on Stanford and FT(k=4) —
starting from a passive workload that leaves well over 30% of the path
table dark — and gates on the probe subsystem's two promises:

* an unbounded budget reaches 100% of reachable (inport, outport) pairs,
* a seeded control-plane state-fuzz campaign detects every exercised
  desync with a reconciled ledger (zero false positives).

Machine-readable output lands in ``benchmarks/results/BENCH_probe.json``.
"""

import random

import pytest

from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.probe import ActiveProber, ProbeBudget, run_state_fuzz
from repro.topologies import build_fattree, build_stanford

from conftest import STANFORD_SUBNETS, print_table, write_json

PASSIVE_FRACTION = 0.1
BUDGETS = [25, 50, 100, 200, None]
SEED = 7


def _passive_setup(factory):
    scenario = factory()
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    rng = random.Random(SEED)
    pairs = scenario.host_pairs()
    for src, dst in rng.sample(pairs, max(1, int(len(pairs) * PASSIVE_FRACTION))):
        net.inject_from_host(src, scenario.header_between(src, dst))
    return scenario, server, net


TOPOS = {
    "Stanford": lambda: build_stanford(subnets_per_zone=STANFORD_SUBNETS),
    "FT(k=4)": lambda: build_fattree(4),
}


def test_coverage_vs_budget(benchmark):
    def sweep():
        results = {}
        for name, factory in TOPOS.items():
            curve = []
            for budget in BUDGETS:
                scenario, server, net = _passive_setup(factory)
                before = server.coverage.report()
                prober = ActiveProber(
                    server, net, budget=ProbeBudget(max_probes=budget)
                )
                run = prober.run()
                after = server.coverage.report()
                curve.append(
                    {
                        "budget": budget,
                        "sent": run.sent,
                        "passive_dark_fraction": 1.0 - before.path_coverage,
                        "path_coverage": after.path_coverage,
                        "pair_coverage": after.pair_coverage,
                        "converged": run.converged,
                    }
                )
            results[name] = curve
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, curve in results.items():
        for point in curve:
            rows.append(
                (
                    name,
                    point["budget"] if point["budget"] is not None else "inf",
                    point["sent"],
                    f"{point['path_coverage']:.0%}",
                    f"{point['pair_coverage']:.0%}",
                    "yes" if point["converged"] else "no",
                )
            )
    print_table(
        f"Active coverage vs probe budget ({PASSIVE_FRACTION:.0%} of host "
        f"pairs carry passive traffic)",
        ["setup", "budget", "sent", "paths", "pairs", "converged"],
        rows,
        slug="probe_coverage",
    )
    write_json("BENCH_probe", {"coverage_vs_budget": results})

    for name, curve in results.items():
        # The passive workload must leave a real gap for probing to close.
        assert curve[0]["passive_dark_fraction"] >= 0.30, name
        unlimited = curve[-1]
        # Acceptance gate: unbounded budget reaches every reachable pair.
        assert unlimited["pair_coverage"] == 1.0, name
        assert unlimited["converged"], name
        # Monotone: more budget never yields less coverage.
        coverages = [p["path_coverage"] for p in curve]
        assert coverages == sorted(coverages), name


def test_state_fuzz_detection_gate(benchmark):
    def campaign():
        report = run_state_fuzz(
            lambda: build_fattree(4, install_routes=False), rounds=8, seed=SEED
        )
        report.reconcile()
        return report

    report = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print_table(
        f"State-fuzz campaign on FT(k=4), seed {SEED}",
        ["mutation", "rounds", "probes", "incidents", "detected", "blamed"],
        report.rows(),
        slug="probe_fuzz",
    )
    payload = {
        "seed": SEED,
        "rounds": len(report.rounds),
        "desync_rounds": len(report.desync_rounds),
        "detection_rate": report.detection_rate,
        "blame_rate": report.blame_rate,
        "final_coverage": report.final_coverage,
    }
    write_json("BENCH_probe_fuzz", payload)
    assert report.detection_rate == 1.0
    assert report.blame_rate >= 0.5
    assert report.final_coverage == 1.0
