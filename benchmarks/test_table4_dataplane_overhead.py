"""Table 4 — processing delay of the VeriDP pipeline vs native OpenFlow.

Paper reference (ONetSwitch FPGA @125 MHz, delays in microseconds):

| Packet size (B)   | 128   | 256   | 512   | 1024  | 1500  |
|-------------------|-------|-------|-------|-------|-------|
| Native            | 4.32  | 7.33  | 19.89 | 26.21 | 36.68 |
| Sampling          | 0.15  | 0.14  | 0.14  | 0.14  | 0.15  |
| Sampling overhead | 3.52% | 1.96% | 0.74% | 0.55% | 0.41% |
| Tagging           | 0.27  | 0.26  | 0.27  | 0.26  | 0.27  |
| Tagging overhead  | 6.29% | 3.60% | 1.37% | 1.01% | 0.74% |

We have no FPGA; the cycle model in ``repro.dataplane.latency`` reproduces
this table (see DESIGN.md substitutions).  As a software counterpart we also
benchmark the *actual* simulated pipeline's per-packet cost, native lookup
vs lookup + VeriDP tagging, confirming the same structural claim: the
VeriDP additions are small constants, independent of packet size.
"""

import pytest

from repro.core.reports import PortCodec
from repro.dataplane import HardwarePipelineModel, PAPER_PACKET_SIZES
from repro.dataplane.pipeline import VeriDPPipeline
from repro.netmodel.packet import Packet
from repro.topologies import build_linear

from conftest import print_table

PAPER_TABLE = {
    "native_us": [4.32, 7.33, 19.89, 26.21, 36.68],
    "sampling_us": [0.15, 0.14, 0.14, 0.14, 0.15],
    "sampling_overhead_pct": [3.52, 1.96, 0.74, 0.55, 0.41],
    "tagging_us": [0.27, 0.26, 0.27, 0.26, 0.27],
    "tagging_overhead_pct": [6.29, 3.60, 1.37, 1.01, 0.74],
}


def test_table4_model(benchmark):
    """Regenerate Table 4 from the cycle model and compare with the paper."""
    model = HardwarePipelineModel()
    rows_by_metric = benchmark.pedantic(
        lambda: model.table4_rows(PAPER_PACKET_SIZES), rounds=10, iterations=1
    )
    table_rows = []
    for metric, values in rows_by_metric.items():
        paper = PAPER_TABLE[metric]
        table_rows.append((metric, *values))
        table_rows.append((f"  paper", *paper))
    print_table(
        "Table 4: data-plane delay (us / %) at sizes "
        + ", ".join(map(str, PAPER_PACKET_SIZES)),
        ["metric", *PAPER_PACKET_SIZES],
        table_rows,
        slug="table4_dataplane_overhead",
    )
    # Native row reproduced exactly (calibrated); VeriDP rows within 10%.
    assert rows_by_metric["native_us"] == PAPER_TABLE["native_us"]
    for metric in ("sampling_us", "tagging_us"):
        for ours, theirs in zip(rows_by_metric[metric], PAPER_TABLE[metric]):
            assert ours == pytest.approx(theirs, rel=0.15)
    # Overhead ratios shrink monotonically with packet size.
    for metric in ("sampling_overhead_pct", "tagging_overhead_pct"):
        values = rows_by_metric[metric]
        assert all(a > b for a, b in zip(values, values[1:]))


@pytest.fixture(scope="module")
def software_pipeline():
    scenario = build_linear(3)
    codec = PortCodec(sorted(scenario.topo.switches))
    pipeline = VeriDPPipeline(scenario.topo, codec)
    return scenario, pipeline


def test_table4_software_native_lookup(benchmark, software_pipeline):
    """Baseline: the simulated OpenFlow lookup alone (no VeriDP)."""
    scenario, _ = software_pipeline
    from repro.dataplane import DataPlaneNetwork

    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    switch = net.switch("S2")
    header = scenario.header_between("H1", "H3")
    out = benchmark(lambda: switch.forward(header, 3))
    assert out > 0


def test_table4_software_tagging_cost(benchmark, software_pipeline):
    """The VeriDP pipeline step a non-entry switch adds per sampled packet."""
    scenario, pipeline = software_pipeline
    packet = Packet(scenario.header_between("H1", "H3"))
    pipeline.process("S1", 1, 2, packet)  # entry: arms marker/tag/ttl
    template = packet.copy()

    def tag_once():
        clone = template.copy()
        clone.ttl = 10
        return pipeline.process("S2", 3, 2, clone)

    result = benchmark(tag_once)
    assert result.tagged


def test_table4_software_sampling_cost(benchmark, software_pipeline):
    """The per-packet sampling decision at an entry switch."""
    scenario, pipeline = software_pipeline
    sampler = pipeline.sampler_for("S1")
    key = scenario.header_between("H1", "H3").five_tuple()
    benchmark(lambda: sampler.should_sample(key, 0.0))
