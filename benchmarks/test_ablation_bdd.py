"""Ablation: BDD header sets vs wildcard-expression unions.

Section 4.1 motivates BDDs: "even if wildcard expressions are widely used
for representing suffix, they are very inefficient for representing
arbitrary header sets.  For example, the header set for ``dst_port != 22``
... is a union of 16 wildcard expressions" and the full Stanford network
would need ~652 million of them.

This bench measures both representations on the header sets our own path
tables actually contain:

* wildcard cost = number of disjoint ternary cubes (each cube is one
  wildcard expression),
* BDD cost = number of BDD nodes,

and micro-benchmarks the set operations the path-table construction leans
on (intersection during traversal, membership during verification).
"""

import itertools

import pytest

from repro.bdd.engine import BDD
from repro.bdd.headerspace import HeaderSpace

from conftest import print_table


def cube_count(hs, node, cap=100_000):
    """Number of disjoint wildcard expressions equivalent to this BDD."""
    count = 0
    for _ in hs.bdd.cubes(node):
        count += 1
        if count >= cap:
            break
    return count


def test_ablation_not_equal_port(benchmark):
    """The paper's own example: dst_port != 22."""
    hs = HeaderSpace()

    def build():
        return hs.not_equal("dst_port", 22)

    pred = benchmark(build)
    wildcards = cube_count(hs, pred)
    nodes = hs.bdd.size(pred)
    print_table(
        "Ablation: representing dst_port != 22",
        ["representation", "units", "count"],
        [
            ("wildcard union", "expressions", wildcards),
            ("BDD", "nodes", nodes),
        ],
        slug="ablation_bdd_vs_wildcard_port",
    )
    assert wildcards == 16  # exactly the paper's number
    assert nodes <= 20


def test_ablation_path_table_header_sets(benchmark, stanford_row):
    """Wildcard-vs-BDD cost over every header set in the Stanford table."""
    hs = stanford_row.builder.hs
    entries = [entry for _, _, entry in stanford_row.table.all_entries()]

    def tally():
        total_cubes = 0
        total_nodes = 0
        for entry in entries:
            total_cubes += cube_count(hs, entry.headers, cap=10_000)
            total_nodes += hs.bdd.size(entry.headers)
        return total_cubes, total_nodes

    total_cubes, total_nodes = benchmark.pedantic(tally, rounds=1, iterations=1)
    print_table(
        "Ablation: header-set representation cost over the Stanford path table",
        ["metric", "value"],
        [
            ("path entries", len(entries)),
            ("wildcard expressions (total)", total_cubes),
            ("BDD nodes (total, with sharing)", total_nodes),
            ("unique BDD nodes in manager", hs.bdd.num_nodes()),
        ],
        slug="ablation_bdd_vs_wildcard_table",
    )
    # Hash-consing means the manager's unique node pool is far smaller than
    # the per-entry sums — the structural win wildcards cannot have.
    assert hs.bdd.num_nodes() < total_nodes


def test_ablation_intersection_speed(benchmark):
    """Intersection is the inner loop of Algorithm 2; BDDs make it cheap."""
    hs = HeaderSpace()
    complex_set = hs.bdd.and_(
        hs.not_equal("dst_port", 22),
        hs.bdd.or_(
            hs.prefix("dst_ip", 0x0A000000, 8),
            hs.prefix("dst_ip", 0xAC100000, 12),
        ),
    )
    prefixes = [hs.prefix("dst_ip", 0x0A000000 + (i << 16), 16) for i in range(64)]
    cycle = itertools.cycle(prefixes)

    def intersect():
        return hs.bdd.and_(complex_set, next(cycle))

    benchmark(intersect)


def test_ablation_membership_speed(benchmark):
    """Membership (Algorithm 3 line 2) walks the BDD once per report."""
    hs = HeaderSpace()
    header_set = hs.bdd.and_(
        hs.not_equal("dst_port", 22), hs.prefix("dst_ip", 0x0A000000, 8)
    )
    header = {
        "src_ip": 0x0A000001,
        "dst_ip": 0x0A010203,
        "proto": 6,
        "src_port": 999,
        "dst_port": 80,
    }
    assert benchmark(lambda: hs.contains(header_set, header))
