"""Cluster scale-out: reports/s and verify latency vs node count.

The same WAL-durable report stream (fat-tree, fsync=interval) is pushed
through the sharded cluster at 1, 2, and 4 process nodes; the table
reports end-to-end throughput and the p99 per-batch verify latency read
from the merged ``veridp_node_batch_seconds`` histogram.

Gate: >=1.6x throughput at 4 nodes over 1.  Scaling out verification
processes cannot beat a single process on a single core (dispatch +
pickle overhead with zero added compute), so — exactly like the
build/update bench — the floor is conditioned on the usable CPU count
and ``REPRO_BENCH_PARITY_ONLY=1`` skips it entirely; the measured ratio
is always recorded in ``BENCH_cluster.json`` so a capable machine's run
is auditable.

Knobs: ``REPRO_CLUSTER_FT_K`` (topology size), ``REPRO_CLUSTER_REPORTS``
(stream length).
"""

import os
import time

from conftest import env_int, print_table, write_json

from repro.cluster import VeriDPCluster
from repro.core.reports import pack_report
from repro.core.server import VeriDPServer
from repro.dataplane import DataPlaneNetwork
from repro.topologies import build_fattree


PARITY_ONLY = os.environ.get("REPRO_BENCH_PARITY_ONLY") == "1"
FT_K = env_int("REPRO_CLUSTER_FT_K", 4 if PARITY_ONLY else 8)
TOTAL_REPORTS = env_int("REPRO_CLUSTER_REPORTS", 4_000 if PARITY_ONLY else 20_000)
NODE_COUNTS = (1, 2, 4)
THROUGHPUT_FLOOR_AT_4 = 1.6


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def scale_floor(cpus: int) -> float:
    """The 4-node gate, scaled to what the hardware can deliver."""
    if cpus >= 4:
        return THROUGHPUT_FLOOR_AT_4
    if cpus >= 2:
        return 1.1
    return 0.0


def payload_stream(scenario, net, count):
    pairs = scenario.host_pairs()
    base = []
    for src, dst in pairs:
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        base += [pack_report(r, net.codec) for r in result.reports]
        if len(base) >= count:
            break
    payloads = []
    while len(payloads) < count:
        payloads += base
    return payloads[:count]


def histogram_p99(snapshot, name):
    """p99 upper bound (seconds) across all label series of a histogram."""
    metric = snapshot.get(name)
    if metric is None:
        return None
    buckets = list(metric["buckets"])
    totals = [0] * (len(buckets) + 1)
    for counts, _sum in metric["values"].values():
        for i, c in enumerate(counts):
            totals[i] += c
    count = sum(totals)
    if count == 0:
        return None
    target = 0.99 * count
    running = 0
    for i, c in enumerate(totals):
        running += c
        if running >= target:
            return buckets[i] if i < len(buckets) else float("inf")
    return float("inf")  # pragma: no cover - running always reaches count


def run_once(nodes, payloads, scenario, tmp_path):
    server = VeriDPServer(
        scenario.topo,
        scenario.channel,
        state_dir=str(tmp_path / f"state-{nodes}"),
        fsync="interval",
    )
    try:
        with VeriDPCluster(
            server, nodes=nodes, node_mode="process", batch_size=256
        ) as cluster:
            started = time.perf_counter()
            for payload in payloads:
                cluster.submit(payload)
            cluster.join(timeout=300)
            elapsed = time.perf_counter() - started
            stats = cluster.stats()
            assert stats["processed"] == len(payloads), stats
            assert sum(stats["counters"].values()) == stats["processed"]
            p99 = histogram_p99(
                cluster.coordinator.registry.snapshot(),
                "veridp_node_batch_seconds",
            )
    finally:
        server.close()
    return {
        "nodes": nodes,
        "reports_per_s": len(payloads) / elapsed,
        "elapsed_s": elapsed,
        "p99_batch_verify_s": p99,
        "pass": stats["counters"]["pass"],
    }


def test_cluster_scale(tmp_path):
    scenario = build_fattree(FT_K)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    payloads = payload_stream(scenario, net, TOTAL_REPORTS)

    rows = []
    results = []
    for nodes in NODE_COUNTS:
        result = run_once(nodes, payloads, scenario, tmp_path)
        results.append(result)
        rows.append((
            result["nodes"],
            f"{result['reports_per_s']:,.0f}",
            f"{result['elapsed_s']:.2f}",
            "-" if result["p99_batch_verify_s"] is None
            else f"{result['p99_batch_verify_s'] * 1e3:.3f}",
        ))

    base = results[0]["reports_per_s"]
    ratio_at_4 = results[-1]["reports_per_s"] / base
    cpus = usable_cpus()
    floor = 0.0 if PARITY_ONLY else scale_floor(cpus)

    print_table(
        f"Cluster scale-out (fat-tree k={FT_K}, {TOTAL_REPORTS} reports, "
        f"WAL fsync=interval, {cpus} cpus)",
        ["nodes", "reports/s", "elapsed s", "p99 batch ms"],
        rows + [
            ("4v1 ratio", f"{ratio_at_4:.2f}x",
             f"gate >={floor:.1f}x" if floor else "gate off", ""),
        ],
        slug="BENCH_cluster",
    )
    write_json("BENCH_cluster", {
        "ft_k": FT_K,
        "reports": TOTAL_REPORTS,
        "cpus": cpus,
        "parity_only": PARITY_ONLY,
        "results": results,
        "ratio_4_over_1": ratio_at_4,
        "floor": floor,
    })

    if floor:
        assert ratio_at_4 >= floor, (
            f"4-node scale-out {ratio_at_4:.2f}x below the {floor:.1f}x "
            f"floor on {cpus} cpus"
        )
