"""Detection latency vs sampling overhead — Section 4.5, measured.

The paper proves the ``T_s + T_a`` worst-case bound analytically (Figure 9)
but never measures it.  This bench sweeps the sampling interval on a
fat-tree workload and reports, per interval: mean/max detection latency,
the theoretical bound, and the fraction of packets tagged (the data-plane
overhead knob from Table 4).  Assertions pin the bound (no measured latency
may exceed it) and the monotone trade-off (longer intervals -> lower
sampling rate, higher latency).
"""

import pytest

from repro.analysis.sampling_experiments import sweep_sampling_intervals
from repro.topologies import build_fattree

from conftest import print_table

INTERVALS = (0.25, 0.5, 1.0, 2.0, 4.0)


def test_sampling_tradeoff(benchmark):
    results = benchmark.pedantic(
        lambda: sweep_sampling_intervals(
            lambda: build_fattree(4), INTERVALS, trials=8, seed=3
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            f"{r.sampling_interval:.2f}",
            f"{r.mean_latency:.2f}",
            f"{r.max_latency:.2f}",
            f"{r.theoretical_bound:.2f}",
            f"{100 * r.sampling_rate:.1f}%",
            r.undetected,
        )
        for r in results
    ]
    print_table(
        "Section 4.5 trade-off: detection latency vs sampling overhead "
        "(FT k=4, 0.1s packet period)",
        ["T_s (s)", "mean lat (s)", "max lat (s)", "bound (s)", "sampled", "missed"],
        rows,
        slug="sampling_tradeoff",
    )

    for r in results:
        # The paper's bound holds in every trial (small epsilon for the
        # discrete tick grid).
        assert r.undetected == 0
        assert r.max_latency <= r.theoretical_bound + 1e-9
    # Monotone trade-off across the sweep.
    rates = [r.sampling_rate for r in results]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    bounds = [r.theoretical_bound for r in results]
    assert all(a <= b for a, b in zip(bounds, bounds[1:]))
