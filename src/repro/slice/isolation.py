"""Cross-tenant isolation verification.

The isolation property: **no header in tenant A's footprint may be
deliverable at an edge port owned by tenant B ≠ A**.  Rule-level
consistency (the paper's property) cannot see this fault class — a rule
routing a slice of A's address space to B's port can be installed on both
planes and verify PASS forever — so this is a genuinely new check, in the
spirit of SDNsec's per-path forwarding accountability.

For each path-table pair whose outport is tenant-owned, the verifier
computes ``exit_headers(entry) ∧ footprint(A)`` for every other tenant A;
a non-empty intersection is a leak, reported as an
:class:`IsolationIncident` carrying the tenant pair, the offending path, a
concrete witness header inside the leaked slice, and — when an LPM
provider is available — the governing rule at the exit switch (blame).

Two entry points:

* :meth:`IsolationVerifier.check_full` — the all-pairs sweep (O(pairs ×
  tenants)), run at slice configuration time.
* :meth:`IsolationVerifier.recheck` — incremental: reads the path table's
  dirty-pair journal to know *which pairs* to re-examine, and the
  updater's change feed to know *which headers* moved — only tenants whose
  footprint intersects a changed slice can newly leak, so only those
  tenant pairs are re-proved.  The accounting fields
  (:attr:`last_table_pairs`, :attr:`last_tenant_pairs`,
  :attr:`last_victims`) let callers assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bdd.headerspace import HeaderSpace, format_ipv4
from ..core.pathtable import PathTable
from ..netmodel.hops import Hop
from ..netmodel.topology import PortRef
from .registry import SliceRegistry

__all__ = ["IsolationIncident", "IsolationVerifier"]


@dataclass(frozen=True)
class IsolationIncident:
    """One proven cross-tenant leak: rule -> tenant pair -> offending path.

    ``src_tenant`` owns the leaked header space (the victim whose
    footprint escapes); ``dst_tenant`` owns the edge port the headers are
    deliverable at.  ``leaked_rule`` is the governing LPM rule at the exit
    switch as ``(switch, prefix, out_port)``, when a provider could
    resolve it.
    """

    src_tenant: str
    dst_tenant: str
    inport: PortRef
    outport: PortRef
    hops: Tuple[Hop, ...]
    witness: Optional[Dict[str, int]]
    leaked_rule: Optional[Tuple[str, str, int]] = None

    def __str__(self) -> str:
        rule = (
            f" via rule {self.leaked_rule[1]} -> port {self.leaked_rule[2]} "
            f"on {self.leaked_rule[0]}"
            if self.leaked_rule
            else ""
        )
        dst = (
            format_ipv4(self.witness["dst_ip"])
            if self.witness
            else "?"
        )
        return (
            f"ISOLATION {self.src_tenant} -> {self.dst_tenant}: headers for "
            f"{dst} deliverable at {self.outport}{rule}"
        )


class IsolationVerifier:
    """Prove pairwise tenant isolation over one shared path table."""

    def __init__(
        self,
        registry: SliceRegistry,
        table: PathTable,
        hs: HeaderSpace,
        provider=None,
        updater=None,
    ) -> None:
        self.registry = registry
        self.table = table
        self.hs = hs
        #: An :class:`~repro.core.incremental.LpmProvider` (or anything with
        #: prefix ``trees``) for blame resolution; optional.
        self.provider = provider if hasattr(provider, "trees") else None
        #: The updater whose change feed scopes incremental rechecks.
        self.updater = updater
        self._dirty_token: Optional[Tuple[int, int]] = None
        self._change_token: Optional[Tuple[int, int]] = None
        # -- accounting (read by tests, the fuzz ledger, and /metrics) ------
        self.full_checks = 0
        self.incremental_checks = 0
        self.checks_total = 0  # cumulative (table pair, tenant) proofs
        self.incidents_total = 0
        self.last_table_pairs = 0  # table pairs examined by the last run
        self.last_tenant_pairs = 0  # (pair, tenant) proofs by the last run
        self.last_incidents = 0
        #: Tenants the last recheck considered as possible leak sources;
        #: ``None`` means all (full check, or change-feed overflow).
        self.last_victims: Optional[Set[str]] = None

    # -- entry points ------------------------------------------------------

    def check_full(self) -> List[IsolationIncident]:
        """Prove isolation for every tenant pair over the whole table."""
        self.full_checks += 1
        self._dirty_token = self.table.dirty_token()
        if self.updater is not None:
            self._change_token = self.updater.change_token()
        self.last_victims = None
        return self._check_pairs(self.table.pairs(), victims=None)

    def recheck(self) -> List[IsolationIncident]:
        """Re-prove only what rule churn since the last check can break.

        Scope = (pairs the dirty journal reports mutated) × (tenants whose
        footprint intersects a changed-header predicate from the change
        feed).  Either journal overflowing degrades that axis to "all".
        """
        self.incremental_checks += 1
        token, dirty = self.table.dirty_since(self._dirty_token)
        self._dirty_token = token
        victims: Optional[Set[str]] = None
        if self.updater is not None:
            change_token, changes = self.updater.changes_since(
                self._change_token
            )
            self._change_token = change_token
            if changes is not None:
                bdd = self.hs.bdd
                victims = set()
                for predicate in changes:
                    for tenant in self.registry:
                        if tenant.name in victims:
                            continue
                        if (
                            bdd.and_(predicate, tenant.footprint)
                            != self.hs.empty
                        ):
                            victims.add(tenant.name)
        self.last_victims = victims
        if dirty is None:
            return self._check_pairs(self.table.pairs(), victims)
        if not dirty or victims == set():
            self.last_table_pairs = 0
            self.last_tenant_pairs = 0
            self.last_incidents = 0
            return []
        return self._check_pairs(dirty, victims)

    def retarget(self, table: PathTable) -> List[IsolationIncident]:
        """Point at a replacement table and re-prove everything."""
        self.table = table
        return self.check_full()

    # -- the proof ---------------------------------------------------------

    def _check_pairs(
        self,
        pairs: Sequence[Tuple[PortRef, PortRef]],
        victims: Optional[Set[str]],
    ) -> List[IsolationIncident]:
        bdd = self.hs.bdd
        empty = self.hs.empty
        found: List[IsolationIncident] = []
        table_pairs = 0
        tenant_pairs = 0
        for inport, outport in pairs:
            owner = self.registry.port_owner.get(outport)
            if owner is None:
                # Unowned delivery target (or the drop port): headers
                # arriving there leave no tenant's traffic in another's
                # hands.  Documented blind spot: a leak to an *unowned*
                # edge port is out of scope of the pairwise property.
                continue
            entries = self.table.lookup(inport, outport)
            if not entries:
                continue
            table_pairs += 1
            for tenant in self.registry:
                if tenant.name == owner:
                    continue
                if victims is not None and tenant.name not in victims:
                    continue
                tenant_pairs += 1
                for entry in entries:
                    leak = bdd.and_(entry.exit_header_set(), tenant.footprint)
                    if leak == empty:
                        continue
                    witness = self.hs.sample_header(leak)
                    found.append(
                        IsolationIncident(
                            src_tenant=tenant.name,
                            dst_tenant=owner,
                            inport=inport,
                            outport=outport,
                            hops=entry.hops,
                            witness=witness,
                            leaked_rule=self._blame(outport, witness),
                        )
                    )
        self.checks_total += tenant_pairs
        self.last_table_pairs = table_pairs
        self.last_tenant_pairs = tenant_pairs
        self.last_incidents = len(found)
        self.incidents_total += len(found)
        return found

    def _blame(
        self, outport: PortRef, witness: Optional[Dict[str, int]]
    ) -> Optional[Tuple[str, str, int]]:
        """The LPM rule governing the witness at the exit switch."""
        if self.provider is None or witness is None:
            return None
        tree = self.provider.trees.get(outport.switch)
        if tree is None:
            return None
        value = witness["dst_ip"]
        node = tree.root
        best = None
        while True:
            for child in node.children:
                if child.contains((value, 32)):
                    node = child
                    best = child
                    break
            else:
                break
        if best is None:
            return None
        prefix_value, plen = best.prefix
        return (
            outport.switch,
            f"{format_ipv4(prefix_value)}/{plen}",
            best.out_port,
        )
