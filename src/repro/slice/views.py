"""Per-tenant views of the shared path table.

A :class:`TenantPathTable` is a private :class:`~repro.core.pathtable.PathTable`
holding, for each (inport, outport) pair, the shared table's entries
intersected with the tenant's footprint.  Crucially the view lives on the
**same** :class:`~repro.bdd.headerspace.HeaderSpace`: every sliced header
set is just another node in the shared hash-consed store, so N tenants do
not cost N node tables, and re-slicing the same entry twice allocates
nothing new.

Views resync *lazily* off the shared table's dirty-pair journal: each view
holds its own cursor, and :meth:`TenantPathTable.sync` re-slices only the
pairs that mutated since the last sync (falling back to a full re-slice on
journal overflow).  Because the view is itself a real ``PathTable``, each
tenant gets the whole acceleration stack for free — per-pair fast indexes,
a vector kernel, and a private dirty-pair journal its own consumers can
ride.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..bdd.headerspace import HeaderSpace
from ..core.pathtable import PathEntry, PathTable
from ..netmodel.topology import PortRef
from .registry import Tenant

__all__ = ["TenantPathTable"]


class TenantPathTable:
    """One tenant's slice of a shared path table, journal-synced."""

    def __init__(
        self, shared: PathTable, hs: HeaderSpace, tenant: Tenant
    ) -> None:
        self.shared = shared
        self.hs = hs
        self.tenant = tenant
        self.table = PathTable()
        self._token: Optional[Tuple[int, int]] = None  # None => full sync
        self.pair_syncs = 0  # pairs re-sliced (incremental work done)
        self.full_syncs = 0  # journal overflows forcing a full re-slice
        self.sync()

    # -- journal-driven resync ---------------------------------------------

    def sync(self) -> int:
        """Re-slice every pair the shared table dirtied; returns the count."""
        token, dirty = self.shared.dirty_since(self._token)
        self._token = token
        if dirty is None:
            self.full_syncs += 1
            pairs = list(
                dict.fromkeys(self.shared.pairs() + self.table.pairs())
            )
        elif not dirty:
            return 0
        else:
            pairs = dirty
        for inport, outport in pairs:
            self._sync_pair(inport, outport)
        self.pair_syncs += len(pairs)
        return len(pairs)

    def _sync_pair(self, inport: PortRef, outport: PortRef) -> bool:
        bdd = self.hs.bdd
        footprint = self.tenant.footprint
        sliced: List[PathEntry] = []
        for entry in self.shared.lookup(inport, outport):
            headers = bdd.and_(entry.headers, footprint)
            if headers == self.hs.empty:
                continue
            if entry.rewrites:
                exit_headers = self.hs.apply_sets(headers, entry.rewrites)
            else:
                exit_headers = None
            sliced.append(
                PathEntry(
                    headers=headers,
                    hops=entry.hops,
                    tag=entry.tag,
                    exit_headers=exit_headers,
                    rewrites=entry.rewrites,
                )
            )
        return self.table.replace_pair(inport, outport, sliced)

    def retarget(self, shared: PathTable) -> None:
        """Point at a replacement shared table (full rebuild swapped it)."""
        self.shared = shared
        self._token = None
        self.sync()

    # -- read API (delegating to the private table) --------------------------

    def lookup(self, inport: PortRef, outport: PortRef) -> Tuple[PathEntry, ...]:
        return self.table.lookup(inport, outport)

    def pairs(self) -> List[Tuple[PortRef, PortRef]]:
        return self.table.pairs()

    def num_paths(self) -> int:
        return self.table.num_paths()

    def vector_kernel(self):
        """The tenant slice compiled for batch verification."""
        return self.table.vector_kernel(self.hs)

    def stats(self):
        return self.table.stats()

    def __len__(self) -> int:
        return len(self.table)
