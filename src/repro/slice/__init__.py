"""Multi-tenant slicing over the VeriDP core.

Real SDN fabrics are sliced: many virtual operators share one physical
network.  This package layers tenancy on top of the existing verification
machinery:

* :class:`~repro.slice.registry.SliceRegistry` — tenant definitions: each
  tenant owns a destination-prefix *footprint* (compiled to a BDD on the
  shared :class:`~repro.bdd.headerspace.HeaderSpace`, so footprints share
  the hash-consed node store) and a set of edge ports (derived from its
  hosts).
* :class:`~repro.slice.views.TenantPathTable` — a per-tenant view of the
  shared path table, resynced lazily off the shared dirty-pair journal.
* :class:`~repro.slice.isolation.IsolationVerifier` — proves, for every
  tenant pair (A, B), that no header in A's footprint is deliverable at an
  edge port owned by B; runs incrementally off the updater's change feed
  so rule churn re-checks only dirty slices, and emits blamed
  :class:`~repro.slice.isolation.IsolationIncident` records.

The server integrates all three via ``VeriDPServer(slices=...)``; the
tenant-churn fuzz campaign (:mod:`repro.probe.fuzz_tenants`) exercises the
whole layer with ledger reconciliation.
"""

from .isolation import IsolationIncident, IsolationVerifier
from .registry import SliceRegistry, Tenant, TenantSpec
from .views import TenantPathTable

__all__ = [
    "SliceRegistry",
    "Tenant",
    "TenantSpec",
    "TenantPathTable",
    "IsolationVerifier",
    "IsolationIncident",
]
