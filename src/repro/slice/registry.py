"""Tenant definitions: header-space footprints and edge-port ownership.

A *tenant* (virtual operator) is declared by the destination prefixes it
owns and the hosts attached to its slice.  The registry compiles each
tenant's prefixes into a footprint BDD **on the shared HeaderSpace** — the
hash-consed node store means N tenants cost one node table, not N — and
derives edge-port ownership from the topology's host attachments.

Footprints must be pairwise disjoint: overlapping prefixes would make
"whose header is this?" ambiguous, so :meth:`SliceRegistry.register`
rejects any tenant whose footprint intersects an existing one.

Hot-path attribution (classifying a report to a tenant) deliberately does
*not* evaluate BDDs: the registry keeps a plain longest-prefix-match dict
over the declared prefixes, so per-report cost is a few integer masks and
dict probes, independent of tenant count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..bdd.headerspace import HeaderSpace, format_ipv4, parse_prefix
from ..netmodel.topology import PortRef, Topology

__all__ = ["TenantSpec", "Tenant", "SliceRegistry"]


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant (what ``slices.json`` holds)."""

    name: str
    prefixes: Tuple[str, ...]  # "a.b.c.d/len" destination prefixes owned
    hosts: Tuple[str, ...] = ()  # host ids whose attachment ports it owns
    sampling_interval: Optional[float] = None  # per-tenant T_s override
    queue_share: Optional[float] = None  # fraction of the ingest queue

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.prefixes:
            raise ValueError(f"tenant {self.name!r} declares no prefixes")
        if self.queue_share is not None and not 0 < self.queue_share <= 1:
            raise ValueError(
                f"tenant {self.name!r}: queue_share must be in (0, 1], "
                f"got {self.queue_share}"
            )
        if self.sampling_interval is not None and self.sampling_interval <= 0:
            raise ValueError(
                f"tenant {self.name!r}: sampling_interval must be positive"
            )


@dataclass
class Tenant:
    """A registered tenant: the spec plus its compiled artifacts."""

    spec: TenantSpec
    footprint: int  # BDD of the owned destination header space
    prefixes: Tuple[Tuple[int, int], ...]  # parsed (value, plen)
    edge_ports: Tuple[PortRef, ...] = ()

    @property
    def name(self) -> str:
        return self.spec.name

    def __str__(self) -> str:
        prefixes = ", ".join(
            f"{format_ipv4(v)}/{p}" for v, p in self.prefixes
        )
        ports = ", ".join(str(p) for p in self.edge_ports) or "none"
        return f"tenant {self.name}: prefixes [{prefixes}] ports [{ports}]"


class SliceRegistry:
    """All tenants sharing one fabric, validated for disjointness.

    The registry is bound to one :class:`HeaderSpace` (footprint BDDs live
    in its node table) and optionally a :class:`Topology` (for edge-port
    ownership).  Registration order is preserved — it is the deterministic
    iteration order of views, metrics and isolation checks.
    """

    def __init__(
        self, hs: HeaderSpace, topo: Optional[Topology] = None
    ) -> None:
        self.hs = hs
        self.topo = topo
        self.tenants: Dict[str, Tenant] = {}
        #: edge port -> owning tenant name (delivery targets for isolation).
        self.port_owner: Dict[PortRef, str] = {}
        # Longest-prefix-match attribution table: (masked value, plen) ->
        # tenant name, probed from the longest registered plen down.
        self._lpm: Dict[Tuple[int, int], str] = {}
        self._plens: List[int] = []  # distinct plens, longest first
        # Vectorized-LPM cache (classify_dst_batch): bumped on any
        # register/remove so stale sorted-key arrays are never probed.
        self._lpm_epoch = 0
        self._lpm_vec = None

    def __len__(self) -> int:
        return len(self.tenants)

    def __iter__(self):
        return iter(self.tenants.values())

    # -- registration ------------------------------------------------------

    def register(self, spec: TenantSpec) -> Tenant:
        """Compile and admit one tenant; raises on overlap or name reuse."""
        if spec.name in self.tenants:
            raise ValueError(f"duplicate tenant name {spec.name!r}")
        parsed = tuple(parse_prefix(p) for p in spec.prefixes)
        bdd = self.hs.bdd
        footprint = bdd.or_many(
            [self.hs.prefix("dst_ip", value, plen) for value, plen in parsed]
        )
        if footprint == self.hs.empty:
            raise ValueError(f"tenant {spec.name!r} has an empty footprint")
        for other in self.tenants.values():
            if bdd.and_(footprint, other.footprint) != self.hs.empty:
                raise ValueError(
                    f"tenant {spec.name!r} footprint overlaps "
                    f"tenant {other.name!r}"
                )
        edge_ports: Tuple[PortRef, ...] = ()
        if self.topo is not None and spec.hosts:
            edge_ports = tuple(
                self.topo.host_port(host) for host in spec.hosts
            )
        tenant = Tenant(
            spec=spec,
            footprint=footprint,
            prefixes=parsed,
            edge_ports=edge_ports,
        )
        self.tenants[spec.name] = tenant
        for ref in edge_ports:
            owner = self.port_owner.get(ref)
            if owner is not None and owner != spec.name:
                del self.tenants[spec.name]
                raise ValueError(
                    f"edge port {ref} is owned by both {owner!r} and "
                    f"{spec.name!r}"
                )
            self.port_owner[ref] = spec.name
        for value, plen in parsed:
            self._lpm[(self._mask(value, plen), plen)] = spec.name
        self._plens = sorted(
            {plen for _, plen in self._lpm}, reverse=True
        )
        self._lpm_epoch += 1
        return tenant

    def remove(self, name: str) -> Tenant:
        """Deregister a tenant (its footprint BDD stays hash-consed)."""
        tenant = self.tenants.pop(name)
        for ref in tenant.edge_ports:
            if self.port_owner.get(ref) == name:
                del self.port_owner[ref]
        for value, plen in tenant.prefixes:
            self._lpm.pop((self._mask(value, plen), plen), None)
        self._plens = sorted(
            {plen for _, plen in self._lpm}, reverse=True
        )
        self._lpm_epoch += 1
        return tenant

    @staticmethod
    def _mask(value: int, plen: int) -> int:
        if plen == 0:
            return 0
        return value >> (32 - plen) << (32 - plen)

    # -- attribution -------------------------------------------------------

    def classify_dst(self, dst_ip: int) -> Optional[str]:
        """Owner of a destination address, by longest prefix match."""
        for plen in self._plens:
            owner = self._lpm.get((self._mask(dst_ip, plen), plen))
            if owner is not None:
                return owner
        return None

    def _lpm_tables(self, np):
        """Per-plen ``(plen, sorted masked keys, owner names)`` arrays for
        the vectorized probe, cached until the LPM table changes."""
        cached = self._lpm_vec
        if cached is not None and cached[0] == self._lpm_epoch:
            return cached[1]
        by_plen: Dict[int, List[Tuple[int, str]]] = {}
        for (masked, plen), name in self._lpm.items():
            by_plen.setdefault(plen, []).append((masked, name))
        tables = []
        for plen in self._plens:
            rows = sorted(by_plen.get(plen, ()))
            keys = np.array([m for m, _ in rows], dtype=np.uint32)
            names = np.array([nm for _, nm in rows], dtype=object)
            tables.append((plen, keys, names))
        self._lpm_vec = (self._lpm_epoch, tables)
        return tables

    def classify_dst_batch(self, dst_ips) -> List[Optional[str]]:
        """Vectorized :meth:`classify_dst` over a column of addresses.

        One masked ``searchsorted`` probe per registered prefix length
        replaces per-address dict walks — the batched-ingestion tenant
        attribution path.  Element-for-element identical to the scalar
        probe (parity-tested); scalar fallback when numpy is unavailable.
        """
        try:
            import numpy as np
        except Exception:  # pragma: no cover - numpy is baked into CI
            np = None
        if np is None:
            return [self.classify_dst(int(d)) for d in dst_ips]
        dst = np.asarray(dst_ips, dtype=np.uint32)
        n = int(dst.shape[0])
        out = np.full(n, None, dtype=object)
        if n == 0 or not self._plens:
            return out.tolist()
        unresolved = np.ones(n, dtype=bool)
        for plen, keys, names in self._lpm_tables(np):
            if not keys.shape[0] or not unresolved.any():
                continue
            if plen == 0:
                masked = np.zeros(n, dtype=np.uint32)
            else:
                shift = np.uint32(32 - plen)
                masked = (dst >> shift) << shift
            idx = np.searchsorted(keys, masked)
            # Clamp the off-the-end probes; the equality check below rejects
            # them (masked > every key implies masked != keys[0]).
            idx[idx == keys.shape[0]] = 0
            hit = (keys[idx] == masked) & unresolved
            if hit.any():
                out[hit] = names[idx[hit]]
                unresolved &= ~hit
        return out.tolist()

    def classify_header(self, header) -> Optional[str]:
        """Owner of a packet header (object with ``dst_ip`` or mapping)."""
        dst = getattr(header, "dst_ip", None)
        if dst is None:
            dst = header["dst_ip"]
        return self.classify_dst(dst)

    def entry_resolver(self) -> Callable:
        """A ``(inport, outport, entry) -> tenant|None`` attribution hook.

        Used by :meth:`repro.analysis.coverage.CoverageTracker.dark_paths`
        to filter the dark list per tenant: a path belongs to the tenant
        owning its delivery port when that port is owned, else to the
        tenant whose footprint its destination falls in.
        """

        def resolve(inport: PortRef, outport: PortRef, entry) -> Optional[str]:
            owner = self.port_owner.get(outport)
            if owner is not None:
                return owner
            sample = self.hs.sample_header(entry.exit_header_set())
            if sample is None:
                return None
            return self.classify_dst(sample["dst_ip"])

        return resolve

    # -- per-tenant budget views -------------------------------------------

    def sampling_intervals(self) -> Dict[str, float]:
        """Tenants with an explicit ``T_s`` override."""
        return {
            t.name: t.spec.sampling_interval
            for t in self.tenants.values()
            if t.spec.sampling_interval is not None
        }

    def queue_shares(self) -> Dict[str, float]:
        """Tenants with an explicit ingest-queue share."""
        return {
            t.name: t.spec.queue_share
            for t in self.tenants.values()
            if t.spec.queue_share is not None
        }

    # -- declarative loading -----------------------------------------------

    @classmethod
    def from_specs(
        cls,
        specs: Iterable[TenantSpec],
        hs: HeaderSpace,
        topo: Optional[Topology] = None,
    ) -> "SliceRegistry":
        registry = cls(hs, topo)
        for spec in specs:
            registry.register(spec)
        return registry

    @staticmethod
    def parse_specs(data: dict) -> List[TenantSpec]:
        """Parse the ``slices.json`` document shape into specs.

        Expected shape::

            {"tenants": [{"name": "red",
                          "prefixes": ["10.0.1.0/24"],
                          "hosts": ["h1"],
                          "sampling_interval": 0.5,
                          "queue_share": 0.5}, ...]}
        """
        tenants = data.get("tenants")
        if not isinstance(tenants, list) or not tenants:
            raise ValueError("slices document needs a non-empty 'tenants' list")
        specs = []
        for raw in tenants:
            specs.append(
                TenantSpec(
                    name=raw["name"],
                    prefixes=tuple(raw["prefixes"]),
                    hosts=tuple(raw.get("hosts", ())),
                    sampling_interval=raw.get("sampling_interval"),
                    queue_share=raw.get("queue_share"),
                )
            )
        return specs

    @classmethod
    def load(
        cls,
        path: str,
        hs: HeaderSpace,
        topo: Optional[Topology] = None,
    ) -> "SliceRegistry":
        """Build a registry from a ``slices.json`` file."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return cls.from_specs(cls.parse_specs(data), hs, topo)
