"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro table2
    python -m repro fig12 --trials 500 --topo ft4
    python -m repro table3 --trials 5
    python -m repro fig13 --repeats 10
    python -m repro fig14
    python -m repro table4
    python -m repro fig6
    python -m repro functest
    python -m repro demo
    python -m repro tradeoff --intervals 0.5 1 2
    python -m repro paths --topo ft4
    python -m repro probe --topo ft4 --passive 0.1 --max-probes 500
    python -m repro probe --topo ft4 --fuzz 12 --seed 0
    python -m repro report
    python -m repro serve --topo ft4 --metrics-port 9090
    python -m repro serve --topo ft4 --state-dir state/ --reports 100
    python -m repro replay state/ --stop-seq 500

Each subcommand builds its scenario, runs the matching harness from
:mod:`repro.analysis`, and prints the table/series the paper reports
(``report`` collates the tables persisted by a benchmark run).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Dict, List, Sequence

__all__ = ["main", "render_table"]


def render_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> str:
    """Aligned text table with a banner (the CLI's output format)."""
    if rows:
        widths = [
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
            for i in range(len(headers))
        ]
    else:
        widths = [len(str(h)) for h in headers]
    lines = [
        "=" * 72,
        title,
        "=" * 72,
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(str(c).ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


def _scenario_factories():
    from .topologies import build_fattree, build_internet2, build_stanford

    return {
        "stanford": lambda args: build_stanford(subnets_per_zone=args.scale),
        "internet2": lambda args: build_internet2(prefixes_per_pop=args.scale),
        "ft4": lambda args: build_fattree(4),
        "ft6": lambda args: build_fattree(6),
    }


def _scenario_for_topo_name(name: str, args: argparse.Namespace):
    """Rebuild the scenario a state directory's ``meta.json`` names.

    Replay needs the same topology *structure* (switches, ports, links) the
    recorded server ran on; the flow tables themselves are replayed from
    the WAL.  Scaled topologies (stanford/internet2) additionally need the
    same ``--scale`` the recording run used.
    """
    import re

    from .topologies import build_fattree, build_internet2, build_stanford
    from .topologies.generators import build_grid, build_linear, build_ring

    if name == "stanford":
        return build_stanford(subnets_per_zone=args.scale)
    if name == "internet2":
        return build_internet2(prefixes_per_pop=args.scale)
    if m := re.fullmatch(r"fattree-(\d+)", name):
        return build_fattree(int(m.group(1)))
    if m := re.fullmatch(r"linear-(\d+)", name):
        return build_linear(int(m.group(1)))
    if m := re.fullmatch(r"ring-(\d+)", name):
        return build_ring(int(m.group(1)))
    if m := re.fullmatch(r"grid-(\d+)x(\d+)", name):
        return build_grid(int(m.group(1)), int(m.group(2)))
    raise SystemExit(
        f"cannot rebuild topology {name!r} from its name; "
        f"replay supports stanford, internet2, fattree-K, linear-N, "
        f"ring-N and grid-WxH state directories"
    )


# -- subcommands --------------------------------------------------------


def cmd_table2(args: argparse.Namespace) -> int:
    from .analysis import build_and_measure

    rows = []
    for name, factory in _scenario_factories().items():
        row = build_and_measure(factory(args), name)
        s = row.stats
        rows.append(
            (name, s.num_pairs, s.num_paths,
             f"{s.avg_path_length:.2f}", f"{s.build_time_s:.3f}")
        )
    print(render_table(
        "Table 2: path table statistics",
        ["setup", "entries", "paths", "avg len", "time (s)"],
        rows,
    ))
    return 0


def cmd_fig6(args: argparse.Namespace) -> int:
    from .analysis import build_and_measure, distribution_cdf, path_count_distribution

    rows = []
    for name in ("stanford", "internet2"):
        row = build_and_measure(_scenario_factories()[name](args), name)
        dist = path_count_distribution(row.table)
        for k, frac in distribution_cdf(dist):
            rows.append((name, k, dist[k], f"{100 * frac:.1f}%"))
    print(render_table(
        "Figure 6: paths per (inport, outport) pair",
        ["setup", "#paths/pair", "#pairs", "CDF"],
        rows,
    ))
    return 0


def cmd_fig12(args: argparse.Namespace) -> int:
    from .analysis import build_and_measure, sweep_fnr_over_bits

    row = build_and_measure(_scenario_factories()[args.topo](args), args.topo)
    results = sweep_fnr_over_bits(
        row.builder, row.table,
        bit_widths=tuple(args.bits), trials=args.trials, seed=args.seed,
    )
    print(render_table(
        f"Figure 12 ({args.topo}): false negative rate vs Bloom size",
        ["bits", "n", "n1", "n2", "abs FNR", "rel FNR"],
        [
            (r.bits, r.trials, r.arrived, r.missed,
             f"{100 * r.absolute_fnr:.2f}%", f"{100 * r.relative_fnr:.2f}%")
            for r in results
        ],
    ))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from .analysis import run_localization_campaign
    from .topologies import build_fattree

    rows = []
    for k in (4, 6):
        result = run_localization_campaign(
            build_fattree(k), trials=args.trials, seed=args.seed,
            label=f"FT(k={k})",
        )
        rows.append(
            (result.label, result.failed_verifications, result.recovered_paths,
             f"{100 * result.localization_probability:.1f}%",
             f"{100 * result.blame_accuracy:.1f}%")
        )
    print(render_table(
        "Table 3: fault localization",
        ["setup", "# failed", "# recovered", "loc. prob", "blame acc"],
        rows,
    ))
    return 0


def cmd_fig13(args: argparse.Namespace) -> int:
    from .analysis import build_and_measure, measure_verification_time

    rows = []
    for name in ("stanford", "internet2"):
        row = build_and_measure(_scenario_factories()[name](args), name)
        timing = measure_verification_time(
            row.builder, row.table, name, repeats=args.repeats
        )
        rows.append(
            (name, timing.reports, f"{timing.mean_us:.2f}",
             f"{timing.median_us:.2f}", f"{timing.throughput_per_s:,.0f}")
        )
    print(render_table(
        "Figure 13: verification time per tag report",
        ["setup", "reports", "mean us", "median us", "verifs/s"],
        rows,
    ))
    return 0


def cmd_fig14(args: argparse.Namespace) -> int:
    import statistics

    from .analysis import measure_update_times
    from .topologies import build_internet2, internet2_lpm_ruleset

    scenario = build_internet2(prefixes_per_pop=args.scale, install_routes=False)
    ruleset = internet2_lpm_ruleset(scenario)
    timing, _ = measure_update_times(scenario, ruleset, "NEWY")
    print(render_table(
        "Figure 14: incremental path-table update time (Internet2, NEWY)",
        ["metric", "value"],
        [
            ("rules", len(timing.times_ms)),
            ("mean (ms)", f"{timing.mean_ms:.3f}"),
            ("median (ms)", f"{statistics.median(timing.times_ms):.3f}"),
            ("max (ms)", f"{timing.max_ms:.3f}"),
            ("% under 10 ms", f"{100 * timing.fraction_under(10):.1f}%"),
        ],
    ))
    return 0


def cmd_table4(args: argparse.Namespace) -> int:
    from .dataplane import HardwarePipelineModel, PAPER_PACKET_SIZES

    model = HardwarePipelineModel()
    rows_by_metric = model.table4_rows(PAPER_PACKET_SIZES)
    print(render_table(
        "Table 4: data-plane processing delay (cycle model @125 MHz)",
        ["metric", *PAPER_PACKET_SIZES],
        [(metric, *values) for metric, values in rows_by_metric.items()],
    ))
    return 0


def cmd_tradeoff(args: argparse.Namespace) -> int:
    from .analysis import sweep_sampling_intervals
    from .topologies import build_fattree

    results = sweep_sampling_intervals(
        lambda: build_fattree(4),
        intervals=args.intervals,
        trials=args.trials,
        seed=args.seed,
    )
    print(render_table(
        "Section 4.5 trade-off: detection latency vs sampling overhead",
        ["T_s (s)", "mean lat (s)", "max lat (s)", "bound (s)", "sampled", "missed"],
        [
            (
                f"{r.sampling_interval:.2f}",
                f"{r.mean_latency:.2f}",
                f"{r.max_latency:.2f}",
                f"{r.theoretical_bound:.2f}",
                f"{100 * r.sampling_rate:.1f}%",
                r.undetected,
            )
            for r in results
        ],
    ))
    return 0


def cmd_paths(args: argparse.Namespace) -> int:
    from .bdd.headerspace import HeaderSpace
    from .core.pathtable import PathTableBuilder

    scenario = _scenario_factories()[args.topo](args)
    hs = HeaderSpace()
    table = PathTableBuilder(scenario.topo, hs).build()
    print(table.dump(hs, limit=args.limit))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Collate every persisted bench table into one document."""
    import glob
    import os

    results_dir = os.path.join("benchmarks", "results")
    files = sorted(glob.glob(os.path.join(results_dir, "*.txt")))
    if not files:
        print(
            f"no results in {results_dir}/ — run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
        return 1
    print(f"# Reproduction results ({len(files)} tables)\n")
    for path in files:
        with open(path) as handle:
            print(handle.read())
    return 0


def cmd_functest(args: argparse.Namespace) -> int:
    # The Section 6.2 walk-through lives in the examples; run it in-process.
    sys.path.insert(0, "examples")
    import importlib

    module = importlib.import_module("function_tests")
    module.main()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a live VeriDP daemon: UDP report ingestion + monitoring endpoint.

    With ``--reports N`` the command also self-drives N sampled reports
    from the topology's own data plane through the UDP socket — a built-in
    smoke mode that exercises the full ingestion path and then prints the
    consolidated statistics.  ``--duration S`` keeps serving S more
    seconds; with neither flag it serves until interrupted.
    """
    import time as _time

    from .core import VeriDPServer
    from .core.daemon import ShardedVeriDPDaemon, UdpReportListener, VeriDPDaemon
    from .core.reports import pack_report
    from .dataplane import DataPlaneNetwork

    scenario = _scenario_factories()[args.topo](args)
    server = VeriDPServer(
        scenario.topo,
        scenario.channel,
        state_dir=args.state_dir,
        fsync=args.fsync,
        build_workers=args.build_workers,
        coalesce_ms=args.coalesce_ms,
    )
    if args.state_dir is not None:
        print(
            f"durable state in {args.state_dir} "
            f"(booted from {server.boot_source}, "
            f"state version {server.state_version}, fsync={args.fsync})"
        )
    if args.slices is not None:
        from .slice import SliceRegistry

        try:
            registry = SliceRegistry.load(args.slices, server.hs, scenario.topo)
        except (KeyError, ValueError, OSError) as exc:
            raise SystemExit(f"bad slice config {args.slices}: {exc}")
        incidents = server.set_slices(registry)
        print(
            f"slices: {len(registry.tenants)} tenants "
            f"({', '.join(sorted(registry.tenants))}); initial isolation "
            f"check: {len(incidents)} incidents"
        )
        for incident in incidents:
            print(f"  {incident}")
    if args.cluster > 0:
        return _serve_cluster(args, scenario, server)
    if args.mode == "sharded":
        daemon = ShardedVeriDPDaemon(
            server,
            workers=args.workers,
            vector=False if args.no_vector else None,
            metrics_port=args.metrics_port,
            metrics_host=args.metrics_host,
        )
    else:
        daemon = VeriDPDaemon(
            server,
            workers=args.workers,
            metrics_port=args.metrics_port,
            metrics_host=args.metrics_host,
        )
    daemon.start()
    listener = UdpReportListener(
        daemon,
        host=args.host,
        port=args.port,
        ingest_batch=args.ingest_batch,
    )
    listener.start()
    print(f"listening for tag reports on udp://{listener.address[0]}:{listener.address[1]}")
    if daemon.metrics_address is not None:
        host, port = daemon.metrics_address
        print(f"monitoring endpoint on http://{host}:{port}  (/metrics /healthz /varz)")
    try:
        if args.reports > 0:
            net = DataPlaneNetwork(scenario.topo, scenario.channel)
            pairs = scenario.host_pairs()
            sent = 0
            import socket as _socket

            client = _socket.socket(_socket.AF_INET, _socket.SOCK_DGRAM)
            try:
                for i in range(args.reports):
                    src, dst = pairs[i % len(pairs)]
                    result = net.inject_from_host(
                        src, scenario.header_between(src, dst)
                    )
                    for report in result.reports:
                        client.sendto(
                            pack_report(report, net.codec), listener.address
                        )
                        sent += 1
            finally:
                client.close()
            deadline = _time.monotonic() + 10.0
            while listener.received < sent and _time.monotonic() < deadline:
                _time.sleep(0.02)
            daemon.join()
            print(f"self-drive: sent {sent} reports from {args.reports} packets")
        if args.duration is not None:
            _time.sleep(args.duration)
        elif args.reports == 0:
            while True:  # serve until interrupted
                _time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        listener.stop()
        daemon.join()
        stats = daemon.stats()
        daemon.stop()
        server.close()
    rows = [(key, stats[key]) for key in sorted(stats)]
    rows += [(f"udp_{k}", v) for k, v in sorted(listener.stats().items())]
    print(render_table(f"serve ({args.mode}) statistics", ["metric", "value"], rows))
    return 0


def _serve_cluster(args: argparse.Namespace, scenario, server) -> int:
    """The ``serve --cluster N`` path: frontend + N nodes + coordinator."""
    import socket as _socket
    import time as _time

    from .cluster import VeriDPCluster
    from .core.reports import pack_report
    from .dataplane import DataPlaneNetwork

    cluster = VeriDPCluster(
        server,
        nodes=args.cluster,
        node_mode=args.cluster_mode,
        engine=args.engine,
        batch_size=args.batch_size,
        ingest_batch=args.ingest_batch,
        vector=False if args.no_vector else None,
    )
    endpoint = None
    try:
        cluster.start()
        address = cluster.listen_udp(args.host, args.port)
        print(
            f"cluster: {args.cluster} {args.cluster_mode} nodes, "
            f"{cluster.ingest.engine} ingest, reports on "
            f"udp://{address[0]}:{address[1]}"
        )
        if args.metrics_port is not None:
            endpoint = cluster.metrics_endpoint(
                host=args.metrics_host, port=args.metrics_port
            )
            endpoint.start()
            host, port = endpoint.address
            print(f"aggregated metrics on http://{host}:{port}/metrics")
        if args.reports > 0:
            net = DataPlaneNetwork(scenario.topo, scenario.channel)
            pairs = scenario.host_pairs()
            sent = 0
            client = _socket.socket(_socket.AF_INET, _socket.SOCK_DGRAM)
            try:
                for i in range(args.reports):
                    src, dst = pairs[i % len(pairs)]
                    result = net.inject_from_host(
                        src, scenario.header_between(src, dst)
                    )
                    for report in result.reports:
                        client.sendto(pack_report(report, net.codec), address)
                        sent += 1
            finally:
                client.close()
            deadline = _time.monotonic() + 10.0
            while (
                cluster.frontend.submitted < sent
                and _time.monotonic() < deadline
            ):
                _time.sleep(0.02)
            cluster.join()
            print(f"self-drive: sent {sent} reports from {args.reports} packets")
        if args.duration is not None:
            _time.sleep(args.duration)
        elif args.reports == 0:
            while True:  # serve until interrupted
                cluster.check_nodes()
                cluster.resync()
                cluster.flush()
                _time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        try:
            cluster.join()
        except TimeoutError:
            pass
        stats = cluster.stats()
        if endpoint is not None:
            endpoint.stop()
        cluster.stop()
        server.close()
    rows = []
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, dict):
            rows += [(f"{key}.{k}", v) for k, v in sorted(value.items())]
        else:
            rows.append((key, value))
    print(render_table("serve (cluster) statistics", ["metric", "value"], rows))
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Self-driving cluster demo: stream reports through N nodes with one
    mid-stream node kill + failover and one join + rebalance, then print
    the reconciled ledger — the ISSUE 9 acceptance scenario as a command.
    """
    from .cluster import VeriDPCluster
    from .core import VeriDPServer
    from .core.reports import pack_report
    from .dataplane import DataPlaneNetwork
    from .topologies.generators import build_linear

    factories = _scenario_factories()
    factories["linear"] = lambda args: build_linear(4)
    scenario = factories[args.topo](args)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    pairs = scenario.host_pairs()
    payloads = []
    for src, dst in pairs:
        result = net.inject_from_host(src, scenario.header_between(src, dst))
        payloads += [pack_report(r, net.codec) for r in result.reports]
    while len(payloads) < args.reports:
        payloads += payloads
    payloads = payloads[: args.reports]

    with VeriDPCluster(
        server,
        nodes=args.nodes,
        node_mode=args.node_mode,
        engine=args.engine,
        batch_size=args.batch_size,
    ) as cluster:
        third = max(1, len(payloads) // 3)
        for i, payload in enumerate(payloads):
            cluster.submit(payload)
            if args.churn and i == third:
                victim = cluster.nodes()[0]
                cluster.kill_node(victim)
                print(f"killed {victim} mid-stream")
            if args.churn and i == 2 * third:
                dead = cluster.check_nodes()
                if dead:
                    print(f"failover: {', '.join(dead)} "
                          f"({cluster.coordinator.redelivered} redelivered)")
                joined = cluster.add_node()
                print(f"joined {joined} mid-stream (rebalanced "
                      f"{cluster.coordinator.moved_pairs} pairs total)")
        cluster.check_nodes()
        cluster.join()
        stats = cluster.stats()
        converged = cluster.converged()

    rows = [
        ("nodes", stats["nodes"]),
        ("engine", stats["engine"]),
        ("submitted", stats["frontend"]["submitted"]),
        ("processed", stats["processed"]),
        ("malformed", stats["malformed"]),
        ("failovers", stats["failovers"]),
        ("redelivered", stats["redelivered"]),
        ("rebalances", stats["rebalances"]),
        ("moved_pairs", stats["moved_pairs"]),
        ("unknown_reingested", stats["unknown_reingested"]),
        ("replicas_converged", converged),
    ]
    rows += [(f"verdict[{k}]", v) for k, v in sorted(stats["counters"].items())]
    rows += [(f"tenant[{k}]", int(v)) for k, v in sorted(stats["tenants"].items())]
    print(render_table(
        f"cluster ({args.topo}, {args.nodes} {args.node_mode} nodes)",
        ["metric", "value"],
        rows,
    ))
    ok = (
        stats["processed"] + stats["malformed"]
        == stats["frontend"]["submitted"] - stats["frontend"]["precheck_rejected"]
        and converged
    )
    print("ledger reconciled" if ok else "LEDGER MISMATCH")
    return 0 if ok else 1


def cmd_replay(args: argparse.Namespace) -> int:
    """Deterministically re-verify a recorded report stream offline.

    Opens the state directory read-only, rebuilds the path table from the
    WAL (or the oldest covering snapshot when the log was pruned), and
    re-feeds every logged report through a fresh verification pipeline.
    ``--start-seq``/``--stop-seq`` window the verified reports, so the
    first bad report can be found by bisection on WAL sequence numbers.
    """
    from .persist import PersistentState
    from .persist.replay import replay as run_replay

    state = PersistentState(args.state_dir, read_only=True)
    try:
        meta = state.read_meta()
        if meta is None:
            print(f"{args.state_dir}: no meta.json — not a VeriDP state directory")
            return 1
        scenario = _scenario_for_topo_name(meta["topo"], args)
        result = run_replay(
            state,
            scenario.topo,
            start_seq=args.start_seq,
            stop_seq=args.stop_seq,
            localize=not args.no_localize,
        )
    finally:
        state.close()
    print(result.summary())
    rows = [
        (
            inc.seq,
            inc.verification.verdict.value,
            str(inc.verification.report.inport),
            str(inc.verification.report.outport),
            ", ".join(inc.localization.blamed_switches())
            if inc.localization is not None
            else "-",
        )
        for inc in result.incidents[: args.limit]
    ]
    print(render_table(
        f"replayed incidents ({meta['topo']}, "
        f"showing {len(rows)}/{len(result.incidents)})",
        ["wal seq", "verdict", "inport", "outport", "blamed"],
        rows,
    ))
    if result.first_failure_seq is not None:
        print(f"first failure at WAL seq {result.first_failure_seq}")
    return 0


def cmd_probe(args: argparse.Namespace) -> int:
    from .probe import ActiveProber, ProbeBudget

    budget = ProbeBudget(
        max_probes=args.max_probes,
        max_seconds=args.max_seconds,
        rate_per_s=args.rate,
    )

    if args.fuzz:
        from .probe import run_state_fuzz
        from .topologies import (
            build_fattree,
            build_internet2,
            build_linear,
            build_stanford,
        )

        factories = {
            "stanford": lambda: build_stanford(
                subnets_per_zone=args.scale, install_routes=False,
                with_acls=False, with_ssh_detours=False,
            ),
            "internet2": lambda: build_internet2(
                prefixes_per_pop=args.scale, install_routes=False
            ),
            "ft4": lambda: build_fattree(4, install_routes=False),
            "ft6": lambda: build_fattree(6, install_routes=False),
        }
        report = run_state_fuzz(
            factories[args.topo],
            rounds=args.fuzz,
            seed=args.seed,
            probe_budget=budget,
        )
        print(render_table(
            f"state fuzz ({args.topo}, seed {args.seed}, "
            f"{len(report.rounds)} rounds)",
            ["mutation", "rounds", "probes", "incidents", "detected", "blamed"],
            report.rows(),
        ))
        print(
            f"detection rate: {report.detection_rate:.0%} over "
            f"{len(report.desync_rounds)} desync rounds, "
            f"blame rate: {report.blame_rate:.0%}, final coverage: "
            f"{report.final_coverage:.0%}"
        )
        try:
            report.reconcile()
        except AssertionError as exc:
            print(exc)
            return 1
        print("ledger reconciled: all exercised desyncs detected, "
              "no false positives")
        return 0

    from .core import VeriDPServer
    from .dataplane import DataPlaneNetwork

    scenario = _scenario_factories()[args.topo](args)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    rng = random.Random(args.seed)
    pairs = scenario.host_pairs()
    sampled = rng.sample(pairs, max(1, int(len(pairs) * args.passive)))
    for src, dst in sampled:
        net.inject_from_host(src, scenario.header_between(src, dst))
    before = server.coverage.report()
    prober = ActiveProber(server, net, budget=budget)
    run = prober.run(max_rounds=args.rounds)
    after = server.coverage.report()
    tiers = prober.derivation
    print(render_table(
        f"active coverage ({args.topo}, {len(sampled)} passive flows)",
        ["stage", "paths", "pairs", "hops", "dark"],
        [
            ("passive", f"{before.verified_paths}/{before.total_paths}",
             f"{before.verified_pairs}/{before.total_pairs}",
             f"{before.verified_hops}/{before.total_hops}",
             len(before.dark_paths)),
            ("probed", f"{after.verified_paths}/{after.total_paths}",
             f"{after.verified_pairs}/{after.total_pairs}",
             f"{after.verified_hops}/{after.total_hops}",
             len(after.dark_paths)),
        ],
    ))
    print(str(run))
    print(
        f"witness tiers: {tiers.cube_tier} cube, {tiers.descent_tier} "
        f"descent, {tiers.empty} empty; {run.slice_probes} slice probes"
    )
    return 0 if run.converged else 1


def cmd_slice(args: argparse.Namespace) -> int:
    """Multi-tenant slices: check a slice config, or fuzz the slice layer.

    With ``--slices FILE`` the command loads the tenant map, attaches it to
    a live server over the chosen topology, and prints the per-tenant view
    sizes plus the result of the full cross-tenant isolation sweep — a
    config linter for slice deployments.  Without it, a seeded tenant-churn
    fuzz campaign (leaked rules, slice-map churn, noisy neighbors) runs and
    the ledger is reconciled, mirroring ``probe --fuzz``.
    """
    if args.slices is not None:
        from .core import VeriDPServer
        from .slice import SliceRegistry
        from .topologies import build_linear

        factories = _scenario_factories()
        factories["linear"] = lambda args: build_linear(4)
        scenario = factories[args.topo](args)
        server = VeriDPServer(scenario.topo, scenario.channel)
        try:
            registry = SliceRegistry.load(args.slices, server.hs, scenario.topo)
        except (KeyError, ValueError, OSError) as exc:
            raise SystemExit(f"bad slice config {args.slices}: {exc}")
        incidents = server.set_slices(registry)
        stats = server.stats()
        rows = [
            (
                name,
                len(registry.tenants[name].spec.prefixes),
                len(registry.tenants[name].edge_ports),
                stats["tenants"][name]["view_pairs"],
                stats["tenants"][name]["view_paths"],
            )
            for name in sorted(registry.tenants)
        ]
        print(render_table(
            f"slice map ({args.topo}, {len(registry.tenants)} tenants)",
            ["tenant", "prefixes", "edge ports", "view pairs", "view paths"],
            rows,
        ))
        iso = stats["isolation"]
        print(
            f"isolation sweep: {iso['last_table_pairs']} table pairs, "
            f"{iso['last_tenant_pairs']} tenant-pair proofs, "
            f"{len(incidents)} incidents"
        )
        for incident in incidents:
            print(f"  {incident}")
        return 1 if incidents else 0

    from .probe.fuzz_tenants import run_tenant_fuzz
    from .topologies import (
        build_fattree,
        build_internet2,
        build_linear,
        build_stanford,
    )

    factories = {
        "stanford": lambda: build_stanford(
            subnets_per_zone=args.scale, install_routes=False,
            with_acls=False, with_ssh_detours=False,
        ),
        "internet2": lambda: build_internet2(
            prefixes_per_pop=args.scale, install_routes=False
        ),
        "ft4": lambda: build_fattree(4, install_routes=False),
        "ft6": lambda: build_fattree(6, install_routes=False),
        "linear": lambda: build_linear(4, install_routes=False),
    }
    report = run_tenant_fuzz(
        factories[args.topo],
        rounds=args.fuzz,
        seed=args.seed,
        tenant_count=args.tenants,
    )
    print(render_table(
        f"tenant fuzz ({args.topo}, {args.tenants} tenants, seed "
        f"{args.seed}, {len(report.rounds)} rounds)",
        ["round kind", "rounds", "incidents", "detected", "blamed",
         "pair proofs"],
        report.rows(),
    ))
    print(
        f"leak detection: {report.detection_rate:.0%} over "
        f"{len(report.leak_rounds)} injected leaks, blame rate: "
        f"{report.blame_rate:.0%}"
    )
    try:
        report.reconcile()
    except AssertionError as exc:
        print(exc)
        return 1
    print("ledger reconciled: all leaks detected and blamed, isolation "
          "checks stayed incremental, no false incidents")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    import random as _random

    from .core import VeriDPServer
    from .dataplane import DataPlaneNetwork, random_misforward_fault
    from .topologies import build_fattree

    scenario = build_fattree(4)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(
        scenario.topo, scenario.channel, report_sink=server.receive_report_bytes
    )
    rng = _random.Random(args.seed)
    fault = None
    while True:
        fault = random_misforward_fault(net, rng)
        for src, dst in scenario.host_pairs():
            net.inject_from_host(src, scenario.header_between(src, dst))
        if server.incidents:
            break
    print(f"fault: {fault.describe()}")
    incident = server.drain_incidents()[0]
    print(f"detected: {incident.verification.verdict.value}")
    print(f"blamed: {', '.join(incident.blamed_switches)}")
    return 0


# -- parser -------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0, help="experiment RNG seed")
    common.add_argument(
        "--scale", type=int, default=2,
        help="topology scale knob (subnets/zone or prefixes/PoP)",
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VeriDP (CoNEXT 2016) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, help):
        return sub.add_parser(name, help=help, parents=[common])

    add("table2", "path table statistics")
    add("fig6", "paths-per-pair distribution")

    fig12 = add("fig12", "false negative rate vs Bloom size")
    fig12.add_argument("--topo", choices=["stanford", "internet2", "ft4", "ft6"],
                       default="stanford")
    fig12.add_argument("--trials", type=int, default=1000)
    fig12.add_argument("--bits", type=int, nargs="+",
                       default=[8, 16, 24, 32, 48, 64])

    table3 = add("table3", "localization probability")
    table3.add_argument("--trials", type=int, default=10)

    fig13 = add("fig13", "verification latency")
    fig13.add_argument("--repeats", type=int, default=50)

    add("fig14", "incremental update time")
    add("table4", "data-plane overhead model")
    add("functest", "the Section 6.2 function tests")
    add("demo", "detect+localize one random fault")

    tradeoff = add("tradeoff", "detection latency vs sampling overhead")
    tradeoff.add_argument("--intervals", type=float, nargs="+",
                          default=[0.5, 1.0, 2.0])
    tradeoff.add_argument("--trials", type=int, default=5)

    serve = add("serve", "run a live daemon with UDP ingestion + /metrics")
    serve.add_argument("--topo", choices=["stanford", "internet2", "ft4", "ft6"],
                       default="ft4")
    serve.add_argument("--mode", choices=["thread", "sharded"], default="thread")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--no-vector", action="store_true",
                       help="sharded mode: disable the numpy vector "
                            "dispatch kernel (scalar per-report matching; "
                            "vector is on by default when numpy imports)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="UDP bind address for tag reports")
    serve.add_argument("--port", type=int, default=0,
                       help="UDP port (0 picks a free one)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve /metrics, /healthz, /varz on this port "
                            "(0 picks a free one; omit to disable)")
    serve.add_argument("--metrics-host", default="127.0.0.1")
    serve.add_argument("--reports", type=int, default=0,
                       help="self-drive N sampled packets through the UDP "
                            "socket, then print statistics")
    serve.add_argument("--duration", type=float, default=None,
                       help="keep serving this many seconds (default: "
                            "forever unless --reports is given)")
    serve.add_argument("--state-dir", default=None,
                       help="durable mode: WAL + snapshots in this directory; "
                            "restarts recover the path table and the report "
                            "stream becomes replayable (LPM rule sets only)")
    serve.add_argument("--build-workers", type=int, default=None,
                       help="worker processes for full path-table builds "
                            "(0 = one per CPU, default serial; "
                            "REPRO_BUILD_WORKERS env overrides)")
    serve.add_argument("--coalesce-ms", type=float, default=0.0,
                       help="coalescing window for rule updates in durable "
                            "mode: stage events and recompute the path "
                            "table once per window (0 = per-event)")
    serve.add_argument("--fsync", choices=["always", "interval", "never"],
                       default="interval",
                       help="WAL durability policy (durable mode)")
    serve.add_argument("--slices", default=None, metavar="FILE",
                       help="multi-tenant mode: slices.json tenant map; "
                            "enables per-tenant metrics, quota queues and "
                            "the cross-tenant isolation verifier")
    serve.add_argument("--cluster", type=int, default=0, metavar="N",
                       help="shard verification across N cluster nodes "
                            "behind the asyncio ingestion frontend "
                            "(0 = single-process daemon)")
    serve.add_argument("--cluster-mode", choices=["thread", "process"],
                       default="thread",
                       help="run cluster nodes as threads or processes")
    serve.add_argument("--engine", choices=["auto", "asyncio", "selectors"],
                       default="auto",
                       help="cluster ingestion engine (auto prefers asyncio)")
    serve.add_argument("--batch-size", type=int, default=256,
                       help="cluster frontend dispatch batch size")
    serve.add_argument("--ingest-batch", type=int, default=128,
                       help="datagrams drained per socket wakeup into one "
                            "zero-copy frame (1 = per-datagram ingestion)")

    cluster = add("cluster", "self-driving sharded-cluster demo with "
                             "failover and rebalance")
    cluster.add_argument("--topo",
                         choices=["stanford", "internet2", "ft4", "ft6",
                                  "linear"],
                         default="linear")
    cluster.add_argument("--nodes", type=int, default=3,
                         help="initial verification node count")
    cluster.add_argument("--node-mode", choices=["thread", "process"],
                         default="thread")
    cluster.add_argument("--engine",
                         choices=["auto", "asyncio", "selectors"],
                         default="auto")
    cluster.add_argument("--reports", type=int, default=2000,
                         help="reports streamed through the cluster")
    cluster.add_argument("--batch-size", type=int, default=256)
    cluster.add_argument("--no-churn", dest="churn", action="store_false",
                         help="skip the mid-stream node kill + join")

    replay = add("replay", "re-verify a recorded report stream offline")
    replay.add_argument("state_dir",
                        help="state directory written by a --state-dir run")
    replay.add_argument("--start-seq", type=int, default=1,
                        help="first WAL seq whose reports are verified")
    replay.add_argument("--stop-seq", type=int, default=None,
                        help="stop after this WAL seq (bisection upper bound)")
    replay.add_argument("--limit", type=int, default=30,
                        help="max incidents to print")
    replay.add_argument("--no-localize", action="store_true",
                        help="skip Algorithm 4 on replayed failures")

    probe = add("probe", "close dark coverage with representative probes")
    probe.add_argument("--topo", choices=["stanford", "internet2", "ft4", "ft6"],
                       default="ft4")
    probe.add_argument("--passive", type=float, default=0.1,
                       help="fraction of host pairs carrying passive "
                            "traffic before probing starts")
    probe.add_argument("--rounds", type=int, default=8,
                       help="max closed-loop probing rounds")
    probe.add_argument("--max-probes", type=int, default=None,
                       help="probe packet budget")
    probe.add_argument("--max-seconds", type=float, default=None,
                       help="wall-clock probing budget")
    probe.add_argument("--rate", type=float, default=None,
                       help="probe send rate cap (packets/s)")
    probe.add_argument("--fuzz", type=int, default=0, metavar="ROUNDS",
                       help="instead of probing a static network, run a "
                            "seeded control-plane state-fuzz campaign of "
                            "this many rounds and reconcile the ledger")

    slice_ = add("slice", "multi-tenant slices: config check / isolation fuzz")
    slice_.add_argument("--topo",
                        choices=["stanford", "internet2", "ft4", "ft6",
                                 "linear"],
                        default="linear")
    slice_.add_argument("--tenants", type=int, default=2,
                        help="tenant count for the fuzz campaign (hosts "
                             "are partitioned round-robin)")
    slice_.add_argument("--fuzz", type=int, default=12, metavar="ROUNDS",
                        help="tenant-fuzz campaign length")
    slice_.add_argument("--slices", default=None, metavar="FILE",
                        help="check this slices.json against the topology "
                             "instead of fuzzing (exit 1 on isolation "
                             "incidents)")

    add("report", "collate persisted benchmark tables")
    paths = add("paths", "dump a topology's path table")
    paths.add_argument("--topo", choices=["stanford", "internet2", "ft4", "ft6"],
                       default="ft4")
    paths.add_argument("--limit", type=int, default=30)
    return parser


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "table2": cmd_table2,
    "fig6": cmd_fig6,
    "fig12": cmd_fig12,
    "table3": cmd_table3,
    "fig13": cmd_fig13,
    "fig14": cmd_fig14,
    "table4": cmd_table4,
    "functest": cmd_functest,
    "tradeoff": cmd_tradeoff,
    "report": cmd_report,
    "paths": cmd_paths,
    "demo": cmd_demo,
    "probe": cmd_probe,
    "slice": cmd_slice,
    "serve": cmd_serve,
    "cluster": cmd_cluster,
    "replay": cmd_replay,
}


def main(argv: Sequence[str] = None) -> int:
    """Entry point (``python -m repro ...``)."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
