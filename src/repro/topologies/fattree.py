"""Fat-tree topologies — the paper's medium-sized network fixture.

A standard ``k``-ary fat tree (k even): ``k`` pods, each with ``k/2`` edge
and ``k/2`` aggregation switches; ``(k/2)^2`` core switches; ``k/2`` hosts
per edge switch (so ``k^3/4`` hosts total: 16 for k=4, 54 for k=6).

Port plan:

* edge switch: ports ``1..k/2`` host-facing, ``k/2+1..k`` to aggregation,
* aggregation switch: ports ``1..k/2`` to edges, ``k/2+1..k`` to cores,
* core switch: port ``p`` to pod ``p-1``.

Routing mirrors the paper's setup ("we let the emulated hosts ping each
other in order to populate the switches' flow tables with shortest-path
forwarding rules"): per-host-subnet shortest-path rules installed by the
controller.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..netmodel.topology import Topology
from .base import Scenario, wire_scenario

__all__ = ["build_fattree", "fattree_dimensions"]


def fattree_dimensions(k: int) -> Dict[str, int]:
    """Element counts of a k-ary fat tree (sanity/reporting helper)."""
    _check_k(k)
    half = k // 2
    return {
        "pods": k,
        "core": half * half,
        "aggregation": k * half,
        "edge": k * half,
        "switches": half * half + k * k,
        "hosts": k * half * half,
    }


def _check_k(k: int) -> None:
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")


def build_fattree(k: int = 4, install_routes: bool = True) -> Scenario:
    """Construct the k-ary fat tree with shortest-path routes installed."""
    _check_k(k)
    half = k // 2
    topo = Topology(f"fattree-{k}")

    core_names = [f"c{i}" for i in range(half * half)]
    for name in core_names:
        topo.add_switch(name, num_ports=k)

    for pod in range(k):
        for j in range(half):
            topo.add_switch(f"a{pod}_{j}", num_ports=k)
            topo.add_switch(f"e{pod}_{j}", num_ports=k)

    # Edge <-> aggregation inside each pod (full bipartite).
    for pod in range(k):
        for e in range(half):
            for a in range(half):
                topo.add_link(f"e{pod}_{e}", half + 1 + a, f"a{pod}_{a}", 1 + e)

    # Aggregation <-> core: aggregation j of each pod connects to cores
    # j*half .. j*half + half - 1 on its ports half+1..k; core i uses port
    # pod+1 for pod `pod`.
    for pod in range(k):
        for a in range(half):
            for i in range(half):
                core = core_names[a * half + i]
                topo.add_link(f"a{pod}_{a}", half + 1 + i, core, pod + 1)

    # Hosts: half per edge switch on ports 1..half.
    subnets: Dict[str, str] = {}
    host_ips: Dict[str, str] = {}
    index = 0
    for pod in range(k):
        for e in range(half):
            for m in range(half):
                host = f"h{pod}_{e}_{m}"
                topo.add_host(host, f"e{pod}_{e}", m + 1)
                high, low = divmod(index, 256)
                subnets[host] = f"10.{high}.{low}.0/24"
                host_ips[host] = f"10.{high}.{low}.1"
                index += 1

    return wire_scenario(
        topo,
        subnets,
        host_ips,
        install_routes,
        notes=f"fat tree k={k} ({fattree_dimensions(k)['switches']} switches)",
    )
