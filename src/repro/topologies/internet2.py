"""An Internet2-like network (9 routers, IPv4 prefix rules only).

The paper uses the Internet2 observatory's 9 Juniper routers with 126,017
IPv4 forwarding rules (no public ACLs).  We synthesise the same shape: the
classic Internet2/Abilene 9-PoP continental topology and per-router customer
prefix blocks routed by shortest path, with the prefix count per router as
the scale knob.

Because the real rule dump is pure destination-prefix forwarding, this is
also the fixture for the incremental-update experiment (Figure 14):
:func:`internet2_lpm_ruleset` emits the rules in the
``(switch, prefix, out_port)`` form the incremental machinery consumes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netmodel.topology import Topology
from .base import Scenario, lpm_ruleset_for, wire_scenario

__all__ = ["build_internet2", "internet2_lpm_ruleset", "INTERNET2_POPS"]

INTERNET2_POPS = (
    "SEAT",  # Seattle
    "LOSA",  # Los Angeles
    "SALT",  # Salt Lake City
    "HOUS",  # Houston
    "KANS",  # Kansas City
    "CHIC",  # Chicago
    "ATLA",  # Atlanta
    "WASH",  # Washington DC
    "NEWY",  # New York
)

#: The continental backbone links (each PoP pair appears once).
_LINKS: Tuple[Tuple[str, str], ...] = (
    ("SEAT", "SALT"),
    ("SEAT", "LOSA"),
    ("LOSA", "SALT"),
    ("LOSA", "HOUS"),
    ("SALT", "KANS"),
    ("HOUS", "KANS"),
    ("HOUS", "ATLA"),
    ("KANS", "CHIC"),
    ("CHIC", "ATLA"),
    ("CHIC", "NEWY"),
    ("ATLA", "WASH"),
    ("WASH", "NEWY"),
)


def build_internet2(
    prefixes_per_pop: int = 3, install_routes: bool = True
) -> Scenario:
    """Build the Internet2-like network.

    Each PoP gets ``prefixes_per_pop`` customer /24 blocks, each represented
    by one host; every block is routed from every router by shortest path.
    Port plan: ports 1..degree are backbone links (in :data:`_LINKS` order),
    higher ports are host-facing.
    """
    if prefixes_per_pop < 1:
        raise ValueError(f"prefixes_per_pop must be >= 1, got {prefixes_per_pop}")
    topo = Topology("internet2")
    degree: Dict[str, int] = {pop: 0 for pop in INTERNET2_POPS}
    for a, b in _LINKS:
        degree[a] += 1
        degree[b] += 1
    for pop in INTERNET2_POPS:
        topo.add_switch(pop, num_ports=degree[pop] + prefixes_per_pop)

    next_port = {pop: 1 for pop in INTERNET2_POPS}
    for a, b in _LINKS:
        topo.add_link(a, next_port[a], b, next_port[b])
        next_port[a] += 1
        next_port[b] += 1

    subnets: Dict[str, str] = {}
    host_ips: Dict[str, str] = {}
    for p, pop in enumerate(INTERNET2_POPS):
        for s in range(prefixes_per_pop):
            host = f"h_{pop}_{s}"
            topo.add_host(host, pop, next_port[pop])
            next_port[pop] += 1
            high, low = divmod(p * prefixes_per_pop + s, 256)
            subnets[host] = f"10.{high}.{low}.0/24"
            host_ips[host] = f"10.{high}.{low}.1"

    return wire_scenario(
        topo,
        subnets,
        host_ips,
        install_routes,
        notes=f"Internet2-like: 9 PoPs, {prefixes_per_pop} prefixes/PoP",
    )


def internet2_lpm_ruleset(
    scenario: Scenario,
) -> Dict[str, List[Tuple[str, int]]]:
    """Per-switch ``(prefix, out_port)`` rules for the incremental updater."""
    return lpm_ruleset_for(scenario.topo, scenario.subnets)
