"""A Stanford-backbone-like network (the Table 2 / Section 6.2 fixture).

The real Stanford backbone configuration (16 Cisco routers, 757,170
forwarding rules, 1,584 ACL rules) is not redistributable, so this module
synthesises a network with the same *structure*:

* the published router roster — two backbone routers (``bbra``, ``bbrb``)
  and fourteen zone routers (``boza`` ... ``yozb``) each dual-homed to both
  backbones, plus a direct link between the backbones,
* per-zone address space (``171.64+z.0.0/16``-style blocks) with multiple
  host subnets per zone and extra prefix rules to scale the table
  (``subnets_per_zone`` knob),
* ACL-style high-priority drop rules on some zone routers — including the
  ``sozb`` "deny 10.0.0.0/8" rule the paper deletes in its access-violation
  function test, paired with a ``cozb``-homed ``10.63.16.0/20`` subnet so
  that exact scenario is reproducible,
* the ``boza`` host block ``172.20.10.32/27`` used by the paper's black-hole
  and path-deviation tests.

The substitution rationale is in DESIGN.md: path-table shape and
verification behaviour depend on topology + rule structure, both preserved.
"""

from __future__ import annotations

from typing import Dict, List

from ..netmodel.rules import Match
from ..netmodel.topology import Topology
from .base import Scenario, wire_scenario

__all__ = ["build_stanford", "STANFORD_ZONES", "STANFORD_BACKBONES"]

STANFORD_BACKBONES = ("bbra", "bbrb")
STANFORD_ZONES = (
    "boza",
    "bozb",
    "coza",
    "cozb",
    "goza",
    "gozb",
    "poza",
    "pozb",
    "roza",
    "rozb",
    "soza",
    "sozb",
    "yoza",
    "yozb",
)

#: Zone routers carrying an ACL-style deny (dst 10.0.0.0/8) like the real
#: network's private-space filters; ``sozb``'s is the paper's test subject.
_ACL_ZONES = ("soza", "sozb", "poza", "pozb")


def build_stanford(
    subnets_per_zone: int = 2,
    install_routes: bool = True,
    with_acls: bool = True,
    with_ssh_detours: bool = True,
) -> Scenario:
    """Build the Stanford-like backbone.

    ``subnets_per_zone`` scales the rule count (each subnet adds one host
    and a network-wide set of destination-prefix rules).

    ``with_ssh_detours`` installs higher-priority policies steering SSH
    (dst_port 22) via the ``bbrb`` backbone regardless of the base route.
    The real Stanford configuration produces ~3 paths per port pair
    (Table 2: 77K paths over 26K entries) because VLANs/ACLs split header
    space per pair; these port-dependent policies recreate that multi-path
    structure, which Figure 6 and the verification workload depend on.
    """
    if subnets_per_zone < 1:
        raise ValueError(f"subnets_per_zone must be >= 1, got {subnets_per_zone}")
    topo = Topology("stanford")

    # Ports: backbone routers need 1 peer port + 14 zone ports.
    for name in STANFORD_BACKBONES:
        topo.add_switch(name, num_ports=len(STANFORD_ZONES) + 1)
    # Zone routers: port 1 -> bbra, port 2 -> bbrb, 3.. host-facing.
    for name in STANFORD_ZONES:
        topo.add_switch(name, num_ports=2 + subnets_per_zone)

    topo.add_link("bbra", 1, "bbrb", 1)
    for z, name in enumerate(STANFORD_ZONES):
        topo.add_link(name, 1, "bbra", 2 + z)
        topo.add_link(name, 2, "bbrb", 2 + z)

    subnets: Dict[str, str] = {}
    host_ips: Dict[str, str] = {}
    for z, zone in enumerate(STANFORD_ZONES):
        for s in range(subnets_per_zone):
            host = f"h_{zone}_{s}"
            topo.add_host(host, zone, 3 + s)
            if zone == "boza" and s == 0:
                # The paper's function tests target dst 172.20.10.33 homed
                # behind boza (the /27 the black-hole fault matches).
                subnets[host] = "172.20.10.32/27"
                host_ips[host] = "172.20.10.33"
            elif zone == "cozb" and s == 0:
                # Destination of the paper's access-violation test.
                subnets[host] = "10.63.16.0/20"
                host_ips[host] = "10.63.16.1"
            else:
                subnets[host] = f"171.{64 + z}.{s}.0/24"
                host_ips[host] = f"171.{64 + z}.{s}.1"

    scenario = wire_scenario(
        topo,
        subnets,
        host_ips,
        install_routes,
        notes=(
            f"Stanford-like backbone: {len(STANFORD_BACKBONES)} backbone + "
            f"{len(STANFORD_ZONES)} zone routers, {subnets_per_zone} subnets/zone"
        ),
    )

    if with_acls and install_routes:
        for zone in _ACL_ZONES:
            scenario.controller.install_acl(zone, Match.build(dst="10.0.0.0/8"))

    if with_ssh_detours and install_routes:
        from ..netmodel.rules import FlowRule, Forward

        for host, subnet in sorted(subnets.items()):
            home_zone = scenario.topo.host_port(host).switch
            for zone in STANFORD_ZONES:
                if zone == home_zone:
                    continue
                scenario.controller.install(
                    zone,
                    FlowRule(
                        150,  # above host routes (100), below ACLs (300)
                        Match.build(dst=subnet, dst_port=22),
                        Forward(2),  # always take the bbrb uplink
                    ),
                )
    return scenario
