"""Shared scaffolding for the bundled topologies.

A :class:`Scenario` bundles everything one experiment needs: the topology,
the control channel, a controller with routes already compiled, and the host
addressing plan.  Builders in this package return Scenarios so examples,
tests and benchmarks construct identical networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..bdd.headerspace import parse_ipv4, parse_prefix
from ..controlplane.controller import Controller
from ..controlplane.messages import Channel
from ..netmodel.packet import Header, PROTO_TCP
from ..netmodel.topology import PortRef, Topology

__all__ = ["Scenario", "wire_scenario", "lpm_ruleset_for"]


@dataclass
class Scenario:
    """A ready-to-run network: topology + controller + addressing plan."""

    topo: Topology
    channel: Channel
    controller: Controller
    subnets: Dict[str, str]  # host id -> "a.b.c.d/len" home subnet
    host_ips: Dict[str, str]  # host id -> concrete address text
    notes: str = ""

    def header_between(
        self,
        src_host: str,
        dst_host: str,
        proto: int = PROTO_TCP,
        src_port: int = 10000,
        dst_port: int = 80,
    ) -> Header:
        """A concrete 5-tuple from one host's address to another's."""
        return Header.from_strings(
            self.host_ips[src_host],
            self.host_ips[dst_host],
            proto,
            src_port,
            dst_port,
        )

    def host_pairs(self) -> List[Tuple[str, str]]:
        """All ordered (src, dst) host pairs — the all-pairs ping workload."""
        hosts = self.topo.hosts()
        return [(a, b) for a in hosts for b in hosts if a != b]


def wire_scenario(
    topo: Topology,
    subnets: Dict[str, str],
    host_ips: Dict[str, str],
    install_routes: bool = True,
    notes: str = "",
) -> Scenario:
    """Create channel + controller and (optionally) install host routes."""
    channel = Channel()
    controller = Controller(topo, channel)
    scenario = Scenario(
        topo=topo,
        channel=channel,
        controller=controller,
        subnets=subnets,
        host_ips=host_ips,
        notes=notes,
    )
    if install_routes:
        controller.install_destination_routes(subnets)
    return scenario


def lpm_ruleset_for(
    topo: Topology, subnets: Dict[str, str]
) -> Dict[str, List[Tuple[str, int]]]:
    """Destination-prefix rule sets per switch, shortest-path routed.

    Returns ``{switch_id: [(prefix, out_port), ...]}`` — the input format of
    the incremental-update machinery (:class:`repro.core.incremental.LpmProvider`),
    equivalent to what :meth:`Controller.install_destination_routes` would
    install as flow rules.
    """
    from ..controlplane.controller import ecmp_next_hops

    graph = topo.to_networkx()
    ruleset: Dict[str, List[Tuple[str, int]]] = {
        sid: [] for sid in topo.switches
    }
    for host_id, prefix in sorted(subnets.items()):
        attach = topo.host_port(host_id)
        next_hops = ecmp_next_hops(graph, attach.switch, seed=host_id)
        for switch_id in sorted(topo.switches):
            if switch_id == attach.switch:
                out_port = attach.port
            else:
                nxt = next_hops.get(switch_id)
                if nxt is None:
                    continue
                ports = graph.edges[switch_id, nxt]["ports"]
                out_port = ports[switch_id]
            ruleset[switch_id].append((prefix, out_port))
    return ruleset
