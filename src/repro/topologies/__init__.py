"""Topology zoo: the paper's experiment networks plus small generators.

* :func:`build_stanford`  — Stanford-backbone-like (16 routers, ACLs),
* :func:`build_internet2` — Internet2/Abilene-like (9 routers, LPM only),
* :func:`build_fattree`   — k-ary fat trees (the localization fixture),
* :mod:`repro.topologies.generators` — linear/ring/star/grid and the
  Figure 5 toy network with the paper's exact rules.
"""

from .base import Scenario, lpm_ruleset_for, wire_scenario
from .fattree import build_fattree, fattree_dimensions
from .generators import (
    build_figure5,
    build_jellyfish,
    build_random,
    build_grid,
    build_linear,
    build_ring,
    build_star,
)
from .io import (
    load_scenario,
    save_scenario,
    topology_from_dict,
    topology_to_dict,
)
from .internet2 import INTERNET2_POPS, build_internet2, internet2_lpm_ruleset
from .stanford import STANFORD_BACKBONES, STANFORD_ZONES, build_stanford

__all__ = [
    "Scenario",
    "wire_scenario",
    "lpm_ruleset_for",
    "build_fattree",
    "fattree_dimensions",
    "build_linear",
    "build_ring",
    "build_star",
    "build_grid",
    "build_figure5",
    "build_random",
    "build_jellyfish",
    "topology_to_dict",
    "topology_from_dict",
    "save_scenario",
    "load_scenario",
    "build_stanford",
    "STANFORD_ZONES",
    "STANFORD_BACKBONES",
    "build_internet2",
    "internet2_lpm_ruleset",
    "INTERNET2_POPS",
]
