"""Topology (de)serialisation.

Lets users bring their own networks: a :class:`~repro.netmodel.topology.Topology`
plus the host addressing plan round-trips through a plain JSON document, so
scenarios can be version-controlled, shared, and fed to the CLI.

Only the *structure* is serialised (switches, ports, links, hosts,
middleboxes, subnets); flow tables are controller state and are recompiled
on load by whoever owns the intent.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..netmodel.topology import PortRef, Topology
from .base import Scenario, wire_scenario

__all__ = ["topology_to_dict", "topology_from_dict", "save_scenario", "load_scenario"]

_FORMAT_VERSION = 1


def topology_to_dict(
    topo: Topology,
    subnets: Optional[Dict[str, str]] = None,
    host_ips: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Serialise structure + addressing into a JSON-ready dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": topo.name,
        "switches": {
            switch_id: sorted(info.ports)
            for switch_id, info in sorted(topo.switches.items())
        },
        "links": [
            [a.switch, a.port, b.switch, b.port]
            for a, b in topo.internal_links()
        ],
        "hosts": {
            host: [ref.switch, ref.port]
            for host in topo.hosts()
            for ref in [topo.host_port(host)]
        },
        "middleboxes": {
            mb: [ref.switch, ref.port]
            for mb in topo.middleboxes()
            for ref in [topo.middlebox_port(mb)]
        },
        "subnets": dict(subnets or {}),
        "host_ips": dict(host_ips or {}),
    }


def topology_from_dict(data: Dict[str, Any]) -> Tuple[Topology, Dict[str, str], Dict[str, str]]:
    """Rebuild ``(topology, subnets, host_ips)`` from a serialised dict."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported topology format version {version!r}")
    topo = Topology(data.get("name", "net"))
    for switch_id, ports in data["switches"].items():
        topo.add_switch(switch_id)
        for port in ports:
            topo.add_port(switch_id, port)
    for a_switch, a_port, b_switch, b_port in data.get("links", []):
        topo.add_link(a_switch, a_port, b_switch, b_port)
    for host, (switch_id, port) in sorted(data.get("hosts", {}).items()):
        topo.add_host(host, switch_id, port)
    for mb, (switch_id, port) in sorted(data.get("middleboxes", {}).items()):
        topo.add_middlebox(mb, switch_id, port)
    topo.validate()
    return topo, dict(data.get("subnets", {})), dict(data.get("host_ips", {}))


def save_scenario(scenario: Scenario, path: str) -> None:
    """Write a scenario's structure + addressing to a JSON file."""
    document = topology_to_dict(scenario.topo, scenario.subnets, scenario.host_ips)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def load_scenario(path: str, install_routes: bool = True) -> Scenario:
    """Load a scenario from JSON and (optionally) recompile host routes."""
    with open(path) as handle:
        data = json.load(handle)
    topo, subnets, host_ips = topology_from_dict(data)
    return wire_scenario(topo, subnets, host_ips, install_routes=install_routes)
