"""Small parametric topologies plus the paper's Figure 5 toy network."""

from __future__ import annotations

from typing import Dict, Tuple

from ..netmodel.packet import PROTO_TCP
from ..netmodel.rules import Drop, FlowRule, Forward, Match
from ..netmodel.topology import Topology
from .base import Scenario, wire_scenario

__all__ = [
    "build_linear",
    "build_ring",
    "build_star",
    "build_grid",
    "build_figure5",
    "build_random",
    "build_jellyfish",
]


def _host_plan(index: int) -> Tuple[str, str]:
    """(subnet, host ip) for the ``index``-th host: 10.<i>/24 blocks."""
    high, low = divmod(index, 256)
    subnet = f"10.{high}.{low}.0/24"
    ip = f"10.{high}.{low}.1"
    return subnet, ip


def _attach_hosts(topo: Topology, attachments) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Attach hosts and derive the addressing plan."""
    subnets: Dict[str, str] = {}
    host_ips: Dict[str, str] = {}
    for index, (host, switch, port) in enumerate(attachments):
        topo.add_host(host, switch, port)
        subnets[host], host_ips[host] = _host_plan(index)
    return subnets, host_ips


def build_linear(num_switches: int = 3, install_routes: bool = True) -> Scenario:
    """``S1 - S2 - ... - Sn`` with one host per switch.

    Port plan: port 1 hosts, port 2 towards the next switch, port 3 towards
    the previous one.
    """
    if num_switches < 2:
        raise ValueError(f"need at least 2 switches, got {num_switches}")
    topo = Topology(f"linear-{num_switches}")
    names = [f"S{i}" for i in range(1, num_switches + 1)]
    for name in names:
        topo.add_switch(name, num_ports=3)
    for left, right in zip(names, names[1:]):
        topo.add_link(left, 2, right, 3)
    attachments = [(f"H{i + 1}", name, 1) for i, name in enumerate(names)]
    subnets, host_ips = _attach_hosts(topo, attachments)
    return wire_scenario(topo, subnets, host_ips, install_routes, notes="linear chain")


def build_ring(num_switches: int = 4, install_routes: bool = True) -> Scenario:
    """A cycle of switches, one host each — the topology *contains loops*,
    making it the natural fixture for loop-detection tests."""
    if num_switches < 3:
        raise ValueError(f"a ring needs at least 3 switches, got {num_switches}")
    topo = Topology(f"ring-{num_switches}")
    names = [f"S{i}" for i in range(1, num_switches + 1)]
    for name in names:
        topo.add_switch(name, num_ports=3)
    for i, name in enumerate(names):
        topo.add_link(name, 2, names[(i + 1) % num_switches], 3)
    attachments = [(f"H{i + 1}", name, 1) for i, name in enumerate(names)]
    subnets, host_ips = _attach_hosts(topo, attachments)
    return wire_scenario(topo, subnets, host_ips, install_routes, notes="ring")


def build_star(num_leaves: int = 4, install_routes: bool = True) -> Scenario:
    """A hub switch with ``num_leaves`` leaf switches, one host per leaf."""
    if num_leaves < 2:
        raise ValueError(f"need at least 2 leaves, got {num_leaves}")
    topo = Topology(f"star-{num_leaves}")
    topo.add_switch("HUB", num_ports=num_leaves)
    for i in range(1, num_leaves + 1):
        leaf = f"L{i}"
        topo.add_switch(leaf, num_ports=2)
        topo.add_link("HUB", i, leaf, 2)
    attachments = [(f"H{i}", f"L{i}", 1) for i in range(1, num_leaves + 1)]
    subnets, host_ips = _attach_hosts(topo, attachments)
    return wire_scenario(topo, subnets, host_ips, install_routes, notes="star")


def build_grid(width: int = 3, height: int = 3, install_routes: bool = True) -> Scenario:
    """A ``width x height`` mesh; hosts on the four corner switches.

    Port plan per switch: 1 host, 2 east, 3 west, 4 south, 5 north.
    """
    if width < 2 or height < 2:
        raise ValueError(f"grid must be at least 2x2, got {width}x{height}")
    topo = Topology(f"grid-{width}x{height}")

    def name(x: int, y: int) -> str:
        return f"S{x}_{y}"

    for y in range(height):
        for x in range(width):
            topo.add_switch(name(x, y), num_ports=5)
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                topo.add_link(name(x, y), 2, name(x + 1, y), 3)
            if y + 1 < height:
                topo.add_link(name(x, y), 4, name(x, y + 1), 5)
    corners = [
        (0, 0),
        (width - 1, 0),
        (0, height - 1),
        (width - 1, height - 1),
    ]
    attachments = [
        (f"H{i + 1}", name(x, y), 1) for i, (x, y) in enumerate(corners)
    ]
    subnets, host_ips = _attach_hosts(topo, attachments)
    return wire_scenario(topo, subnets, host_ips, install_routes, notes="grid mesh")


def build_random(
    num_switches: int = 8,
    extra_links: int = 4,
    hosts: int = 4,
    seed: int = 0,
    install_routes: bool = True,
) -> Scenario:
    """A connected random topology: spanning tree + random extra links.

    Deterministic for a given ``seed``.  Hosts are spread round-robin over
    the switches.  Useful for fuzz-style experiments where the regular
    structures (fat tree, backbone) would mask corner cases.
    """
    import random as _random

    if num_switches < 2:
        raise ValueError(f"need at least 2 switches, got {num_switches}")
    if hosts < 1:
        raise ValueError(f"need at least 1 host, got {hosts}")
    rng = _random.Random(seed)
    topo = Topology(f"random-{num_switches}-{seed}")
    names = [f"R{i}" for i in range(num_switches)]
    next_port = {}
    for name in names:
        topo.add_switch(name)
        next_port[name] = 1

    def wire(a: str, b: str) -> None:
        topo.add_link(a, next_port[a], b, next_port[b])
        next_port[a] += 1
        next_port[b] += 1

    # Random spanning tree: attach each new switch to a random earlier one.
    for i in range(1, num_switches):
        wire(names[rng.randrange(i)], names[i])
    # Extra links between distinct, not-yet-adjacent pairs.
    added = 0
    attempts = 0
    while added < extra_links and attempts < 50 * extra_links:
        attempts += 1
        a, b = rng.sample(names, 2)
        if b in topo.neighbors(a):
            continue
        wire(a, b)
        added += 1

    attachments = []
    for h in range(hosts):
        switch = names[h % num_switches]
        attachments.append((f"H{h + 1}", switch, next_port[switch]))
        next_port[switch] += 1
    subnets, host_ips = _attach_hosts(topo, attachments)
    return wire_scenario(
        topo, subnets, host_ips, install_routes, notes=f"random seed={seed}"
    )


def build_jellyfish(
    num_switches: int = 10,
    degree: int = 3,
    hosts: int = 5,
    seed: int = 0,
    install_routes: bool = True,
) -> Scenario:
    """A jellyfish-style random regular graph (degree-``degree`` switches).

    Built with networkx's random regular graph generator; hosts round-robin
    on extra ports.  Jellyfish topologies stress ECMP routing diversity.
    """
    import networkx as _nx

    if num_switches * degree % 2:
        raise ValueError("num_switches * degree must be even for a regular graph")
    graph = _nx.random_regular_graph(degree, num_switches, seed=seed)
    if not _nx.is_connected(graph):
        raise ValueError(
            f"seed {seed} produced a disconnected jellyfish; pick another"
        )
    topo = Topology(f"jellyfish-{num_switches}x{degree}-{seed}")
    names = {node: f"J{node}" for node in graph.nodes}
    next_port = {}
    for node in sorted(graph.nodes):
        topo.add_switch(names[node])
        next_port[names[node]] = 1
    for a, b in sorted(graph.edges):
        sa, sb = names[a], names[b]
        topo.add_link(sa, next_port[sa], sb, next_port[sb])
        next_port[sa] += 1
        next_port[sb] += 1
    attachments = []
    ordered = sorted(names.values())
    for h in range(hosts):
        switch = ordered[h % len(ordered)]
        attachments.append((f"H{h + 1}", switch, next_port[switch]))
        next_port[switch] += 1
    subnets, host_ips = _attach_hosts(topo, attachments)
    return wire_scenario(
        topo, subnets, host_ips, install_routes, notes=f"jellyfish seed={seed}"
    )


def build_figure5() -> Scenario:
    """The paper's Figure 5 toy network, rules included verbatim.

    Three switches; H1/H2 behind S1, H3 behind S3, a middlebox on S2.
    SSH traffic (dst_port 22) from S1 port 1 detours through the middlebox;
    everything else towards 10.0.2.0/24 goes directly to S3; S3 drops all
    traffic from H2 (10.0.1.2).  The resulting path table fragment is the
    paper's Table 1.

    Port plan:
      S1: 1 = H1, 2 = H2, 3 -> S2, 4 -> S3
      S2: 1 <- S1, 2 -> S3, 3 = middlebox
      S3: 1 <- S2, 3 <- S1 (paper's figure), 2 = H3
    """
    topo = Topology("figure5")
    topo.add_switch("S1", num_ports=4)
    topo.add_switch("S2", num_ports=3)
    topo.add_switch("S3", num_ports=3)
    topo.add_link("S1", 3, "S2", 1)
    topo.add_link("S2", 2, "S3", 1)
    topo.add_link("S1", 4, "S3", 3)
    topo.add_host("H1", "S1", 1)
    topo.add_host("H2", "S1", 2)
    topo.add_host("H3", "S3", 2)
    topo.add_middlebox("MB", "S2", 3)

    subnets = {"H1": "10.0.1.1/32", "H2": "10.0.1.2/32", "H3": "10.0.2.0/24"}
    host_ips = {"H1": "10.0.1.1", "H2": "10.0.1.2", "H3": "10.0.2.1"}

    scenario = wire_scenario(topo, subnets, host_ips, install_routes=False)
    ctrl = scenario.controller
    # Rule numbering follows Figure 5.
    # S1: R3 redirects SSH to S2; R4 forwards the rest of 10.0.2/24 to S3.
    ctrl.install("S1", FlowRule(200, Match.build(dst="10.0.2.0/24", dst_port=22, proto=PROTO_TCP), Forward(3)))
    ctrl.install("S1", FlowRule(100, Match.build(dst="10.0.2.0/24"), Forward(4)))
    # S2: R5 directs traffic from port 1 to the middlebox; R6 returns
    # middlebox traffic (port 3) towards S3.
    ctrl.install("S2", FlowRule(100, Match.build(dst="10.0.2.0/24", in_port=1), Forward(3)))
    ctrl.install("S2", FlowRule(100, Match.build(dst="10.0.2.0/24", in_port=3), Forward(2)))
    # S3: R8 drops all traffic from H2; R7/R9 deliver to H3.
    ctrl.install("S3", FlowRule(200, Match.build(src="10.0.1.2/32"), Drop()))
    ctrl.install("S3", FlowRule(100, Match.build(dst="10.0.2.0/24"), Forward(2)))
    scenario.notes = "Figure 5 toy network (Table 1 path table)"
    return scenario
