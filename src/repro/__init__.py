"""VeriDP — monitoring control-data plane consistency in SDN.

A full reproduction of "Mind the Gap: Monitoring the Control-Data Plane
Consistency in Software Defined Networks" (Zhang et al., CoNEXT 2016).

Quick tour::

    from repro.topologies import build_fattree
    from repro.core import VeriDPServer
    from repro.dataplane import DataPlaneNetwork

    scenario = build_fattree(k=4)
    server = VeriDPServer(scenario.topo, scenario.channel)
    net = DataPlaneNetwork(scenario.topo, scenario.channel,
                           report_sink=server.receive_report_bytes)

Subpackages:

* :mod:`repro.core`         — the VeriDP contribution (tags, path table,
  verification, localization, incremental update, sampling, server),
* :mod:`repro.bdd`          — ROBDD engine + header-space predicates,
* :mod:`repro.netmodel`     — packets, rules, topology, transfer predicates,
* :mod:`repro.controlplane` — controller + OpenFlow-style channel,
* :mod:`repro.dataplane`    — simulated switches, the Algorithm 1 pipeline,
  fault injection, the hardware latency model,
* :mod:`repro.topologies`   — Stanford-like, Internet2-like, fat trees, toys,
* :mod:`repro.analysis`     — the Section 6 experiment harnesses.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
