"""Control plane substrate: controller, OpenFlow-style messages, channel.

The :class:`~repro.controlplane.controller.Controller` compiles intent into
logical rules and emits FlowMods on a broadcast
:class:`~repro.controlplane.messages.Channel`; the data plane and the VeriDP
server both subscribe, reproducing the paper's deployment where the VeriDP
server "intercepts the bidirectional OpenFlow messages" (Section 3.2).
"""

from .controller import (
    Controller,
    PRIORITY_ACL,
    PRIORITY_HOST_ROUTE,
    PRIORITY_POLICY,
    RoutingError,
)
from .messages import Barrier, Channel, FlowMod, FlowModOp, TableFlush

__all__ = [
    "Controller",
    "RoutingError",
    "Channel",
    "FlowMod",
    "FlowModOp",
    "Barrier",
    "TableFlush",
    "PRIORITY_HOST_ROUTE",
    "PRIORITY_POLICY",
    "PRIORITY_ACL",
]
