"""OpenFlow-style control messages and the interceptable channel.

VeriDP deploys "a server alongside the SDN controller [that] intercepts the
bidirectional OpenFlow messages exchanged between the controller and
switches, in order to construct the path table" (Section 3.2).  We model the
southbound interface as a :class:`Channel` carrying :class:`FlowMod` and
:class:`Barrier` messages; any number of listeners (the data-plane switches,
the VeriDP server, test probes) subscribe and observe every message in
order.

This is deliberately a synchronous, in-process model: the consistency faults
the paper studies (rules silently not installed, modified out-of-band,
priorities ignored) are injected at the *switch* (see
:mod:`repro.dataplane.faults`), not by message loss, mirroring the paper's
fault taxonomy in Section 2.2.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..netmodel.rules import FlowRule

__all__ = ["FlowModOp", "FlowMod", "TableFlush", "Barrier", "Message", "Channel"]

_xids = itertools.count(1)


class FlowModOp(enum.Enum):
    """The three rule operations of Section 4.4."""

    ADD = "add"
    DELETE = "delete"
    MODIFY = "modify"


@dataclass(frozen=True)
class FlowMod:
    """Install, remove or replace one rule on one switch.

    ``MODIFY`` carries the *new* rule; its ``rule_id`` identifies the old
    rule being replaced (the paper treats modification as delete + add,
    Section 4.4, and so do all consumers of this message).
    """

    op: FlowModOp
    switch_id: str
    rule: FlowRule
    xid: int = field(default_factory=lambda: next(_xids))


@dataclass(frozen=True)
class TableFlush:
    """Delete every rule on one switch (an all-wildcard FlowMod DELETE).

    Used by the repair engine's escalation path: flush-and-resync removes
    rules the controller never installed (foreign insertions, Section 2.2's
    external modifications) that targeted re-pushes cannot displace.
    """

    switch_id: str
    xid: int = field(default_factory=lambda: next(_xids))


@dataclass(frozen=True)
class Barrier:
    """A barrier request marker.

    The paper (Section 2.2) notes real switches may answer Barrier before
    rules actually land in the flow table — the channel model therefore does
    *not* imply installation; it is just an ordering marker that listeners
    may use.
    """

    xid: int = field(default_factory=lambda: next(_xids))


Message = object  # FlowMod | Barrier — kept loose for listener signatures


class Channel:
    """An in-order broadcast pipe from the controller to its listeners.

    Listeners are callables receiving each message; they are invoked in
    subscription order, so subscribing the data plane before the VeriDP
    server yields the paper's deployment (the server observes the same
    stream the switches do).
    """

    def __init__(self) -> None:
        self._listeners: List[Callable[[Message], None]] = []
        self._log: List[Message] = []

    def subscribe(self, listener: Callable[[Message], None]) -> None:
        """Register a listener for all subsequent messages."""
        self._listeners.append(listener)

    def send(self, message: Message) -> None:
        """Broadcast one message to every listener, in order."""
        self._log.append(message)
        for listener in self._listeners:
            listener(message)

    @property
    def history(self) -> List[Message]:
        """Every message ever sent (useful for replay and debugging)."""
        return list(self._log)

    def flow_mods(self) -> List[FlowMod]:
        """Just the FlowMods from the history, in order."""
        return [m for m in self._log if isinstance(m, FlowMod)]
