"""A minimal SDN controller.

Plays the role Floodlight plays in the paper's testbed: it owns the logical
network view (the :class:`~repro.netmodel.topology.Topology` and its flow
tables — the ``R`` of Figure 1), compiles operator intent into rules, and
pushes them to switches over the :class:`~repro.controlplane.messages.Channel`
as FlowMods (which become the physical ``R'`` at the data plane, faults
permitting).

Intent compilers provided:

* :meth:`Controller.install_destination_routes` — shortest-path forwarding
  towards every host subnet (the "ping each other to populate flow tables"
  workload used for the fat-tree experiments, Section 6.1),
* :meth:`Controller.install_path` — pin an explicit switch-level path for a
  match (waypoint / middlebox chaining, Figure 2),
* :meth:`Controller.install_acl` — drop a header set at a switch (access
  control, Section 2.3),
* :meth:`Controller.install_te_split` — split a match across two explicit
  paths (traffic engineering, Figure 3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from collections import deque

import networkx as nx

from ..core.bloom import murmur3_32
from ..netmodel.rules import Drop, FlowRule, Forward, Match
from ..netmodel.topology import PortRef, Topology
from .messages import Channel, FlowMod, FlowModOp, TableFlush

__all__ = ["Controller", "RoutingError", "ecmp_next_hops"]


def ecmp_next_hops(graph: "nx.Graph", target: str, seed: str) -> Dict[str, str]:
    """Shortest-path next hops towards ``target``, ECMP-style tie-breaking.

    A BFS from the target whose neighbour visit order is permuted by a
    stable hash of ``(seed, neighbour)``.  Different seeds (we use the
    destination host id) spread equal-cost ties across different parents —
    the per-destination load balancing a fat tree relies on — while staying
    fully deterministic for reproducibility.
    """

    def rank(node: str) -> int:
        return murmur3_32(f"{seed}|{node}".encode("utf-8"))

    dist = {target: 0}
    next_hop: Dict[str, str] = {}
    queue = deque([target])
    while queue:
        node = queue.popleft()
        for neighbor in sorted(graph.neighbors(node), key=rank):
            if neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                next_hop[neighbor] = node
                queue.append(neighbor)
    return next_hop

#: Default priority bands, spaced so scenario rules can slot in between.
PRIORITY_HOST_ROUTE = 100
PRIORITY_POLICY = 200
PRIORITY_ACL = 300


class RoutingError(Exception):
    """Raised when a route cannot be computed (disconnected, bad endpoints)."""


class Controller:
    """The control plane: logical rule owner and FlowMod producer."""

    def __init__(self, topo: Topology, channel: Optional[Channel] = None) -> None:
        self.topo = topo
        self.channel = channel or Channel()
        self._graph = topo.to_networkx()

    # -- primitive rule operations ------------------------------------------

    def install(self, switch_id: str, rule: FlowRule) -> FlowRule:
        """Add a rule to the logical table and emit a FlowMod ADD."""
        self.topo.switch(switch_id).flow_table.add(rule)
        self.channel.send(FlowMod(FlowModOp.ADD, switch_id, rule))
        return rule

    def remove(self, switch_id: str, rule_id: int) -> FlowRule:
        """Remove a rule from the logical table and emit a FlowMod DELETE."""
        rule = self.topo.switch(switch_id).flow_table.remove(rule_id)
        self.channel.send(FlowMod(FlowModOp.DELETE, switch_id, rule))
        return rule

    def modify(self, switch_id: str, new_rule: FlowRule) -> FlowRule:
        """Replace the rule with ``new_rule.rule_id`` and emit a MODIFY."""
        table = self.topo.switch(switch_id).flow_table
        if new_rule.rule_id not in table:
            raise KeyError(
                f"no rule {new_rule.rule_id} on {switch_id} to modify"
            )
        table.add(new_rule)  # same id -> in-place replace
        self.channel.send(FlowMod(FlowModOp.MODIFY, switch_id, new_rule))
        return new_rule

    def reissue(self, switch_id: str, rule_id: int) -> FlowRule:
        """Re-push an already-logical rule (a repair-time MODIFY).

        Unlike :meth:`modify` this changes nothing logically — it re-asserts
        the controller's copy against whatever the switch currently holds.
        """
        rule = self.topo.switch(switch_id).flow_table.get(rule_id)
        if rule is None:
            raise KeyError(f"no logical rule {rule_id} on {switch_id} to reissue")
        self.channel.send(FlowMod(FlowModOp.MODIFY, switch_id, rule))
        return rule

    def flush_switch(self, switch_id: str) -> None:
        """Send an all-wildcard delete for one switch's table."""
        self.topo.switch(switch_id)  # validate id
        self.channel.send(TableFlush(switch_id))

    def resync_switch(self, switch_id: str) -> int:
        """Flush a switch and re-install its entire logical table.

        The repair engine's heavy hammer: displaces foreign rules and
        restores every modified/deleted one.  Returns the rule count.
        """
        self.flush_switch(switch_id)
        rules = self.topo.switch(switch_id).flow_table.sorted_rules()
        for rule in rules:
            self.channel.send(FlowMod(FlowModOp.ADD, switch_id, rule))
        return len(rules)

    # -- route computation ----------------------------------------------------

    def refresh_graph(self) -> None:
        """Re-derive the switch graph after topology changes."""
        self._graph = self.topo.to_networkx()

    def shortest_switch_path(self, src_switch: str, dst_switch: str) -> List[str]:
        """Switch-level shortest path (hop count), deterministic tie-break."""
        if src_switch == dst_switch:
            return [src_switch]
        try:
            # nx returns one shortest path; sort neighbours for determinism.
            return nx.shortest_path(self._graph, src_switch, dst_switch)
        except nx.NetworkXNoPath:
            raise RoutingError(
                f"no path between {src_switch} and {dst_switch}"
            ) from None
        except nx.NodeNotFound as exc:
            raise RoutingError(str(exc)) from None

    def _egress_port(self, from_switch: str, to_switch: str) -> int:
        """The local port on ``from_switch`` wired towards ``to_switch``."""
        ports = self._graph.edges[from_switch, to_switch]["ports"]
        return ports[from_switch]

    # -- intent compilers -----------------------------------------------------

    def install_destination_routes(
        self,
        subnets: Dict[str, str],
        priority: int = PRIORITY_HOST_ROUTE,
    ) -> List[FlowRule]:
        """Shortest-path forwarding to each host's subnet from every switch.

        ``subnets`` maps host id -> destination prefix string
        (``"10.0.1.0/24"``).  On the host's own switch the rule forwards out
        of the host port; elsewhere it forwards towards the next hop on the
        shortest path.  Returns every installed rule.
        """
        installed: List[FlowRule] = []
        for host_id, prefix in sorted(subnets.items()):
            attach = self.topo.host_port(host_id)
            next_hops = ecmp_next_hops(self._graph, attach.switch, seed=host_id)
            for switch_id in sorted(self.topo.switches):
                if switch_id == attach.switch:
                    out_port = attach.port
                else:
                    nxt = next_hops.get(switch_id)
                    if nxt is None:
                        continue  # switch cannot reach the host; leave a miss
                    out_port = self._egress_port(switch_id, nxt)
                rule = FlowRule(
                    priority, Match.build(dst=prefix), Forward(out_port)
                )
                installed.append(self.install(switch_id, rule))
        return installed

    def install_path(
        self,
        match: Match,
        switch_path: Sequence[str],
        entry_port: int,
        exit_port: int,
        priority: int = PRIORITY_POLICY,
        pin_in_ports: bool = True,
    ) -> List[FlowRule]:
        """Pin ``match`` traffic along an explicit switch path.

        ``entry_port`` is the ingress port on the first switch;
        ``exit_port`` the egress on the last.  With ``pin_in_ports`` each
        rule also matches the ingress port, which is required when the path
        visits a switch more than once (middlebox hair-pinning, Figure 2 /
        the ``S1 -> S2 -> MB -> S2 -> S3`` example in Table 1).
        """
        if not switch_path:
            raise RoutingError("empty switch path")
        installed: List[FlowRule] = []
        in_port = entry_port
        for index, switch_id in enumerate(switch_path):
            if index + 1 < len(switch_path):
                nxt = switch_path[index + 1]
                if not self._graph.has_edge(switch_id, nxt):
                    raise RoutingError(
                        f"no link {switch_id} -> {nxt} in {self.topo.name}"
                    )
                out_port = self._egress_port(switch_id, nxt)
            else:
                out_port = exit_port
            rule_match = (
                Match(
                    src_prefix=match.src_prefix,
                    dst_prefix=match.dst_prefix,
                    proto=match.proto,
                    src_port_range=match.src_port_range,
                    dst_port_range=match.dst_port_range,
                    in_port=in_port,
                )
                if pin_in_ports
                else match
            )
            installed.append(
                self.install(switch_id, FlowRule(priority, rule_match, Forward(out_port)))
            )
            if index + 1 < len(switch_path):
                peer = self.topo.link(PortRef(switch_id, out_port))
                if peer is None:
                    raise RoutingError(
                        f"port {switch_id}:{out_port} is not wired"
                    )
                in_port = peer.port
        return installed

    def install_waypoint_path(
        self,
        match: Match,
        src_host: str,
        waypoint_host: str,
        dst_host: str,
        priority: int = PRIORITY_POLICY,
    ) -> List[FlowRule]:
        """Route ``match`` from ``src_host`` through a middlebox to ``dst_host``.

        ``waypoint_host`` may be a transparent middlebox (preferred; see
        :meth:`Topology.add_middlebox`) or a plain host.  The compiled path
        is ``src -> ... -> mb_switch -> (mb port) -> mb_switch -> ... ->
        dst`` with ingress-port-pinned rules disambiguating the two visits.
        """
        src = self.topo.host_port(src_host)
        try:
            mb = self.topo.middlebox_port(waypoint_host)
        except KeyError:
            mb = self.topo.host_port(waypoint_host)
        dst = self.topo.host_port(dst_host)
        to_mb = self.shortest_switch_path(src.switch, mb.switch)
        from_mb = self.shortest_switch_path(mb.switch, dst.switch)
        rules = self.install_path(
            match, to_mb, entry_port=src.port, exit_port=mb.port, priority=priority
        )
        rules += self.install_path(
            match, from_mb, entry_port=mb.port, exit_port=dst.port, priority=priority
        )
        return rules

    def install_acl(
        self,
        switch_id: str,
        match: Match,
        priority: int = PRIORITY_ACL,
    ) -> FlowRule:
        """Drop ``match`` traffic at ``switch_id`` (an ACL deny as a rule)."""
        return self.install(switch_id, FlowRule(priority, match, Drop()))

    def install_te_split(
        self,
        base_match: Match,
        selector_a: Match,
        path_a: Sequence[str],
        selector_b: Match,
        path_b: Sequence[str],
        entry_port: int,
        exit_port: int,
        priority: int = PRIORITY_POLICY,
    ) -> Tuple[List[FlowRule], List[FlowRule]]:
        """Figure 3's traffic-engineering intent: split one aggregate over two paths.

        ``selector_a``/``selector_b`` must partition ``base_match`` (e.g. by
        source-port parity); each selected share is pinned to its path.
        """
        rules_a = self.install_path(
            selector_a, path_a, entry_port, exit_port, priority=priority
        )
        rules_b = self.install_path(
            selector_b, path_b, entry_port, exit_port, priority=priority
        )
        return rules_a, rules_b
