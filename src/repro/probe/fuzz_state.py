"""Control-plane state fuzzing: mutate the network state, check detection.

The PR 2 chaos harness fuzzes the *transport* (lost/duplicated/corrupted
reports); this campaign fuzzes the *control plane itself*, in the spirit of
"Consistent SDNs through Network State Fuzzing": a seeded sequence of
rounds, each applying one mutation class to a live network — through the
server's coalesced ``stage_add_rule``/``stage_delete_rule`` staging API on
the control side and the OpenFlow channel / out-of-band fault injectors on
the data side — then probing the whole table to closure with the
:class:`~repro.probe.prober.ActiveProber` and reconciling what VeriDP
reported against a ground-truth ledger.

Mutation classes:

* **consistent** — both planes move together: prefix specializations
  (overlapping-prefix mutations), consistent drops (ACL-style blackholes),
  deletes of earlier specializations, and race-y shuffled add/delete
  interleavings staged through the coalescing window with a mid-update
  probe burst (whose incidents are *allowed* — bounded staleness — and
  ledgered separately).  Expectation: **zero** incidents once flushed.
* **desync** — exactly one plane moves: a shadow rule injected behind the
  controller's back (priority shuffle), a data-plane rule deleted
  out-of-band, or a control-plane-only rule staged into the server that no
  switch ever received.  Expectation: the probe sweep detects it (≥ 1
  failed verification) and localization blames the mutated switch.

Every desync is constructed on a live forwarding path (picked by walking a
real packet), so each one is *exercised* by the probe sweep by
construction; :meth:`StateFuzzReport.reconcile` asserts every exercised
inconsistency was detected, no consistent round produced an incident, and
the final healed network probes back to 100% coverage with a clean log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd.headerspace import format_ipv4, parse_prefix
from ..core.server import VeriDPServer
from ..dataplane.faults import DeleteRule, InjectRule
from ..dataplane.network import DataPlaneNetwork, DeliveryResult, DeliveryStatus
from ..netmodel.rules import DROP_PORT, Drop, FlowRule, Forward, Match
from ..netmodel.topology import PortRef
from ..topologies.base import Scenario, lpm_ruleset_for
from .headers import plan_pair
from .prober import ActiveProber, ProbeBudget

__all__ = [
    "FuzzOp",
    "FuzzRoundRecord",
    "StateFuzzReport",
    "StateFuzzCampaign",
    "run_state_fuzz",
]

#: Base data-plane priority; adding the prefix length preserves LPM
#: semantics for overlapping prefixes on the physical tables.
_PRIO_BASE = 100
#: Above any LPM rule (base + 32): the injected shadow always wins.
_PRIO_SHADOW = _PRIO_BASE + 48

CONSISTENT_KINDS = (
    "consistent-specialize",
    "consistent-drop",
    "consistent-delete",
    "consistent-churn",
)
DESYNC_KINDS = (
    "desync-shadow",
    "desync-data-delete",
    "desync-control-only",
)


@dataclass(frozen=True)
class FuzzOp:
    """One rule mutation applied during a round."""

    kind: str  # "add" | "delete" | "inject" | "external-delete"
    switch: str
    prefix: str
    out_port: int
    plane: str  # "both" | "data" | "control"


@dataclass
class FuzzRoundRecord:
    """Ground truth + observed outcome of one fuzzing round."""

    index: int
    kind: str
    ops: List[FuzzOp] = field(default_factory=list)
    desync: bool = False
    exercised: bool = False
    probes_sent: int = 0
    incidents: int = 0
    stale_incidents: int = 0  # mid-coalescing-window probe failures (allowed)
    detected: bool = False
    expected_blame: Optional[str] = None
    blamed_ok: bool = False
    coverage_after: float = 0.0


@dataclass
class StateFuzzReport:
    """The campaign ledger, reconciled against VeriDP's observations."""

    seed: int
    rounds: List[FuzzRoundRecord] = field(default_factory=list)
    final_converged: bool = False
    final_incidents: int = 0
    final_coverage: float = 0.0

    @property
    def desync_rounds(self) -> List[FuzzRoundRecord]:
        return [r for r in self.rounds if r.desync]

    @property
    def consistent_rounds(self) -> List[FuzzRoundRecord]:
        return [r for r in self.rounds if not r.desync]

    @property
    def missed(self) -> List[FuzzRoundRecord]:
        """Exercised inconsistencies VeriDP failed to detect."""
        return [r for r in self.desync_rounds if r.exercised and not r.detected]

    @property
    def false_positives(self) -> List[FuzzRoundRecord]:
        """Consistent rounds that nevertheless produced incidents."""
        return [r for r in self.consistent_rounds if r.incidents]

    @property
    def detection_rate(self) -> float:
        exercised = [r for r in self.desync_rounds if r.exercised]
        if not exercised:
            return 1.0
        return sum(1 for r in exercised if r.detected) / len(exercised)

    @property
    def blame_rate(self) -> float:
        detected = [r for r in self.desync_rounds if r.detected]
        if not detected:
            return 1.0
        return sum(1 for r in detected if r.blamed_ok) / len(detected)

    def reconcile(self) -> "StateFuzzReport":
        """Assert the ledger's invariants; raises ``AssertionError``."""
        problems: List[str] = []
        for r in self.missed:
            problems.append(
                f"round {r.index} ({r.kind}): exercised desync on "
                f"{r.expected_blame} NOT detected"
            )
        for r in self.false_positives:
            problems.append(
                f"round {r.index} ({r.kind}): consistent state produced "
                f"{r.incidents} incidents (false positives)"
            )
        if not self.final_converged:
            problems.append("final healed sweep did not re-close coverage")
        if self.final_incidents:
            problems.append(
                f"final healed sweep produced {self.final_incidents} incidents"
            )
        if problems:
            raise AssertionError(
                "state-fuzz ledger reconciliation failed:\n  "
                + "\n  ".join(problems)
            )
        return self

    def rows(self) -> List[tuple]:
        """Per-kind summary rows for the bench table."""
        by_kind: Dict[str, List[FuzzRoundRecord]] = {}
        for r in self.rounds:
            by_kind.setdefault(r.kind, []).append(r)
        out = []
        for kind in sorted(by_kind):
            rs = by_kind[kind]
            out.append(
                (
                    kind,
                    len(rs),
                    sum(r.probes_sent for r in rs),
                    sum(r.incidents for r in rs),
                    sum(1 for r in rs if r.detected),
                    sum(1 for r in rs if r.blamed_ok),
                )
            )
        return out


class StateFuzzCampaign:
    """Run seeded control-plane mutations against one live network.

    ``scenario`` must be built with ``install_routes=False``: the campaign
    installs the base LPM ruleset on *both* planes itself (data plane via
    the controller channel, control plane via the server's staged rule
    API), so the two views start provably consistent.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        coalesce_ms: float = 25.0,
        probe_budget: Optional[ProbeBudget] = None,
        max_probe_rounds: int = 4,
    ) -> None:
        if scenario.channel.history:
            raise ValueError(
                "scenario already has installed routes; build it with "
                "install_routes=False — the campaign owns both planes"
            )
        self.scenario = scenario
        self.rng = random.Random(seed)
        self.server = VeriDPServer(
            scenario.topo, channel=None, incremental=True, coalesce_ms=coalesce_ms
        )
        self.net = DataPlaneNetwork(scenario.topo, scenario.channel)
        self.prober = ActiveProber(self.server, self.net, budget=probe_budget)
        self.max_probe_rounds = max_probe_rounds
        self.report = StateFuzzReport(seed=seed)
        # (switch, prefix) -> installed data-plane rule / control out_port.
        self._dp_rules: Dict[Tuple[str, str], FlowRule] = {}
        self._ctl_rules: Dict[Tuple[str, str], int] = {}
        # Consistent specializations eligible for later deletion, and the
        # subnets they specialize (guards the data-delete desync).
        self._added: List[Tuple[str, str]] = []
        self._specialized: Dict[Tuple[str, str], int] = {}
        self._install_base()

    # -- dual-plane rule plumbing ------------------------------------------

    def _install_both(self, switch: str, prefix: str, out_port: int) -> FuzzOp:
        _, plen = parse_prefix(prefix)
        action = Drop() if out_port == DROP_PORT else Forward(out_port)
        rule = FlowRule(
            priority=_PRIO_BASE + plen, match=Match.build(dst=prefix), action=action
        )
        self.scenario.controller.install(switch, rule)
        self._dp_rules[(switch, prefix)] = rule
        self.server.apply_rule_update(switch, prefix, out_port)
        self._ctl_rules[(switch, prefix)] = out_port
        return FuzzOp("add", switch, prefix, out_port, "both")

    def _delete_both(self, switch: str, prefix: str) -> FuzzOp:
        rule = self._dp_rules.pop((switch, prefix))
        self.scenario.controller.remove(switch, rule.rule_id)
        port = self._ctl_rules.pop((switch, prefix))
        self.server.apply_rule_delete(switch, prefix)
        return FuzzOp("delete", switch, prefix, port, "both")

    def _install_base(self) -> None:
        ruleset = lpm_ruleset_for(self.scenario.topo, self.scenario.subnets)
        for switch in sorted(ruleset):
            for prefix, port in ruleset[switch]:
                self._install_both(switch, prefix, port)
        self.server.flush_pending_updates()

    # -- probing -----------------------------------------------------------

    def _probe_close(self):
        """Full sweep: reset coverage, probe to closure, return the run."""
        self.server.drain_incidents()
        self.server.coverage.reset()
        return self.prober.run(max_rounds=self.max_probe_rounds)

    def _burst_probes(self, count: int) -> int:
        """Mid-coalescing-window probes; returns incidents (allowed stale)."""
        pairs = self.server.table.pairs()
        incidents = 0
        for _ in range(count):
            inport, outport = self.rng.choice(pairs)
            probes = plan_pair(self.server.table, self.server.hs, inport, outport)
            if not probes:
                continue
            delivery = self.net.inject(inport, probes[0].header, force_sample=True)
            for rep in delivery.reports:
                incident = self.server.receive_report(rep)
                if not incident.verification.passed:
                    incidents += 1
            self.net.drain_reports()
        self.server.drain_incidents()
        return incidents

    # -- target selection --------------------------------------------------

    def _pick_path(self) -> Optional[Tuple[str, str, DeliveryResult]]:
        """A live delivered path: (src_host, dst_host, walk)."""
        pairs = self.scenario.host_pairs()
        for _ in range(16):
            src, dst = self.rng.choice(pairs)
            delivery = self.net.inject_from_host(
                src, self.scenario.header_between(src, dst)
            )
            self.net.drain_reports()
            if delivery.status == DeliveryStatus.DELIVERED and delivery.hops:
                return src, dst, delivery
        return None

    def _behavior_changed(self, src: str, dst: str, before: DeliveryResult) -> bool:
        after = self.net.inject_from_host(
            src, self.scenario.header_between(src, dst)
        )
        self.net.drain_reports()
        return (
            after.status != before.status
            or after.exit_port != before.exit_port
            or after.hops != before.hops
        )

    def _fresh_subprefix(self, switch: str, subnet: str) -> Optional[str]:
        value, plen = parse_prefix(subnet)
        if plen >= 32:
            return None
        for _ in range(16):
            plen2 = plen + self.rng.randint(1, min(4, 32 - plen))
            extra = self.rng.getrandbits(plen2 - plen)
            value2 = value | (extra << (32 - plen2))
            prefix = f"{format_ipv4(value2)}/{plen2}"
            if (switch, prefix) not in self._ctl_rules:
                return prefix
        return None

    def _subnet_switches(self, subnet: str) -> List[str]:
        return sorted(s for (s, p) in self._ctl_rules if p == subnet)

    # -- round implementations ---------------------------------------------

    def _round_consistent_specialize(
        self, record: FuzzRoundRecord, drop: bool = False
    ) -> None:
        host, subnet = self.rng.choice(sorted(self.scenario.subnets.items()))
        switches = self._subnet_switches(subnet)
        if not switches:
            return
        switch = self.rng.choice(switches)
        sub = self._fresh_subprefix(switch, subnet)
        if sub is None:
            return
        port = DROP_PORT if drop else self._ctl_rules[(switch, subnet)]
        record.ops.append(self._install_both(switch, sub, port))
        self._added.append((switch, sub))
        self._specialized[(switch, subnet)] = (
            self._specialized.get((switch, subnet), 0) + 1
        )
        self.server.flush_pending_updates()

    def _round_consistent_delete(self, record: FuzzRoundRecord) -> None:
        if not self._added:
            self._round_consistent_specialize(record)
            return
        switch, sub = self._added.pop(self.rng.randrange(len(self._added)))
        record.ops.append(self._delete_both(switch, sub))
        sub_val, sub_len = parse_prefix(sub)
        for (s, subnet), count in list(self._specialized.items()):
            if s != switch or not count:
                continue
            value, plen = parse_prefix(subnet)
            if sub_len >= plen and (sub_val >> (32 - plen)) == (value >> (32 - plen)):
                self._specialized[(s, subnet)] = count - 1
        self.server.flush_pending_updates()

    def _round_consistent_churn(self, record: FuzzRoundRecord) -> None:
        """A shuffled add/delete interleaving with a mid-window probe burst."""
        ops: List[Tuple[str, str, str, int]] = []
        for _ in range(self.rng.randint(3, 6)):
            if self._added and self.rng.random() < 0.4:
                switch, sub = self._added.pop(self.rng.randrange(len(self._added)))
                ops.append(("delete", switch, sub, 0))
            else:
                host, subnet = self.rng.choice(
                    sorted(self.scenario.subnets.items())
                )
                switches = self._subnet_switches(subnet)
                if not switches:
                    continue
                switch = self.rng.choice(switches)
                sub = self._fresh_subprefix(switch, subnet)
                if sub is None:
                    continue
                ops.append(("add", switch, sub, self._ctl_rules[(switch, subnet)]))
        self.rng.shuffle(ops)
        burst_at = len(ops) // 2
        for i, (op, switch, sub, port) in enumerate(ops):
            if i == burst_at:
                record.stale_incidents += self._burst_probes(3)
            if op == "add":
                if (switch, sub) in self._ctl_rules:
                    continue
                record.ops.append(self._install_both(switch, sub, port))
                self._added.append((switch, sub))
            else:
                record.ops.append(self._delete_both(switch, sub))
        self.server.flush_pending_updates()

    def _round_desync_shadow(self, record: FuzzRoundRecord) -> None:
        """Priority shuffle: a foreign high-priority rule on one switch."""
        picked = self._pick_path()
        if picked is None:
            return
        src, dst, before = picked
        hops = [h for h in before.hops if h.out_port != DROP_PORT]
        hop = self.rng.choice(hops)
        subnet = self.scenario.subnets[dst]
        wrong = sorted(self.net.switch(hop.switch).ports - {hop.out_port})
        if wrong and self.rng.random() < 0.8:
            action = Forward(self.rng.choice(wrong))
            port = action.port
        else:
            action, port = Drop(), DROP_PORT
        rule = FlowRule(
            priority=_PRIO_SHADOW, match=Match.build(dst=subnet), action=action
        )
        InjectRule(hop.switch, rule).apply(self.net)
        record.ops.append(FuzzOp("inject", hop.switch, subnet, port, "data"))
        record.desync = True
        record.expected_blame = hop.switch
        record.exercised = self._behavior_changed(src, dst, before)
        self._observe(record)
        self.net.switch(hop.switch).external_delete(rule.rule_id)

    def _round_desync_data_delete(self, record: FuzzRoundRecord) -> None:
        """A data-plane rule vanishes; the control plane still expects it."""
        for _ in range(8):
            picked = self._pick_path()
            if picked is None:
                return
            src, dst, before = picked
            subnet = self.scenario.subnets[dst]
            candidates = [
                h.switch
                for h in before.hops
                if (h.switch, subnet) in self._dp_rules
                and not self._specialized.get((h.switch, subnet))
            ]
            if candidates:
                break
        else:
            return
        switch = self.rng.choice(candidates)
        rule = self._dp_rules[(switch, subnet)]
        DeleteRule(switch, rule.rule_id).apply(self.net)
        record.ops.append(FuzzOp("external-delete", switch, subnet, DROP_PORT, "data"))
        record.desync = True
        record.expected_blame = switch
        record.exercised = self._behavior_changed(src, dst, before)
        self._observe(record)
        self.net.switch(switch).external_insert(rule)

    def _round_desync_control_only(self, record: FuzzRoundRecord) -> None:
        """A rule staged into the server that no switch ever received.

        The divergent slice is diverted to an *edge* port of the chosen
        switch so the control view keeps a deliverable entry for it: the
        probe plan then derives a witness inside the slice by construction.
        (Diverting to a port whose control-side traversal loops or drops
        would erase the slice from the table — and with it the only probe
        that could expose the desync; that blind spot is documented in
        DESIGN.md.)
        """
        topo = self.scenario.topo
        for _ in range(8):
            picked = self._pick_path()
            if picked is None:
                return
            src, dst, before = picked
            subnet = self.scenario.subnets[dst]
            on_path = []
            for h in before.hops:
                if (h.switch, subnet) not in self._ctl_rules:
                    continue
                current = self._ctl_rules[(h.switch, subnet)]
                edges = sorted(
                    p
                    for p in self.net.switch(h.switch).ports
                    if p != current and topo.is_edge_port(PortRef(h.switch, p))
                )
                if edges:
                    on_path.append((h, edges))
            if on_path:
                break
        else:
            return
        hop, edges = self.rng.choice(on_path)
        sub = self._fresh_subprefix(hop.switch, subnet)
        if sub is None:
            return
        new_port = self.rng.choice(edges)
        # Control plane only: staged through the coalescing window, no
        # FlowMod ever reaches the data plane.
        self.server.apply_rule_update(hop.switch, sub, new_port)
        self._ctl_rules[(hop.switch, sub)] = new_port
        self.server.flush_pending_updates()
        record.ops.append(FuzzOp("add", hop.switch, sub, new_port, "control"))
        record.desync = True
        record.expected_blame = hop.switch
        # The staged flush re-partitions the pair's entries: the probe plan
        # derives a witness inside the diverted slice by construction.
        record.exercised = True
        self._observe(record)
        self.server.apply_rule_delete(hop.switch, sub)
        del self._ctl_rules[(hop.switch, sub)]
        self.server.flush_pending_updates()

    def _observe(self, record: FuzzRoundRecord) -> None:
        """Probe the (possibly faulty) network and fill in the verdict."""
        run = self._probe_close()
        record.probes_sent += run.sent
        incidents = self.server.drain_incidents()
        record.incidents += len(incidents)
        record.detected = bool(incidents)
        record.coverage_after = run.path_coverage_after
        if record.expected_blame is not None:
            record.blamed_ok = any(
                record.expected_blame in inc.blamed_switches for inc in incidents
            )

    # -- the campaign ------------------------------------------------------

    def run_round(self, index: int) -> FuzzRoundRecord:
        kind = self.rng.choice(CONSISTENT_KINDS + DESYNC_KINDS)
        record = FuzzRoundRecord(index=index, kind=kind)
        if kind == "consistent-specialize":
            self._round_consistent_specialize(record)
        elif kind == "consistent-drop":
            self._round_consistent_specialize(record, drop=True)
        elif kind == "consistent-delete":
            self._round_consistent_delete(record)
        elif kind == "consistent-churn":
            self._round_consistent_churn(record)
        elif kind == "desync-shadow":
            self._round_desync_shadow(record)
        elif kind == "desync-data-delete":
            self._round_desync_data_delete(record)
        elif kind == "desync-control-only":
            self._round_desync_control_only(record)
        if not record.desync:
            self._observe(record)
            record.detected = False  # consistent rounds assert via incidents
        self.report.rounds.append(record)
        return record

    def run(self, rounds: int = 12) -> StateFuzzReport:
        for index in range(rounds):
            self.run_round(index)
        # Everything was healed round-by-round: the final sweep must come
        # back clean and fully covered.
        final = self._probe_close()
        self.report.final_converged = final.converged
        self.report.final_incidents = len(self.server.drain_incidents())
        self.report.final_coverage = final.path_coverage_after
        return self.report


def run_state_fuzz(
    scenario_factory=None,
    rounds: int = 12,
    seed: int = 0,
    coalesce_ms: float = 25.0,
    probe_budget: Optional[ProbeBudget] = None,
    max_probe_rounds: int = 4,
) -> StateFuzzReport:
    """Build a routeless scenario, run the campaign, return the ledger."""
    if scenario_factory is None:
        from ..topologies import build_linear

        def scenario_factory():
            return build_linear(4, install_routes=False)

    campaign = StateFuzzCampaign(
        scenario_factory(),
        seed=seed,
        coalesce_ms=coalesce_ms,
        probe_budget=probe_budget,
        max_probe_rounds=max_probe_rounds,
    )
    return campaign.run(rounds)
