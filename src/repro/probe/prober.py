"""The active prober: close the coverage gap under an explicit budget.

The closed loop (each round):

1. flush any staged rule updates so probes measure the *current* config,
2. re-plan: consume the path table's dirty-pair journal and regenerate
   representative headers only for pairs whose entries changed,
3. read :meth:`CoverageTracker.report` and walk its ``dark_paths`` — the
   entries no passing verification has exercised,
4. inject one representative probe per dark entry through the data-plane
   simulator (VeriDP marker pre-set, bypassing the entry sampler) and feed
   the resulting tag reports to the live server, whose coverage tracker
   marks them off.

Budgets are first-class: a probe count cap, a wall-clock deadline and a
token-bucket send rate (``ProbeBudget``), so operators can bound the
background traffic probing adds.  Entries that refuse to converge (their
probes keep failing verification — i.e. a real inconsistency) are retried
at most ``max_attempts`` times and then left to the incident log; the loop
never spins on a faulty path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.coverage import CoverageTracker
from ..core.server import Incident, VeriDPServer
from ..dataplane.network import DataPlaneNetwork, DeliveryStatus
from ..netmodel.packet import Header
from ..netmodel.topology import PortRef
from .headers import (
    DerivationStats,
    PlannedProbe,
    plan_pair,
    representative_value,
)

__all__ = ["ProbeBudget", "ProbeRunResult", "ActiveProber"]

Pair = Tuple[PortRef, PortRef]


@dataclass
class ProbeBudget:
    """Caps on one probing run: packets, wall-clock seconds, send rate."""

    max_probes: Optional[int] = None
    max_seconds: Optional[float] = None
    rate_per_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("max_probes", "max_seconds", "rate_per_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")


@dataclass
class ProbeRunResult:
    """What one :meth:`ActiveProber.run` accomplished."""

    rounds: int = 0
    sent: int = 0
    slice_probes: int = 0
    incidents: int = 0
    lost: int = 0
    skipped_unplannable: int = 0
    dark_before: int = 0
    dark_after: int = 0
    path_coverage_before: float = 0.0
    path_coverage_after: float = 0.0
    pair_coverage_after: float = 0.0
    budget_exhausted: Optional[str] = None  # "probes" | "seconds" | None
    converged: bool = False
    elapsed_s: float = 0.0
    failed_probes: List[PlannedProbe] = field(default_factory=list)

    def __str__(self) -> str:
        state = "converged" if self.converged else (
            f"budget:{self.budget_exhausted}" if self.budget_exhausted else "stalled"
        )
        return (
            f"probe run: {self.sent} probes / {self.rounds} rounds, "
            f"dark {self.dark_before} -> {self.dark_after}, "
            f"{self.incidents} incidents, {state}"
        )


class ActiveProber:
    """Drive representative probes at whatever the tracker says is dark."""

    def __init__(
        self,
        server: VeriDPServer,
        net: DataPlaneNetwork,
        budget: Optional[ProbeBudget] = None,
        tracker: Optional[CoverageTracker] = None,
        max_attempts: int = 2,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.server = server
        self.net = net
        self.budget = budget or ProbeBudget()
        self.tracker = tracker if tracker is not None else server.coverage
        self.max_attempts = max_attempts
        self._clock = clock
        self._sleep = sleep
        self.derivation = DerivationStats()
        # Per-pair plan cache, invalidated through the dirty-pair journal.
        self._plans: Dict[Pair, Dict[int, PlannedProbe]] = {}
        self._token = None
        self._attempts: Dict[Tuple[Pair, int], int] = {}
        # One-shot probes aimed inside recently *changed* header slices
        # (from the updater's change feed): hop-equivalence can merge a
        # changed slice into a wider entry whose representative witness
        # misses it, so changed slices get their own witness once.
        self._slice_queue: List[PlannedProbe] = []
        # Lifetime counters (exported as veridp_probe_* metrics).
        self.probes_sent = 0
        self.probe_rounds = 0
        self.probe_incidents = 0
        self.probes_lost = 0
        self.replans = 0
        self.pairs_invalidated = 0
        self.full_invalidations = 0
        self.slice_probes = 0
        self._register_metrics()

    def _register_metrics(self) -> None:
        reg = self.server.obs.registry
        reg.counter(
            "veridp_probes_sent_total",
            "Representative probes injected by the active prober.",
            callback=lambda: self.probes_sent,
        )
        reg.counter(
            "veridp_probe_rounds_total",
            "Closed-loop probing rounds executed.",
            callback=lambda: self.probe_rounds,
        )
        reg.counter(
            "veridp_probe_incidents_total",
            "Probes whose verification failed (inconsistencies surfaced).",
            callback=lambda: self.probe_incidents,
        )
        reg.counter(
            "veridp_probe_lost_total",
            "Probes swallowed without any report (dead switches).",
            callback=lambda: self.probes_lost,
        )
        reg.counter(
            "veridp_probe_replans_total",
            "Plan-cache reconciliations against the dirty-pair journal.",
            callback=lambda: self.replans,
        )
        reg.counter(
            "veridp_probe_pairs_invalidated_total",
            "Cached pair plans dropped because their entries changed.",
            callback=lambda: self.pairs_invalidated,
        )
        reg.counter(
            "veridp_probe_derivations_total",
            "Representative-header extractions, by witness tier.",
            ("tier",),
            callback=lambda: {
                ("cube",): self.derivation.cube_tier,
                ("descent",): self.derivation.descent_tier,
                ("empty",): self.derivation.empty,
            },
        )
        reg.counter(
            "veridp_probe_slice_total",
            "One-shot probes aimed inside recently changed header slices.",
            callback=lambda: self.slice_probes,
        )
        reg.gauge(
            "veridp_probe_plan_pairs",
            "Pairs with a cached representative-header plan.",
            callback=lambda: len(self._plans),
        )

    # -- planning ----------------------------------------------------------

    def replan(self) -> Optional[List[Pair]]:
        """Reconcile the plan cache with table mutations since last call.

        Returns the invalidated pairs (``None`` on journal overflow, which
        drops everything).  Untouched pairs keep their cached headers —
        after a staged flush only the dirty pairs get re-derived and
        re-probed (regression-tested).
        """
        self.replans += 1
        token, dirty = self.server.table.dirty_since(self._token)
        self._token = token
        if dirty is None:
            if self._plans:
                self.full_invalidations += 1
            self._plans.clear()
            self._attempts.clear()
            self._slice_queue.clear()
            self._queue_slice_probes(self.server.table.pairs())
            return None
        dirty_set = set(dirty)
        for pair in dirty:
            if self._plans.pop(pair, None) is not None:
                self.pairs_invalidated += 1
            for key in [k for k in self._attempts if k[0] == pair]:
                del self._attempts[key]
        if dirty_set:
            self._slice_queue = [
                p for p in self._slice_queue
                if (p.inport, p.outport) not in dirty_set
            ]
        self._queue_slice_probes(dirty)
        return dirty

    def _queue_slice_probes(self, pairs: List[Pair]) -> None:
        """Aim one witness inside each changed slice on the given pairs.

        Drains the updater's change feed (post-flush, so entry header sets
        are current): any entry whose headers intersect a changed predicate
        gets a one-shot probe drawn from the *intersection*, exercising the
        exact slice the update moved even when the entry's own
        representative witness lies outside it.
        """
        updater = self.server.updater
        if updater is None:
            return
        changes = updater.drain_change_feed()
        if not changes:
            return
        hs = self.server.hs
        bdd = hs.bdd
        # Intersect per change, NOT with their union: a broad change (say a
        # table-wide install) unioned with a narrow one would widen the
        # intersection back to the whole entry and the witness could dodge
        # the narrow slice again.  Dedupe on (entry, witness value).
        queued = set()
        for predicate in changes:
            for pair in pairs:
                for entry in self.server.table.lookup(pair[0], pair[1]):
                    changed = bdd.and_(entry.headers, predicate)
                    if changed == hs.empty:
                        continue
                    value = representative_value(
                        hs, changed, stats=self.derivation
                    )
                    if value is None:
                        continue
                    key = (id(entry), value)
                    if key in queued:
                        continue
                    queued.add(key)
                    self._slice_queue.append(
                        PlannedProbe(
                            inport=pair[0],
                            outport=pair[1],
                            entry=entry,
                            header=Header(**hs.header_from_value(value)),
                        )
                    )

    def _plan_for(self, pair: Pair) -> Dict[int, PlannedProbe]:
        plan = self._plans.get(pair)
        if plan is None:
            probes = plan_pair(
                self.server.table, self.server.hs, pair[0], pair[1],
                stats=self.derivation,
            )
            plan = {id(p.entry): p for p in probes}
            self._plans[pair] = plan
        return plan

    # -- the closed loop -------------------------------------------------------

    def run(self, max_rounds: int = 8) -> ProbeRunResult:
        """Probe until coverage closes, progress stops, or budget runs out."""
        started = self._clock()
        deadline = (
            started + self.budget.max_seconds
            if self.budget.max_seconds is not None
            else None
        )
        next_send = started
        # Retry budgets are per-run: a campaign that heals a fault between
        # runs should get fresh attempts for the previously failing entries.
        self._attempts.clear()
        result = ProbeRunResult()
        report = self._refresh()
        result.dark_before = len(report.dark_paths)
        result.path_coverage_before = report.path_coverage

        while result.rounds < max_rounds:
            report = self.tracker.report()
            if not report.dark_paths and not self._slice_queue:
                result.converged = True
                break
            result.rounds += 1
            self.probe_rounds += 1
            sent_this_round = 0
            # This round's worklist: one-shot changed-slice probes first
            # (they expose desyncs hidden inside merged entries), then one
            # representative probe per dark entry.
            work: List[Tuple[PlannedProbe, Optional[Tuple[Pair, int]]]] = []
            while self._slice_queue:
                work.append((self._slice_queue.pop(0), None))
            for inport, outport, entry in list(report.dark_paths):
                pair = (inport, outport)
                attempt_key = (pair, id(entry))
                if self._attempts.get(attempt_key, 0) >= self.max_attempts:
                    continue
                probe = self._plan_for(pair).get(id(entry))
                if probe is None:
                    result.skipped_unplannable += 1
                    self._attempts[attempt_key] = self.max_attempts
                    continue
                work.append((probe, attempt_key))
            for probe, attempt_key in work:
                if (
                    self.budget.max_probes is not None
                    and result.sent >= self.budget.max_probes
                ):
                    result.budget_exhausted = "probes"
                    break
                now = self._clock()
                if deadline is not None and now >= deadline:
                    result.budget_exhausted = "seconds"
                    break
                if self.budget.rate_per_s is not None:
                    if now < next_send:
                        self._sleep(next_send - now)
                        now = self._clock()
                    next_send = max(now, next_send) + 1.0 / self.budget.rate_per_s
                if attempt_key is None:
                    self.slice_probes += 1
                    result.slice_probes += 1
                else:
                    self._attempts[attempt_key] = (
                        self._attempts.get(attempt_key, 0) + 1
                    )
                incidents = self._send(probe)
                sent_this_round += 1
                result.sent += 1
                if incidents:
                    result.incidents += len(incidents)
                    result.failed_probes.append(probe)
            if result.budget_exhausted is not None or sent_this_round == 0:
                break
            # A flush/refresh between rounds may have mutated the table;
            # the next iteration re-reads the dark list either way.
            self._refresh()

        final = self.tracker.report()
        result.dark_after = len(final.dark_paths)
        result.path_coverage_after = final.path_coverage
        result.pair_coverage_after = final.pair_coverage
        result.converged = result.converged or (
            not final.dark_paths and not self._slice_queue
        )
        result.elapsed_s = self._clock() - started
        return result

    def run_round(self) -> ProbeRunResult:
        """One planning + probing round (no convergence loop)."""
        return self.run(max_rounds=1)

    # -- internals ---------------------------------------------------------

    def _refresh(self):
        """Flush staged updates, reconcile plans, return a fresh report."""
        if self.server.updater is not None:
            self.server.flush_pending_updates()
        else:
            self.server.refresh_if_dirty()
        self.replan()
        return self.tracker.report()

    def _send(self, probe: PlannedProbe) -> List[Incident]:
        """Inject one probe and push its reports through the server."""
        delivery = self.net.inject(probe.inport, probe.header, force_sample=True)
        self.probes_sent += 1
        incidents: List[Incident] = []
        foreign = self.tracker is not self.server.coverage
        for report in delivery.reports:
            incident = self.server.receive_report(report)
            if foreign:
                self.tracker.observe(incident.verification)
            if not incident.verification.passed:
                incidents.append(incident)
        if delivery.status == DeliveryStatus.LOST and not delivery.reports:
            self.probes_lost += 1
        self.probe_incidents += len(incidents)
        # Keep the simulator's report backlog from growing without bound.
        self.net.drain_reports()
        return incidents
