"""Representative-header derivation from path-table BDDs.

Passive VeriDP verifies whatever sampled traffic exercises; the active
prober needs the opposite: for each path-table entry, *one* concrete packet
header guaranteed to traverse that entry's configured path.  Because the
path table partitions each (inport, outport) pair's headers by path
(deterministic forwarding: per pair, entry header sets are disjoint), one
witness per entry is a **minimal** probe set for the pair — fewer probes
would leave some entry unexercised (property-tested against brute-force
set cover in ``tests/probe/test_headers.py``).

Witness extraction reuses the vector kernel's compiled-matcher machinery
(:func:`repro.core.vector.cubes_of`): a cube-poor matcher enumerates its
cubes and takes the *widest* one (fewest specified bits — the probe header
least entangled with adjacent rule boundaries, don't-cares zero-filled);
a cube-rich matcher falls back to :func:`repro.core.vector.witness_cube`,
a single greedy FlatBDD descent to TRUE.  Both tiers are deterministic, so
replanning after rule churn regenerates identical headers for untouched
entries.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd.headerspace import HeaderSpace
from ..core.pathtable import PathEntry, PathTable
from ..core.vector import cubes_of, witness_cube
from ..netmodel.packet import Header
from ..netmodel.topology import PortRef

__all__ = [
    "REPRESENTATIVE_CUBE_CAP",
    "DerivationStats",
    "PlannedProbe",
    "representative_value",
    "representative_header",
    "plan_pair",
    "plan_table",
]


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "").strip() or default)
    except ValueError:
        return default


#: Matchers with more cubes than this skip enumeration and use the
#: single-witness descent instead (the cap bounds planning cost, not
#: correctness — both tiers yield a satisfying header).
REPRESENTATIVE_CUBE_CAP = _env_int("REPRO_PROBE_CUBE_CAP", 64)


@dataclass
class DerivationStats:
    """How representative headers were extracted (feeds probe metrics)."""

    cube_tier: int = 0  # witnesses picked from full cube enumeration
    descent_tier: int = 0  # witnesses from the greedy FlatBDD descent
    empty: int = 0  # entries whose header set was FALSE (no witness)

    @property
    def derived(self) -> int:
        return self.cube_tier + self.descent_tier


@dataclass(frozen=True)
class PlannedProbe:
    """One probe packet: inject ``header`` at ``inport``, expect ``entry``."""

    inport: PortRef
    outport: PortRef
    entry: PathEntry
    header: Header


def representative_value(
    hs: HeaderSpace,
    header_set: int,
    cap: int = REPRESENTATIVE_CUBE_CAP,
    stats: Optional[DerivationStats] = None,
) -> Optional[int]:
    """A satisfying packed header value for ``header_set``, or ``None``.

    Deterministic: the widest cube (fewest specified bits, ties broken by
    smallest value) when the matcher enumerates under ``cap`` cubes, else
    the greedy descent witness.  Don't-care bits are zero-filled, so the
    returned value is directly a ``FlatBDD.evaluate_value`` input and
    unpacks via :meth:`HeaderSpace.header_from_value`.
    """
    flat = hs.bdd.compile_flat(header_set)
    cubes = cubes_of(flat, cap)
    if cubes is not None:
        if not cubes:
            if stats is not None:
                stats.empty += 1
            return None
        _, want = min(cubes, key=lambda mw: (bin(mw[0]).count("1"), mw[1]))
        if stats is not None:
            stats.cube_tier += 1
        return want
    cube = witness_cube(flat)
    if cube is None:  # unreachable: cubes_of returns [] for FALSE
        if stats is not None:
            stats.empty += 1
        return None
    if stats is not None:
        stats.descent_tier += 1
    return cube[1]


def representative_header(
    hs: HeaderSpace,
    header_set: int,
    cap: int = REPRESENTATIVE_CUBE_CAP,
    stats: Optional[DerivationStats] = None,
) -> Optional[Dict[str, int]]:
    """Like :func:`representative_value`, unpacked into header fields."""
    value = representative_value(hs, header_set, cap=cap, stats=stats)
    if value is None:
        return None
    return hs.header_from_value(value)


def plan_pair(
    table: PathTable,
    hs: HeaderSpace,
    inport: PortRef,
    outport: PortRef,
    stats: Optional[DerivationStats] = None,
) -> List[PlannedProbe]:
    """One probe per entry of the pair, each distinguishing its entry.

    Each witness is drawn from the entry's headers *minus* every earlier
    entry's — a no-op when the pair's entries are disjoint (the
    deterministic-forwarding invariant), but it keeps probes unambiguous
    if a table ever holds overlapping same-pair entries.
    """
    probes: List[PlannedProbe] = []
    bdd = hs.bdd
    seen = hs.empty
    entries = table.lookup(inport, outport)
    for entry in entries:
        target = entry.headers
        if len(entries) > 1 and seen != hs.empty:
            residual = bdd.diff(entry.headers, seen)
            if residual != hs.empty:
                target = residual
        header = representative_header(hs, target, stats=stats)
        if header is not None:
            probes.append(
                PlannedProbe(
                    inport=inport,
                    outport=outport,
                    entry=entry,
                    header=Header(**header),
                )
            )
        if len(entries) > 1:
            seen = bdd.or_(seen, entry.headers)
    return probes


def plan_table(
    table: PathTable,
    hs: HeaderSpace,
    stats: Optional[DerivationStats] = None,
) -> Dict[Tuple[PortRef, PortRef], List[PlannedProbe]]:
    """A full probe plan: every pair's representative set."""
    return {
        (inport, outport): plan_pair(table, hs, inport, outport, stats=stats)
        for inport, outport in table.pairs()
    }
