"""Active coverage: representative-header probing and state fuzzing.

Passive VeriDP verifies only the paths sampled traffic happens to take;
this package closes the gap actively.  :mod:`~repro.probe.headers` derives
one minimal representative header per path-table entry straight from the
entry's header-set BDD; :mod:`~repro.probe.prober` drives those probes at
whatever the coverage tracker reports dark, under an explicit budget, and
re-plans through the dirty-pair journal after incremental rule updates;
:mod:`~repro.probe.fuzz_state` mutates the control-plane state itself and
reconciles VeriDP's incident log against a ground-truth ledger;
:mod:`~repro.probe.fuzz_tenants` does the same for the multi-tenant slice
layer (leaked rules, slice-map churn, noisy neighbors).
"""

from .headers import (
    REPRESENTATIVE_CUBE_CAP,
    DerivationStats,
    PlannedProbe,
    plan_pair,
    plan_table,
    representative_header,
    representative_value,
)
from .prober import ActiveProber, ProbeBudget, ProbeRunResult
from .fuzz_state import (
    FuzzOp,
    FuzzRoundRecord,
    StateFuzzCampaign,
    StateFuzzReport,
    run_state_fuzz,
)
from .fuzz_tenants import (
    TenantFuzzCampaign,
    TenantFuzzReport,
    TenantFuzzRound,
    run_tenant_fuzz,
)

__all__ = [
    "REPRESENTATIVE_CUBE_CAP",
    "DerivationStats",
    "PlannedProbe",
    "plan_pair",
    "plan_table",
    "representative_header",
    "representative_value",
    "ActiveProber",
    "ProbeBudget",
    "ProbeRunResult",
    "FuzzOp",
    "FuzzRoundRecord",
    "StateFuzzCampaign",
    "StateFuzzReport",
    "run_state_fuzz",
    "TenantFuzzCampaign",
    "TenantFuzzReport",
    "TenantFuzzRound",
    "run_tenant_fuzz",
]
