"""Tenant-churn fuzzing: mutate the slice configuration, check isolation.

The state fuzzer (:mod:`repro.probe.fuzz_state`) proves VeriDP detects
*rule-level* control/data divergence.  This campaign targets the fault
class rule-level consistency cannot see: **cross-tenant leaks** — rules
installed identically on both planes (so every tag report verifies PASS)
that nevertheless deliver one tenant's address space at another tenant's
edge port.  Detection belongs to the slice layer's
:class:`~repro.slice.isolation.IsolationVerifier`.

Round kinds:

* **tenant-churn** — consistent in-slice mutation: a tenant's own subnet
  is drop-specialized (ACL-style) on both planes.  Expectation: zero
  isolation incidents, and the incremental recheck scopes itself to the
  dirty pairs and the one victim tenant whose footprint moved (asserted
  via the verifier's change-feed accounting).
* **tenant-leak** — the headline fault: a fresh sub-prefix of victim A's
  subnet is routed, on *both* planes, to offender B's edge port at B's
  edge switch.  Rule-consistent by construction; the isolation verifier
  must flag ``A -> B`` with blame resolving to the injected rule, then a
  heal must clear it.
* **tenant-add-remove** — slice-config churn: re-register the slice map
  with one tenant removed (its rules stay — now unowned, the documented
  blind spot), assert the full re-check stays clean, then restore it.
* **noisy-neighbor** — backpressure isolation: a deterministic flood of
  one tenant's payloads against a :class:`~repro.core.resilience.
  TenantQuotaQueue` must never evict or refuse the quiet tenant's
  payloads, regardless of overflow policy.

:meth:`TenantFuzzReport.reconcile` asserts: every injected leak detected
(100%), with the right tenant pair and the right blamed rule; zero
isolation incidents on consistent rounds; every incremental recheck
scoped to the expected victims; quota held on noisy rounds; and a final
probe sweep converges with a clean rule-level log (the leaks really were
invisible to Algorithm 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd.headerspace import format_ipv4, parse_prefix
from ..core.resilience import OverflowPolicy, TenantQuotaQueue
from ..core.server import VeriDPServer
from ..dataplane.network import DataPlaneNetwork
from ..netmodel.rules import DROP_PORT, Drop, FlowRule, Forward, Match
from ..slice.registry import SliceRegistry, TenantSpec
from ..topologies.base import Scenario, lpm_ruleset_for
from .fuzz_state import FuzzOp, _PRIO_BASE
from .prober import ActiveProber, ProbeBudget

__all__ = [
    "TenantFuzzRound",
    "TenantFuzzReport",
    "TenantFuzzCampaign",
    "run_tenant_fuzz",
]

TENANT_KINDS = (
    "tenant-churn",
    "tenant-leak",
    "tenant-add-remove",
    "noisy-neighbor",
)


@dataclass
class TenantFuzzRound:
    """Ground truth + observed outcome of one tenant-fuzzing round."""

    index: int
    kind: str
    ops: List[FuzzOp] = field(default_factory=list)
    leak: bool = False
    victim: Optional[str] = None  # tenant whose footprint is implicated
    offender: Optional[str] = None  # tenant whose port/flood does the harm
    incidents: int = 0  # isolation incidents raised this round
    detected: bool = False
    pair_ok: bool = False  # incident names the right (victim, offender)
    blamed_ok: bool = False  # blame resolved to the injected rule
    healed_clean: bool = False  # post-heal recheck came back empty
    false_incidents: int = 0  # incidents on consistent state
    victims_ok: bool = True  # recheck victim-scoping matched expectation
    scoped: bool = True  # recheck examined fewer pairs than a full sweep
    table_pairs_checked: int = 0
    tenant_pairs_checked: int = 0
    full_table_pairs: int = 0
    quota_ok: bool = True  # noisy-neighbor: victim payloads untouched
    offender_drops: int = 0


@dataclass
class TenantFuzzReport:
    """The campaign ledger, reconciled against the isolation verifier."""

    seed: int
    tenants: List[str] = field(default_factory=list)
    rounds: List[TenantFuzzRound] = field(default_factory=list)
    final_converged: bool = False
    final_rule_incidents: int = 0
    final_isolation_incidents: int = 0

    @property
    def leak_rounds(self) -> List[TenantFuzzRound]:
        return [r for r in self.rounds if r.leak]

    @property
    def consistent_rounds(self) -> List[TenantFuzzRound]:
        return [r for r in self.rounds if not r.leak]

    @property
    def missed(self) -> List[TenantFuzzRound]:
        """Injected leaks the isolation verifier failed to flag."""
        return [r for r in self.leak_rounds if not r.detected]

    @property
    def false_positives(self) -> List[TenantFuzzRound]:
        """Consistent rounds that nevertheless produced incidents."""
        return [r for r in self.consistent_rounds if r.false_incidents]

    @property
    def detection_rate(self) -> float:
        if not self.leak_rounds:
            return 1.0
        return sum(1 for r in self.leak_rounds if r.detected) / len(
            self.leak_rounds
        )

    @property
    def blame_rate(self) -> float:
        detected = [r for r in self.leak_rounds if r.detected]
        if not detected:
            return 1.0
        return sum(1 for r in detected if r.blamed_ok) / len(detected)

    def reconcile(self) -> "TenantFuzzReport":
        """Assert the ledger's invariants; raises ``AssertionError``."""
        problems: List[str] = []
        for r in self.missed:
            problems.append(
                f"round {r.index}: leak {r.victim}->{r.offender} NOT detected"
            )
        for r in self.leak_rounds:
            if r.detected and not r.pair_ok:
                problems.append(
                    f"round {r.index}: incident named the wrong tenant pair"
                )
            if r.detected and not r.blamed_ok:
                problems.append(
                    f"round {r.index}: blame missed the injected rule"
                )
            if not r.healed_clean:
                problems.append(
                    f"round {r.index}: incident survived the heal"
                )
        for r in self.false_positives:
            problems.append(
                f"round {r.index} ({r.kind}): consistent slice state "
                f"produced {r.false_incidents} incidents (false positives)"
            )
        for r in self.rounds:
            if not r.victims_ok:
                problems.append(
                    f"round {r.index} ({r.kind}): recheck victim scope "
                    f"did not match the change feed"
                )
            if not r.scoped:
                problems.append(
                    f"round {r.index} ({r.kind}): recheck examined "
                    f"{r.table_pairs_checked} pairs, full sweep is "
                    f"{r.full_table_pairs} — not incremental"
                )
            if not r.quota_ok:
                problems.append(
                    f"round {r.index}: noisy neighbor displaced the quiet "
                    f"tenant's payloads"
                )
        if not self.final_converged:
            problems.append("final probe sweep did not re-close coverage")
        if self.final_rule_incidents:
            problems.append(
                f"final sweep raised {self.final_rule_incidents} rule-level "
                f"incidents — leaks were supposed to be rule-consistent"
            )
        if self.final_isolation_incidents:
            problems.append(
                f"{self.final_isolation_incidents} isolation incidents "
                f"outlived the campaign"
            )
        if problems:
            raise AssertionError(
                "tenant-fuzz ledger reconciliation failed:\n  "
                + "\n  ".join(problems)
            )
        return self

    def rows(self) -> List[tuple]:
        """Per-kind summary rows for the bench table."""
        by_kind: Dict[str, List[TenantFuzzRound]] = {}
        for r in self.rounds:
            by_kind.setdefault(r.kind, []).append(r)
        out = []
        for kind in sorted(by_kind):
            rs = by_kind[kind]
            out.append(
                (
                    kind,
                    len(rs),
                    sum(r.incidents for r in rs),
                    sum(1 for r in rs if r.detected),
                    sum(1 for r in rs if r.blamed_ok),
                    sum(r.tenant_pairs_checked for r in rs),
                )
            )
        return out


class TenantFuzzCampaign:
    """Run seeded slice-layer mutations against one live network.

    ``scenario`` must be built with ``install_routes=False`` (the campaign
    owns both planes, like :class:`~repro.probe.fuzz_state.
    StateFuzzCampaign`).  Hosts are partitioned round-robin into
    ``tenant_count`` slices.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        tenant_count: int = 2,
        coalesce_ms: float = 25.0,
        probe_budget: Optional[ProbeBudget] = None,
        max_probe_rounds: int = 4,
    ) -> None:
        if scenario.channel.history:
            raise ValueError(
                "scenario already has installed routes; build it with "
                "install_routes=False — the campaign owns both planes"
            )
        hosts = sorted(scenario.subnets)
        if tenant_count < 2 or tenant_count > len(hosts):
            raise ValueError(
                f"need 2..{len(hosts)} tenants, got {tenant_count}"
            )
        self.scenario = scenario
        self.rng = random.Random(seed)
        self.server = VeriDPServer(
            scenario.topo, channel=None, incremental=True, coalesce_ms=coalesce_ms
        )
        self.net = DataPlaneNetwork(scenario.topo, scenario.channel)
        self.prober = ActiveProber(self.server, self.net, budget=probe_budget)
        self.max_probe_rounds = max_probe_rounds
        self._dp_rules: Dict[Tuple[str, str], FlowRule] = {}
        self._ctl_rules: Dict[Tuple[str, str], int] = {}
        self._install_base()
        # Partition hosts round-robin into tenant slices and register them.
        self._specs: Dict[str, TenantSpec] = {}
        assignment: Dict[str, List[str]] = {}
        for i, host in enumerate(hosts):
            assignment.setdefault(f"t{i % tenant_count}", []).append(host)
        for name, members in sorted(assignment.items()):
            self._specs[name] = TenantSpec(
                name=name,
                prefixes=tuple(scenario.subnets[h] for h in members),
                hosts=tuple(members),
            )
        self.server.set_slices(self._registry(self._specs.values()))
        self.server.drain_isolation_incidents()
        self.report = TenantFuzzReport(seed=seed, tenants=sorted(self._specs))

    def _registry(self, specs) -> SliceRegistry:
        registry = SliceRegistry(self.server.hs, self.scenario.topo)
        for spec in specs:
            registry.register(spec)
        return registry

    # -- dual-plane rule plumbing (both planes move together: every
    # mutation in this campaign is rule-consistent by construction) -------

    def _install_both(self, switch: str, prefix: str, out_port: int) -> FuzzOp:
        _, plen = parse_prefix(prefix)
        action = Drop() if out_port == DROP_PORT else Forward(out_port)
        rule = FlowRule(
            priority=_PRIO_BASE + plen, match=Match.build(dst=prefix), action=action
        )
        self.scenario.controller.install(switch, rule)
        self._dp_rules[(switch, prefix)] = rule
        self.server.apply_rule_update(switch, prefix, out_port)
        self._ctl_rules[(switch, prefix)] = out_port
        return FuzzOp("add", switch, prefix, out_port, "both")

    def _delete_both(self, switch: str, prefix: str) -> FuzzOp:
        rule = self._dp_rules.pop((switch, prefix))
        self.scenario.controller.remove(switch, rule.rule_id)
        port = self._ctl_rules.pop((switch, prefix))
        self.server.apply_rule_delete(switch, prefix)
        return FuzzOp("delete", switch, prefix, port, "both")

    def _install_base(self) -> None:
        ruleset = lpm_ruleset_for(self.scenario.topo, self.scenario.subnets)
        for switch in sorted(ruleset):
            for prefix, port in ruleset[switch]:
                self._install_both(switch, prefix, port)
        self.server.flush_pending_updates()

    def _fresh_subprefix(self, switch: str, subnet: str) -> Optional[str]:
        value, plen = parse_prefix(subnet)
        if plen >= 32:
            return None
        for _ in range(16):
            plen2 = plen + self.rng.randint(1, min(4, 32 - plen))
            extra = self.rng.getrandbits(plen2 - plen)
            value2 = value | (extra << (32 - plen2))
            prefix = f"{format_ipv4(value2)}/{plen2}"
            if (switch, prefix) not in self._ctl_rules:
                return prefix
        return None

    # -- accounting helpers ------------------------------------------------

    def _owned_pairs(self) -> int:
        """Pairs a full isolation sweep would examine (owned, non-empty)."""
        registry = self.server.slices
        return sum(
            1
            for inport, outport in self.server.table.pairs()
            if registry.port_owner.get(outport) is not None
            and self.server.table.lookup(inport, outport)
        )

    def _note_accounting(
        self, record: TenantFuzzRound, expected_victims: set
    ) -> None:
        """Read the verifier's last-recheck accounting into the ledger.

        ``victims_ok`` holds when the change feed scoped the recheck to a
        subset of the tenants whose footprint we actually moved;
        ``scoped`` when fewer table pairs were examined than a full sweep
        would cover (the incremental claim of the ISSUE's acceptance
        criteria).
        """
        iso = self.server.isolation
        record.table_pairs_checked = iso.last_table_pairs
        record.tenant_pairs_checked = iso.last_tenant_pairs
        record.full_table_pairs = self._owned_pairs()
        record.victims_ok = (
            iso.last_victims is not None
            and iso.last_victims <= expected_victims
        )
        record.scoped = record.table_pairs_checked < max(
            record.full_table_pairs, 1
        )

    def _tenant_of_subnet(self, subnet: str) -> str:
        for name, spec in self._specs.items():
            if subnet in spec.prefixes:
                return name
        raise KeyError(subnet)

    # -- round implementations ---------------------------------------------

    def _round_tenant_churn(self, record: TenantFuzzRound) -> None:
        """Drop-specialize a tenant's own subnet — consistent, in-slice."""
        host, subnet = self.rng.choice(sorted(self.scenario.subnets.items()))
        owner = self._tenant_of_subnet(subnet)
        switch = self.scenario.topo.host_port(host).switch
        sub = self._fresh_subprefix(switch, subnet)
        if sub is None:
            return
        record.victim = owner
        record.ops.append(self._install_both(switch, sub, DROP_PORT))
        self.server.flush_pending_updates()
        record.false_incidents += len(self.server.drain_isolation_incidents())
        self._note_accounting(record, {owner})
        record.ops.append(self._delete_both(switch, sub))
        self.server.flush_pending_updates()
        record.false_incidents += len(self.server.drain_isolation_incidents())

    def _round_tenant_leak(self, record: TenantFuzzRound) -> None:
        """Inject a rule-consistent cross-tenant leak; detect, blame, heal."""
        registry = self.server.slices
        names = sorted(registry.tenants)
        victim = self.rng.choice(names)
        offender = self.rng.choice([n for n in names if n != victim])
        victim_subnet = self.rng.choice(
            registry.tenants[victim].spec.prefixes
        )
        leak_port = self.rng.choice(registry.tenants[offender].edge_ports)
        sub = self._fresh_subprefix(leak_port.switch, victim_subnet)
        if sub is None:
            return
        record.leak = True
        record.victim = victim
        record.offender = offender
        # Both planes get the rule: the data plane really does deliver the
        # victim's slice at the offender's port, and every tag report for
        # it verifies PASS — only the isolation check can see the fault.
        record.ops.append(
            self._install_both(leak_port.switch, sub, leak_port.port)
        )
        self.server.flush_pending_updates()
        incidents = self.server.drain_isolation_incidents()
        record.incidents = len(incidents)
        record.detected = bool(incidents)
        record.pair_ok = all(
            inc.src_tenant == victim and inc.dst_tenant == offender
            for inc in incidents
        ) and bool(incidents)
        sub_value, sub_plen = parse_prefix(sub)
        record.blamed_ok = any(
            inc.leaked_rule
            == (
                leak_port.switch,
                f"{format_ipv4(sub_value)}/{sub_plen}",
                leak_port.port,
            )
            for inc in incidents
        )
        self._note_accounting(record, {victim})
        # Heal: remove from both planes; the next recheck must come back
        # empty (the dirty pairs are re-proved, nothing leaks any more).
        record.ops.append(self._delete_both(leak_port.switch, sub))
        self.server.flush_pending_updates()
        record.healed_clean = not self.server.drain_isolation_incidents()

    def _round_add_remove(self, record: TenantFuzzRound) -> None:
        """Deregister one tenant (rules stay), re-check, then restore."""
        dropped = self.rng.choice(sorted(self._specs))
        record.victim = dropped
        remaining = [
            spec for name, spec in sorted(self._specs.items())
            if name != dropped
        ]
        # Removal: the dropped tenant's ports go unowned, its footprint is
        # no longer anyone's property — the full re-check must stay clean.
        incidents = self.server.set_slices(self._registry(remaining))
        record.false_incidents += len(incidents)
        self.server.drain_isolation_incidents()
        iso = self.server.isolation
        record.table_pairs_checked = iso.last_table_pairs
        record.tenant_pairs_checked = iso.last_tenant_pairs
        record.full_table_pairs = self._owned_pairs()
        # A slice-config change is a full sweep by design, not incremental.
        record.scoped = iso.last_victims is None and iso.full_checks >= 1
        record.victims_ok = True
        # Restore the original slice map.
        incidents = self.server.set_slices(
            self._registry(self._specs.values())
        )
        record.false_incidents += len(incidents)
        self.server.drain_isolation_incidents()

    def _round_noisy_neighbor(self, record: TenantFuzzRound) -> None:
        """Flood one tenant's payloads at a quota queue; the quiet tenant
        must keep its full share under every overflow policy."""
        names = sorted(self._specs)
        offender = self.rng.choice(names)
        quiet = self.rng.choice([n for n in names if n != offender])
        record.offender = offender
        record.victim = quiet
        owners: Dict[bytes, str] = {}
        policy = self.rng.choice(
            [OverflowPolicy.DROP_NEW, OverflowPolicy.DROP_OLDEST]
        )
        queue = TenantQuotaQueue(
            8,
            policy,
            classify=owners.get,
            shares={offender: 0.5, quiet: 0.5},
        )
        flood = []
        for i in range(24):
            payload = b"storm-%d" % i
            owners[payload] = offender
            flood.append(payload)
        quiet_payloads = []
        for i in range(4):
            payload = b"quiet-%d" % i
            owners[payload] = quiet
            quiet_payloads.append(payload)
        for payload in flood:
            queue.put(payload)
        quiet_admitted = sum(
            1 for payload in quiet_payloads if queue.put(payload)
        )
        stats = queue.stats()
        record.offender_drops = stats["tenants"][offender]["dropped"]
        # The quota holds iff every quiet payload was admitted (the flood
        # saturated only the offender's share) and none was evicted.
        drained = []
        while True:
            try:
                drained.append(queue.get_nowait())
            except Exception:
                break
        record.quota_ok = (
            quiet_admitted == len(quiet_payloads)
            and stats["tenants"][quiet]["dropped"] == 0
            and all(p in drained for p in quiet_payloads)
            and record.offender_drops > 0
        )
        record.incidents = 0
        record.victims_ok = True
        record.scoped = True

    # -- the campaign ------------------------------------------------------

    def run_round(self, index: int) -> TenantFuzzRound:
        kind = self.rng.choice(TENANT_KINDS)
        record = TenantFuzzRound(index=index, kind=kind)
        if kind == "tenant-churn":
            self._round_tenant_churn(record)
        elif kind == "tenant-leak":
            self._round_tenant_leak(record)
        elif kind == "tenant-add-remove":
            self._round_add_remove(record)
        elif kind == "noisy-neighbor":
            self._round_noisy_neighbor(record)
        self.report.rounds.append(record)
        return record

    def run(self, rounds: int = 12) -> TenantFuzzReport:
        for index in range(rounds):
            self.run_round(index)
        # Every leak was healed round-by-round: the final probe sweep must
        # converge with a clean *rule-level* log (proving the leaks never
        # were rule-inconsistencies), and no isolation incident may remain.
        self.server.drain_incidents()
        self.server.coverage.reset()
        final = self.prober.run(max_rounds=self.max_probe_rounds)
        self.report.final_converged = final.converged
        self.report.final_rule_incidents = len(self.server.drain_incidents())
        self.report.final_isolation_incidents = len(
            self.server.drain_isolation_incidents()
        )
        return self.report


def run_tenant_fuzz(
    scenario_factory=None,
    rounds: int = 12,
    seed: int = 0,
    tenant_count: int = 2,
    coalesce_ms: float = 25.0,
    probe_budget: Optional[ProbeBudget] = None,
    max_probe_rounds: int = 4,
) -> TenantFuzzReport:
    """Build a routeless scenario, run the campaign, return the ledger."""
    if scenario_factory is None:
        from ..topologies import build_linear

        def scenario_factory():
            return build_linear(4, install_routes=False)

    campaign = TenantFuzzCampaign(
        scenario_factory(),
        seed=seed,
        tenant_count=tenant_count,
        coalesce_ms=coalesce_ms,
        probe_budget=probe_budget,
        max_probe_rounds=max_probe_rounds,
    )
    return campaign.run(rounds)
