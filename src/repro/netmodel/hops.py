"""Hops and forwarding paths.

A *hop* is the paper's 3-tuple ``<input_port, switch_ID, output_port>``: the
forwarding behaviour of one switch on one packet.  A *path* is an ordered
list of hops.  Tags are Bloom filters over hops; the path table stores the
hop sequence alongside each tag so the localizer can reason hop-by-hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .rules import DROP_PORT

__all__ = ["Hop", "format_path", "path_switches"]


@dataclass(frozen=True, order=True)
class Hop:
    """One switch traversal: ``<in_port, switch, out_port>``.

    ``out_port == DROP_PORT`` encodes the paper's ``⊥`` (the packet was
    dropped by this switch's tables).
    """

    in_port: int
    switch: str
    out_port: int

    def key_bytes(self) -> bytes:
        """Canonical byte encoding ``x || s || y`` hashed into Bloom tags.

        The encoding must be injective over hops; we length-prefix the
        switch id and use fixed-width ports so no two distinct hops collide
        before hashing.
        """
        sid = self.switch.encode("utf-8")
        return (
            self.in_port.to_bytes(4, "big", signed=True)
            + len(sid).to_bytes(2, "big")
            + sid
            + self.out_port.to_bytes(4, "big", signed=True)
        )

    def is_drop(self) -> bool:
        """Did this hop drop the packet?"""
        return self.out_port == DROP_PORT

    def __str__(self) -> str:
        out = "⊥" if self.out_port == DROP_PORT else str(self.out_port)
        return f"<{self.in_port}|{self.switch}|{out}>"


def format_path(hops: Sequence[Hop]) -> str:
    """Human-readable rendering of a hop sequence."""
    return " -> ".join(str(hop) for hop in hops) if hops else "(empty)"


def path_switches(hops: Iterable[Hop]) -> List[str]:
    """Switch ids along a path, in traversal order."""
    return [hop.switch for hop in hops]
