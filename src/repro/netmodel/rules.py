"""Flow rules, matches, actions and flow tables.

This is the OpenFlow-ish rule substrate both planes share: the controller
compiles *logical rules* (``R``) of these types, switches hold *physical
rules* (``R'``) of the same types, and the whole point of VeriDP is to catch
``R != R'`` or ``R' != F`` at runtime.

A :class:`Match` is a conjunction of per-field constraints (IP prefixes,
exact values, port ranges, optional ingress port).  A :class:`FlowRule`
couples a priority, a match and an action (:class:`Forward` or :class:`Drop`).
A :class:`FlowTable` resolves lookups by priority with deterministic
tie-breaking, exactly like an OpenFlow table.

ACLs (used by the Stanford-style configurations, Section 4.1) are ordered
permit/deny lists evaluated first-match; see :class:`Acl`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..bdd.headerspace import HeaderSpace, parse_prefix
from .packet import Header

__all__ = [
    "Match",
    "Forward",
    "Drop",
    "Action",
    "FlowRule",
    "FlowTable",
    "AclEntry",
    "Acl",
    "DROP_PORT",
]

#: The paper's ``⊥`` port: the destination of dropped packets.
DROP_PORT = -1

_rule_ids = itertools.count(1)


@dataclass(frozen=True)
class Match:
    """A conjunctive match over the 5-tuple plus optional ingress port.

    * ``src_prefix`` / ``dst_prefix`` — ``(value, plen)`` IP prefixes,
    * ``proto`` — exact IP protocol,
    * ``src_port_range`` / ``dst_port_range`` — inclusive ``(lo, hi)``,
    * ``in_port`` — restrict to packets received on that switch port.

    ``None`` means wildcard.  An all-``None`` match is the table-miss match.
    """

    src_prefix: Optional[Tuple[int, int]] = None
    dst_prefix: Optional[Tuple[int, int]] = None
    proto: Optional[int] = None
    src_port_range: Optional[Tuple[int, int]] = None
    dst_port_range: Optional[Tuple[int, int]] = None
    in_port: Optional[int] = None

    @classmethod
    def build(
        cls,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        proto: Optional[int] = None,
        src_port: Optional[Union[int, Tuple[int, int]]] = None,
        dst_port: Optional[Union[int, Tuple[int, int]]] = None,
        in_port: Optional[int] = None,
    ) -> "Match":
        """Convenience constructor taking ``"a.b.c.d/len"`` prefix strings."""
        return cls(
            src_prefix=parse_prefix(src) if src is not None else None,
            dst_prefix=parse_prefix(dst) if dst is not None else None,
            proto=proto,
            src_port_range=cls._as_range(src_port),
            dst_port_range=cls._as_range(dst_port),
            in_port=in_port,
        )

    @staticmethod
    def _as_range(
        spec: Optional[Union[int, Tuple[int, int]]]
    ) -> Optional[Tuple[int, int]]:
        if spec is None:
            return None
        if isinstance(spec, int):
            return (spec, spec)
        lo, hi = spec
        if lo > hi:
            raise ValueError(f"empty port range {spec}")
        return (lo, hi)

    def matches(self, header: Header, in_port: Optional[int] = None) -> bool:
        """Does a concrete header (arriving on ``in_port``) satisfy the match?"""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.src_prefix is not None:
            value, plen = self.src_prefix
            if plen and (header.src_ip >> (32 - plen)) != (value >> (32 - plen)):
                return False
        if self.dst_prefix is not None:
            value, plen = self.dst_prefix
            if plen and (header.dst_ip >> (32 - plen)) != (value >> (32 - plen)):
                return False
        if self.proto is not None and header.proto != self.proto:
            return False
        if self.src_port_range is not None:
            lo, hi = self.src_port_range
            if not lo <= header.src_port <= hi:
                return False
        if self.dst_port_range is not None:
            lo, hi = self.dst_port_range
            if not lo <= header.dst_port <= hi:
                return False
        return True

    def to_bdd(self, hs: HeaderSpace) -> int:
        """Header-set BDD of this match (``in_port`` is *not* encoded here:
        transfer-predicate computation handles ingress ports structurally)."""
        terms: List[int] = []
        if self.src_prefix is not None:
            terms.append(hs.prefix("src_ip", *self.src_prefix))
        if self.dst_prefix is not None:
            terms.append(hs.prefix("dst_ip", *self.dst_prefix))
        if self.proto is not None:
            terms.append(hs.exact("proto", self.proto))
        if self.src_port_range is not None:
            terms.append(hs.range_("src_port", *self.src_port_range))
        if self.dst_port_range is not None:
            terms.append(hs.range_("dst_port", *self.dst_port_range))
        return hs.bdd.and_many(terms)

    def describe(self) -> str:
        """Compact human-readable form for logs and error messages."""
        parts = []
        if self.in_port is not None:
            parts.append(f"in_port={self.in_port}")
        if self.src_prefix is not None:
            parts.append(f"src={self.src_prefix[0]:#010x}/{self.src_prefix[1]}")
        if self.dst_prefix is not None:
            parts.append(f"dst={self.dst_prefix[0]:#010x}/{self.dst_prefix[1]}")
        if self.proto is not None:
            parts.append(f"proto={self.proto}")
        if self.src_port_range is not None:
            parts.append(f"sport={self.src_port_range}")
        if self.dst_port_range is not None:
            parts.append(f"dport={self.dst_port_range}")
        return " ".join(parts) if parts else "*"


@dataclass(frozen=True)
class Forward:
    """Output the packet on a switch port."""

    port: int

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"forward port must be non-negative, got {self.port}")


@dataclass(frozen=True)
class Drop:
    """Discard the packet (the ``⊥`` port of the paper)."""


@dataclass(frozen=True)
class Rewrite:
    """Set header fields to constants, then output on a port.

    The OpenFlow ``set_field*; output`` action list.  Header rewrites are
    the paper's future work #1 ("incorporating header rewrites into the
    current VeriDP framework"); this reproduction implements them — see
    :mod:`repro.core.pathtable` for how the path table tracks entry- and
    exit-header sets through rewrite chains.

    ``sets`` is an ordered tuple of ``(field_name, value)`` pairs applied
    left to right (later sets of the same field win, as in OpenFlow).
    """

    sets: Tuple[Tuple[str, int], ...]
    port: int

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"rewrite output port must be non-negative, got {self.port}")
        if not self.sets:
            raise ValueError("a Rewrite needs at least one field set; use Forward")
        for name, value in self.sets:
            if value < 0:
                raise ValueError(f"negative value {value} for field {name!r}")

    def effective_sets(self) -> Tuple[Tuple[str, int], ...]:
        """The sets with per-field last-write-wins applied, in field order
        of last write."""
        final: Dict[str, int] = {}
        for name, value in self.sets:
            final.pop(name, None)
            final[name] = value
        return tuple(final.items())


@dataclass(frozen=True)
class GotoTable:
    """Continue matching in a later table (OpenFlow multi-table pipelines).

    The paper's Section 3.3 motivates the separate VeriDP pipeline with
    exactly this: "a typical switch can contain a cascade of flow tables".
    ``sets`` are optional ``set_field`` writes applied before the jump
    (the write-metadata/set-field-then-goto idiom).  OpenFlow requires the
    target table id to be *greater* than the current one; resolution treats
    a backward jump as a drop (enforced at lookup, where the current table
    is known).
    """

    table_id: int
    sets: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.table_id <= 0:
            raise ValueError(
                f"goto target must be a later table (> 0), got {self.table_id}"
            )
        for name, value in self.sets:
            if value < 0:
                raise ValueError(f"negative value {value} for field {name!r}")

    def effective_sets(self) -> Tuple[Tuple[str, int], ...]:
        """Per-field last-write-wins, like :meth:`Rewrite.effective_sets`."""
        final: Dict[str, int] = {}
        for name, value in self.sets:
            final.pop(name, None)
            final[name] = value
        return tuple(final.items())


Action = Union[Forward, Drop, Rewrite, GotoTable]


def _next_rule_id() -> int:
    return next(_rule_ids)


@dataclass(frozen=True)
class FlowRule:
    """A prioritised match-action rule.

    ``rule_id`` is globally unique and survives controller->switch transfer,
    which is what lets fault injection target "the same rule" on both planes.
    ``table_id`` places the rule in a multi-table pipeline (0 = the first
    table; packets always start there).
    """

    priority: int
    match: Match
    action: Action
    rule_id: int = field(default_factory=_next_rule_id)
    table_id: int = 0

    def __post_init__(self) -> None:
        if self.table_id < 0:
            raise ValueError(f"table_id must be non-negative, got {self.table_id}")
        if isinstance(self.action, GotoTable) and self.action.table_id <= self.table_id:
            raise ValueError(
                f"goto target {self.action.table_id} must be beyond "
                f"table {self.table_id}"
            )

    def output_port(self) -> int:
        """The port this rule sends packets to (``DROP_PORT`` for drops and
        goto rules — the chain's terminal rule owns the real output)."""
        if isinstance(self.action, (Forward, Rewrite)):
            return self.action.port
        return DROP_PORT

    def rewrite_sets(self) -> Tuple[Tuple[str, int], ...]:
        """The field rewrites this rule applies (empty for plain actions)."""
        if isinstance(self.action, Rewrite):
            return self.action.effective_sets()
        return ()

    def describe(self) -> str:
        if isinstance(self.action, Forward):
            action = f"fwd({self.action.port})"
        elif isinstance(self.action, Rewrite):
            sets = ",".join(f"{n}={v}" for n, v in self.action.sets)
            action = f"set[{sets}]->fwd({self.action.port})"
        elif isinstance(self.action, GotoTable):
            sets = ",".join(f"{n}={v}" for n, v in self.action.sets)
            prefix = f"set[{sets}]->" if sets else ""
            action = f"{prefix}goto({self.action.table_id})"
        else:
            action = "drop"
        table = f" t{self.table_id}" if self.table_id else ""
        return (
            f"[{self.rule_id}]{table} prio={self.priority} "
            f"{self.match.describe()} -> {action}"
        )


class FlowTable:
    """An OpenFlow-style flow table with priority-ordered lookup.

    Ties on priority are broken by insertion order (first installed wins),
    which mirrors the deterministic behaviour of real switch ASICs and keeps
    the control-plane model and data-plane simulator in agreement.
    """

    def __init__(self, rules: Iterable[FlowRule] = ()) -> None:
        self._rules: Dict[int, FlowRule] = {}
        self._order: List[int] = []
        for rule in rules:
            self.add(rule)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[FlowRule]:
        return iter(self.sorted_rules())

    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._rules

    def add(self, rule: FlowRule) -> None:
        """Install a rule; re-installing the same id replaces it in place."""
        if rule.rule_id not in self._rules:
            self._order.append(rule.rule_id)
        self._rules[rule.rule_id] = rule

    def remove(self, rule_id: int) -> FlowRule:
        """Uninstall and return a rule; ``KeyError`` if absent."""
        rule = self._rules.pop(rule_id)
        self._order.remove(rule_id)
        return rule

    def get(self, rule_id: int) -> Optional[FlowRule]:
        """The rule with this id, or ``None``."""
        return self._rules.get(rule_id)

    def sorted_rules(self, table_id: Optional[int] = None) -> List[FlowRule]:
        """Rules in lookup order: descending priority, then install order.

        ``table_id`` filters to one pipeline table; ``None`` returns every
        rule (useful for iteration/statistics, not for lookups).
        """
        position = {rid: i for i, rid in enumerate(self._order)}
        rules = self._rules.values()
        if table_id is not None:
            rules = [r for r in rules if r.table_id == table_id]
        return sorted(rules, key=lambda r: (-r.priority, position[r.rule_id]))

    def table_ids(self) -> List[int]:
        """The pipeline tables present, sorted (always at least [0])."""
        ids = {r.table_id for r in self._rules.values()}
        ids.add(0)
        return sorted(ids)

    def lookup(
        self,
        header: Header,
        in_port: Optional[int] = None,
        table_id: int = 0,
    ) -> Optional[FlowRule]:
        """Highest-priority rule of one table matching the header.

        This is a *single-table* lookup (packets start in table 0);
        chain resolution across ``GotoTable`` actions lives in the
        data-plane switch, which owns the lookup-misbehaviour flags.
        """
        for rule in self.sorted_rules(table_id):
            if rule.match.matches(header, in_port):
                return rule
        return None

    def rules_for_port(self, port: int) -> List[FlowRule]:
        """All rules whose action outputs to ``port``."""
        return [r for r in self.sorted_rules() if r.output_port() == port]

    def copy(self) -> "FlowTable":
        """A shallow copy (rules are immutable, so sharing them is safe)."""
        table = FlowTable()
        for rule_id in self._order:
            table.add(self._rules[rule_id])
        return table


@dataclass(frozen=True)
class AclEntry:
    """One permit/deny line of an access-control list."""

    match: Match
    permit: bool


class Acl:
    """An ordered first-match ACL with an implicit trailing action.

    Cisco-style in/out-bound ACLs referenced in Section 4.1.  The default
    ``default_permit=True`` makes the empty ACL a no-op.
    """

    def __init__(self, entries: Iterable[AclEntry] = (), default_permit: bool = True) -> None:
        self.entries: List[AclEntry] = list(entries)
        self.default_permit = default_permit

    def permits(self, header: Header) -> bool:
        """First-match evaluation of the ACL on a concrete header."""
        for entry in self.entries:
            if entry.match.matches(header):
                return entry.permit
        return self.default_permit

    def to_bdd(self, hs: HeaderSpace) -> int:
        """The header set this ACL permits, as a BDD."""
        permitted = hs.empty
        remaining = hs.all_match
        for entry in self.entries:
            matched = hs.bdd.and_(entry.match.to_bdd(hs), remaining)
            if entry.permit:
                permitted = hs.bdd.or_(permitted, matched)
            remaining = hs.bdd.diff(remaining, matched)
        if self.default_permit:
            permitted = hs.bdd.or_(permitted, remaining)
        return permitted

    def add(self, entry: AclEntry) -> None:
        """Append an entry at the end (lowest precedence before the default)."""
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)
