"""Transfer predicates: the switch-configuration abstraction of Section 4.1.

A switch ``s`` with ports ``1..n`` is abstracted by *transfer predicates*
``P_{x,y}``: only packets whose headers satisfy ``P_{x,y}`` transfer from
port ``x`` to port ``y``.  The paper composes them from three port
predicates:

* ``P_x^in``  — the in-bound ACL of port ``x``,
* ``P_y^fwd`` — headers the (priority-resolved) flow table sends to ``y``,
* ``P_y^out`` — the out-bound ACL of port ``y``,

as::

    P_{x,y} = P_x^in ∧ P_y^fwd ∧ P_y^out                      (y != ⊥)
    P_{x,⊥} = ¬P_x^in ∨ (P_x^in ∧ P_⊥^fwd)
              ∨ (P_x^in ∧ ∨_y (P_y^fwd ∧ ¬P_y^out))
    P_⊥^fwd = ¬(∨_y P_y^fwd)

The three disjuncts of ``P_{x,⊥}`` are the three drop reasons: inbound-ACL
filtering, no forwarding match, outbound-ACL filtering.

Priority resolution: rules are scanned in flow-table lookup order while
subtracting already-claimed header space, so an overlapped low-priority rule
contributes only the headers the higher-priority rules left behind.  Rules
matching on ``in_port`` make ``P_y^fwd`` ingress-dependent; we therefore
compute forwarding predicates *per ingress port* (a strict generalisation of
the paper's formulation, collapsing to it when no rule uses ``in_port``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd.headerspace import HeaderSpace
from .rules import DROP_PORT, FlowTable, Forward, GotoTable, Rewrite
from .topology import SwitchInfo, Topology

__all__ = ["SwitchPredicates", "TransferAction", "build_all_predicates"]


@dataclass(frozen=True)
class TransferAction:
    """One slice of a switch's behaviour for a given ingress port.

    Packets (pre-rewrite headers) satisfying ``pred`` leave on ``out_port``
    after the ``rewrites`` are applied.  Drop slices have
    ``out_port == DROP_PORT`` and no rewrites.  The preds of all actions
    for one ingress partition the header space.
    """

    out_port: int
    pred: int
    rewrites: Tuple[Tuple[str, int], ...] = ()


class SwitchPredicates:
    """Per-switch transfer predicates, computed from one switch's tables.

    Instances are snapshots: recompute (or apply the incremental updater in
    :mod:`repro.core.incremental`) after the flow table changes.
    """

    def __init__(self, info: SwitchInfo, hs: HeaderSpace) -> None:
        self.switch_id = info.switch_id
        self.hs = hs
        self._ports = sorted(info.ports)
        self._in_acl = {
            port: acl.to_bdd(hs) for port, acl in info.in_acl.items()
        }
        self._out_acl = {
            port: acl.to_bdd(hs) for port, acl in info.out_acl.items()
        }
        self._fwd_by_inport: Dict[Optional[int], Dict[int, int]] = {}
        self._table = info.flow_table
        self._ingress_sensitive = any(
            rule.match.in_port is not None for rule in info.flow_table
        )

    # -- port predicates -------------------------------------------------

    def in_pred(self, port: int) -> int:
        """``P_x^in``: headers admitted by port ``port``'s inbound ACL."""
        return self._in_acl.get(port, self.hs.all_match)

    def out_pred(self, port: int) -> int:
        """``P_y^out``: headers admitted by port ``port``'s outbound ACL."""
        return self._out_acl.get(port, self.hs.all_match)

    def _expand_table(
        self,
        in_port: Optional[int],
        table_id: int,
        remaining: int,
        chain: Tuple[Tuple[str, int], ...],
    ):
        """Yield ``(out_port, entry_pred, rewrites)`` slices for one table.

        ``remaining`` and the yielded predicates are over *entry* headers
        (pre-rewrite); matches in later tables are pulled back through the
        accumulated set-field ``chain``.  The yielded slices partition
        ``remaining``.
        """
        bdd = self.hs.bdd
        for rule in self._table.sorted_rules(table_id):
            if rule.match.in_port is not None and rule.match.in_port != in_port:
                continue
            if remaining == self.hs.empty:
                return
            match_bdd = rule.match.to_bdd(self.hs)
            if chain:
                match_bdd = self.hs.preimage_sets(match_bdd, chain)
            effective = bdd.and_(remaining, match_bdd)
            if effective == self.hs.empty:
                continue
            remaining = bdd.diff(remaining, effective)
            action = rule.action
            if isinstance(action, GotoTable):
                if action.table_id <= table_id:  # defensive; ctor forbids it
                    yield (DROP_PORT, effective, ())
                else:
                    yield from self._expand_table(
                        in_port,
                        action.table_id,
                        effective,
                        chain + action.effective_sets(),
                    )
                continue
            out = rule.output_port()
            if out != DROP_PORT and out not in self._ports:
                out = DROP_PORT  # output to a nonexistent port drops
            if out == DROP_PORT:
                yield (DROP_PORT, effective, ())
            else:
                yield (out, effective, chain + rule.rewrite_sets())
        if remaining != self.hs.empty:
            yield (DROP_PORT, remaining, ())  # table miss drops

    def _expand_slices(self, in_port: Optional[int]):
        """Full-pipeline slices for one ingress (start in table 0)."""
        yield from self._expand_table(in_port, 0, self.hs.all_match, ())

    def forwarding_predicates(self, in_port: Optional[int] = None) -> Dict[int, int]:
        """``P_y^fwd`` for every output port ``y`` including ``DROP_PORT``.

        ``in_port`` selects the ingress for ``in_port``-matching rules; pass
        ``None`` to treat such rules as never matching.  Multi-table
        pipelines are resolved through their ``GotoTable`` chains.  The
        returned map is a partition of the full header space over *entry*
        headers: every header lands on exactly one output port (maybe ``⊥``).
        """
        key = in_port if self._ingress_sensitive else None
        cached = self._fwd_by_inport.get(key)
        if cached is not None:
            return cached
        bdd = self.hs.bdd
        preds: Dict[int, int] = {port: self.hs.empty for port in self._ports}
        preds[DROP_PORT] = self.hs.empty
        for out, effective, _ in self._expand_slices(key):
            preds[out] = bdd.or_(preds[out], effective)
        self._fwd_by_inport[key] = preds
        return preds

    # -- rewrite-aware transfer actions -------------------------------------

    def transfer_actions(self, in_port: int) -> List[TransferAction]:
        """Per-rule transfer slices for one ingress, rewrites included.

        This is the rewrite-aware generalisation of :meth:`transfer_map`:
        each action couples the (priority-resolved, ACL-composed) predicate
        with the rewrites its rule applies.  Outbound ACLs filter the
        packet *as sent*, so the egress ACL constraint is pulled back
        through the rewrite chain with
        :meth:`~repro.bdd.headerspace.HeaderSpace.preimage_sets`.
        """
        bdd = self.hs.bdd
        p_in = self.in_pred(in_port)
        merged: Dict[Tuple[int, Tuple[Tuple[str, int], ...]], int] = {}
        drop_pred = bdd.not_(p_in)
        for out, effective, rewrites in self._expand_slices(in_port):
            if out == DROP_PORT:
                drop_pred = bdd.or_(drop_pred, bdd.and_(p_in, effective))
                continue
            out_acl = self.out_pred(out)
            if rewrites:
                out_acl = self.hs.preimage_sets(out_acl, rewrites)
            passed = bdd.and_many([p_in, effective, out_acl])
            blocked = bdd.and_many([p_in, effective, bdd.not_(out_acl)])
            if passed != self.hs.empty:
                key = (out, rewrites)
                merged[key] = bdd.or_(merged.get(key, self.hs.empty), passed)
            drop_pred = bdd.or_(drop_pred, blocked)
        actions = [
            TransferAction(out, pred, rewrites)
            for (out, rewrites), pred in sorted(merged.items())
        ]
        actions.append(TransferAction(DROP_PORT, drop_pred, ()))
        return actions

    # -- transfer predicates ------------------------------------------------

    def transfer(self, in_port: int, out_port: int) -> int:
        """``P_{x,y}`` — the headers that transfer ``in_port -> out_port``."""
        bdd = self.hs.bdd
        fwd = self.forwarding_predicates(in_port)
        p_in = self.in_pred(in_port)
        if out_port != DROP_PORT:
            p_fwd = fwd.get(out_port, self.hs.empty)
            return bdd.and_many([p_in, p_fwd, self.out_pred(out_port)])
        # Drop predicate: three drop reasons per the paper's formula.
        not_in = bdd.not_(p_in)
        fwd_drop = bdd.and_(p_in, fwd[DROP_PORT])
        acl_drop = self.hs.empty
        for port in self._ports:
            blocked = bdd.and_(
                fwd.get(port, self.hs.empty), bdd.not_(self.out_pred(port))
            )
            acl_drop = bdd.or_(acl_drop, blocked)
        acl_drop = bdd.and_(p_in, acl_drop)
        return bdd.or_many([not_in, fwd_drop, acl_drop])

    def transfer_map(self, in_port: int) -> Dict[int, int]:
        """``P_{x,y}`` for all ``y`` (including ``⊥``) given ingress ``x``.

        The values partition the header space (property-tested): every
        header entering at ``x`` goes to exactly one output.
        """
        result = {}
        for port in self._ports:
            pred = self.transfer(in_port, port)
            if pred != self.hs.empty:
                result[port] = pred
        result[DROP_PORT] = self.transfer(in_port, DROP_PORT)
        return result

    def ports(self) -> List[int]:
        """Declared ports of the switch, sorted."""
        return list(self._ports)


def build_all_predicates(
    topo: Topology, hs: HeaderSpace
) -> Dict[str, SwitchPredicates]:
    """Snapshot transfer predicates for every switch in the topology."""
    return {
        switch_id: SwitchPredicates(info, hs)
        for switch_id, info in topo.switches.items()
    }
