"""Shared network model: packets, rules, topology and transfer predicates.

Both planes are built on this substrate — the controller compiles
:class:`~repro.netmodel.rules.FlowRule` objects, the data-plane simulator
executes them, and :mod:`repro.netmodel.predicates` abstracts switch
configurations into the transfer predicates VeriDP's path table is built
from (Section 4.1 of the paper).
"""

from .packet import Header, Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .predicates import SwitchPredicates, build_all_predicates
from .rules import (
    Acl,
    AclEntry,
    Action,
    DROP_PORT,
    Drop,
    FlowRule,
    FlowTable,
    Forward,
    Match,
)
from .topology import PortRef, SwitchInfo, Topology

__all__ = [
    "Header",
    "Packet",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Match",
    "FlowRule",
    "FlowTable",
    "Forward",
    "Drop",
    "Action",
    "Acl",
    "AclEntry",
    "DROP_PORT",
    "PortRef",
    "SwitchInfo",
    "Topology",
    "SwitchPredicates",
    "build_all_predicates",
]
