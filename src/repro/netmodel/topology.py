"""Network topology model: switches, ports, links, edge classification.

VeriDP distinguishes *entry*, *exit* and *internal* switches by where their
ports attach (Section 3.3): a port connected to an end host or middlebox is
an **edge port**; ports interconnecting switches are **internal**.  The
:class:`Topology` tracks this classification because the pipeline behaves
differently at edge ports (tag initialisation on ingress, tag reports on
egress).

Port identity follows the paper's hop notation: a hop is
``<input_port, switch_id, output_port>`` with port ids local to the switch.
A global port is a :class:`PortRef` ``(switch_id, port_no)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from .rules import Acl, DROP_PORT, FlowTable

__all__ = ["PortRef", "SwitchInfo", "Topology"]


@dataclass(frozen=True, order=True)
class PortRef:
    """A globally unique reference to one port of one switch."""

    switch: str
    port: int

    def __str__(self) -> str:
        if self.port == DROP_PORT:
            return f"<{self.switch}, ⊥>"
        return f"<{self.switch}, {self.port}>"


@dataclass
class SwitchInfo:
    """Control-plane view of one switch: its ports, tables and ACLs.

    * ``flow_table`` — the forwarding rules (the controller's logical copy;
      the data-plane simulator holds its own physical copy),
    * ``in_acl`` / ``out_acl`` — optional per-port ACLs (Section 4.1's
      ``P_x^in`` and ``P_y^out`` predicates derive from these).
    """

    switch_id: str
    ports: Set[int]
    flow_table: FlowTable
    in_acl: Dict[int, Acl]
    out_acl: Dict[int, Acl]

    def __init__(self, switch_id: str) -> None:
        self.switch_id = switch_id
        self.ports = set()
        self.flow_table = FlowTable()
        self.in_acl = {}
        self.out_acl = {}


class Topology:
    """An SDN topology: switches, inter-switch links and host attachments.

    Links are bidirectional and port-to-port.  Host attachments mark ports as
    *edge* ports; everything else wired to another switch is *internal*.
    Unwired ports are treated as edge ports too (a packet leaving one exits
    the monitored domain), matching the paper's "edge port" condition in
    Algorithm 1 line 6.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.switches: Dict[str, SwitchInfo] = {}
        self._links: Dict[PortRef, PortRef] = {}
        self._hosts: Dict[str, PortRef] = {}
        self._host_at_port: Dict[PortRef, str] = {}
        self._middleboxes: Dict[str, PortRef] = {}
        self._mb_at_port: Dict[PortRef, str] = {}

    # -- construction ----------------------------------------------------

    def add_switch(self, switch_id: str, num_ports: int = 0) -> SwitchInfo:
        """Create a switch, optionally pre-declaring ports 1..num_ports."""
        if switch_id in self.switches:
            raise ValueError(f"duplicate switch id {switch_id!r}")
        info = SwitchInfo(switch_id)
        info.ports.update(range(1, num_ports + 1))
        self.switches[switch_id] = info
        return info

    def add_port(self, switch_id: str, port: int) -> None:
        """Declare a port on an existing switch."""
        if port <= 0:
            raise ValueError(f"port numbers are positive, got {port}")
        self._switch(switch_id).ports.add(port)

    def add_link(self, a_switch: str, a_port: int, b_switch: str, b_port: int) -> None:
        """Wire two switch ports together (bidirectional)."""
        a = PortRef(a_switch, a_port)
        b = PortRef(b_switch, b_port)
        if a == b:
            raise ValueError(f"cannot link a port to itself: {a}")
        for ref in (a, b):
            self._switch(ref.switch).ports.add(ref.port)
            if ref in self._links:
                raise ValueError(f"port {ref} is already linked to {self._links[ref]}")
            self._check_port_free(ref, "cannot wire a link here")
        self._links[a] = b
        self._links[b] = a

    def add_host(self, host_id: str, switch_id: str, port: int) -> None:
        """Attach an end host to a switch port (making it an edge port)."""
        ref = PortRef(switch_id, port)
        self._switch(switch_id).ports.add(port)
        self._check_port_free(ref, f"cannot host {host_id}")
        if host_id in self._hosts:
            raise ValueError(f"duplicate host id {host_id!r}")
        self._hosts[host_id] = ref
        self._host_at_port[ref] = host_id

    def add_middlebox(self, mb_id: str, switch_id: str, port: int) -> None:
        """Attach a *transparent* middlebox to a switch port.

        A middlebox port is not an edge port: packets sent out of it bounce
        straight back in (``link()`` returns the port itself), modelling a
        bump-in-the-wire waypoint that preserves the VeriDP in-band state.
        This reproduces Table 1's ``S1 -> S2 -> MB -> S2 -> S3`` paths with
        a single tag across the detour.
        """
        ref = PortRef(switch_id, port)
        self._switch(switch_id).ports.add(port)
        self._check_port_free(ref, f"cannot attach middlebox {mb_id}")
        if mb_id in self._middleboxes:
            raise ValueError(f"duplicate middlebox id {mb_id!r}")
        self._middleboxes[mb_id] = ref
        self._mb_at_port[ref] = mb_id

    def _check_port_free(self, ref: PortRef, context: str) -> None:
        if ref in self._links:
            raise ValueError(f"port {ref} is an internal link; {context}")
        if ref in self._host_at_port:
            raise ValueError(
                f"port {ref} already hosts {self._host_at_port[ref]}; {context}"
            )
        if ref in self._mb_at_port:
            raise ValueError(
                f"port {ref} already has middlebox {self._mb_at_port[ref]}; {context}"
            )

    # -- lookup ------------------------------------------------------------

    def _switch(self, switch_id: str) -> SwitchInfo:
        try:
            return self.switches[switch_id]
        except KeyError:
            raise KeyError(
                f"unknown switch {switch_id!r}; have {sorted(self.switches)}"
            ) from None

    def switch(self, switch_id: str) -> SwitchInfo:
        """The :class:`SwitchInfo` for ``switch_id`` (KeyError with context)."""
        return self._switch(switch_id)

    def ports_of(self, switch_id: str) -> List[int]:
        """Sorted port numbers of a switch."""
        return sorted(self._switch(switch_id).ports)

    def link(self, ref: PortRef) -> Optional[PortRef]:
        """The peer port wired to ``ref``, or ``None`` for edge/unwired ports.

        This is the ``Link(<s, y>)`` function of Algorithm 2 line 9.  A
        transparent middlebox port is its own peer: packets (and symbolic
        header sets) sent to the middlebox come straight back in.
        """
        if ref in self._mb_at_port:
            return ref
        return self._links.get(ref)

    def host_at(self, ref: PortRef) -> Optional[str]:
        """Host attached at this port, if any."""
        return self._host_at_port.get(ref)

    def host_port(self, host_id: str) -> PortRef:
        """Attachment point of a host."""
        try:
            return self._hosts[host_id]
        except KeyError:
            raise KeyError(
                f"unknown host {host_id!r}; have {sorted(self._hosts)}"
            ) from None

    def hosts(self) -> List[str]:
        """All host ids, sorted (middleboxes are listed separately)."""
        return sorted(self._hosts)

    def middleboxes(self) -> List[str]:
        """All transparent middlebox ids, sorted."""
        return sorted(self._middleboxes)

    def middlebox_port(self, mb_id: str) -> PortRef:
        """Attachment point of a middlebox."""
        try:
            return self._middleboxes[mb_id]
        except KeyError:
            raise KeyError(
                f"unknown middlebox {mb_id!r}; have {sorted(self._middleboxes)}"
            ) from None

    def middlebox_at(self, ref: PortRef) -> Optional[str]:
        """Middlebox attached at this port, if any."""
        return self._mb_at_port.get(ref)

    def is_edge_port(self, ref: PortRef) -> bool:
        """True for ports not wired to another switch (Algorithm 1/2's test).

        The drop port ``⊥`` is *not* an edge port; it is handled separately
        by the ``y == ⊥`` condition.  Transparent middlebox ports are also
        not edge ports — traversal continues through them.
        """
        if ref.port == DROP_PORT:
            return False
        self._switch(ref.switch)
        return ref not in self._links and ref not in self._mb_at_port

    def edge_ports(self) -> List[PortRef]:
        """Every edge port in the network, sorted."""
        result = [
            PortRef(sid, port)
            for sid, info in self.switches.items()
            for port in info.ports
            if self.is_edge_port(PortRef(sid, port))
        ]
        return sorted(result)

    def host_edge_ports(self) -> List[PortRef]:
        """Edge ports that actually have a host attached."""
        return sorted(self._host_at_port)

    def internal_links(self) -> List[Tuple[PortRef, PortRef]]:
        """Each physical link once, as a sorted (low, high) pair."""
        seen = set()
        result = []
        for a, b in self._links.items():
            key = tuple(sorted((a, b)))
            if key not in seen:
                seen.add(key)
                result.append(key)
        return sorted(result)

    def neighbors(self, switch_id: str) -> List[str]:
        """Switches directly linked to ``switch_id``."""
        result = set()
        info = self._switch(switch_id)
        for port in info.ports:
            peer = self._links.get(PortRef(switch_id, port))
            if peer is not None:
                result.add(peer.switch)
        return sorted(result)

    # -- derived views ------------------------------------------------------

    def to_networkx(self) -> "nx.Graph":
        """Switch-level graph with ports recorded on the edges.

        Used by the controller's shortest-path computation.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.switches)
        for a, b in self.internal_links():
            graph.add_edge(a.switch, b.switch, ports={a.switch: a.port, b.switch: b.port})
        return graph

    def validate(self) -> None:
        """Sanity-check structural invariants; raises ``ValueError`` on breakage."""
        for a, b in self._links.items():
            if self._links.get(b) != a:
                raise ValueError(f"asymmetric link {a} -> {b}")
            if a.port <= 0 or b.port <= 0:
                raise ValueError(f"non-positive port in link {a} - {b}")
        for host, ref in self._hosts.items():
            if self._host_at_port.get(ref) != host:
                raise ValueError(f"host index inconsistent for {host}")
            if ref in self._links:
                raise ValueError(f"host {host} sits on an internal link port {ref}")
        for mb, ref in self._middleboxes.items():
            if self._mb_at_port.get(ref) != mb:
                raise ValueError(f"middlebox index inconsistent for {mb}")
            if ref in self._links or ref in self._host_at_port:
                raise ValueError(f"middlebox {mb} shares port {ref}")

    def diameter_bound(self) -> int:
        """A safe ``MAX_PATH_LENGTH`` for Algorithm 1's TTL.

        Twice the switch count covers middlebox hair-pinning paths that visit
        a switch more than once (e.g. ``S1 -> S2 -> MB -> S2 -> S3``), plus
        two extra hops per middlebox for the detours themselves.
        """
        return max(2 * len(self.switches) + 2 * len(self._middleboxes), 4)

    def __str__(self) -> str:
        return (
            f"Topology({self.name!r}: {len(self.switches)} switches, "
            f"{len(self.internal_links())} links, {len(self._hosts)} hosts)"
        )

    def stats(self) -> Dict[str, int]:
        """Size counters for experiment reporting."""
        return {
            "switches": len(self.switches),
            "links": len(self.internal_links()),
            "hosts": len(self._hosts),
            "edge_ports": len(self.edge_ports()),
            "rules": sum(len(info.flow_table) for info in self.switches.values()),
        }
