"""Packet and header models.

A :class:`Header` is the immutable classic 5-tuple that VeriDP verifies
against path-table header sets (the paper assumes no packet rewrites, so the
header is constant along a path).  A :class:`Packet` wraps a header together
with the mutable VeriDP in-band state the pipeline manipulates (Section 5,
"Packet format"): a 1-bit sampling *marker*, the Bloom-filter *tag* carried
in the first VLAN tag, the 14-bit *inport* identifier carried in the second
VLAN tag, and the verification TTL of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..bdd.headerspace import format_ipv4, parse_ipv4

__all__ = ["Header", "Packet", "PROTO_TCP", "PROTO_UDP", "PROTO_ICMP"]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True)
class Header:
    """An immutable TCP/IP 5-tuple.

    IP addresses are stored as 32-bit integers; use :meth:`from_strings` for
    dotted-quad convenience.
    """

    src_ip: int = 0
    dst_ip: int = 0
    proto: int = PROTO_TCP
    src_port: int = 0
    dst_port: int = 0

    def __post_init__(self) -> None:
        self._check("src_ip", self.src_ip, 32)
        self._check("dst_ip", self.dst_ip, 32)
        self._check("proto", self.proto, 8)
        self._check("src_port", self.src_port, 16)
        self._check("dst_port", self.dst_port, 16)

    @staticmethod
    def _check(name: str, value: int, width: int) -> None:
        if not 0 <= value < (1 << width):
            raise ValueError(f"{name}={value} does not fit in {width} bits")

    @classmethod
    def from_strings(
        cls,
        src_ip: str = "0.0.0.0",
        dst_ip: str = "0.0.0.0",
        proto: int = PROTO_TCP,
        src_port: int = 0,
        dst_port: int = 0,
    ) -> "Header":
        """Build a header from dotted-quad address text."""
        return cls(
            src_ip=parse_ipv4(src_ip),
            dst_ip=parse_ipv4(dst_ip),
            proto=proto,
            src_port=src_port,
            dst_port=dst_port,
        )

    def as_dict(self) -> Dict[str, int]:
        """Field mapping in the shape :class:`repro.bdd.HeaderSpace` expects."""
        return {
            "src_ip": self.src_ip,
            "dst_ip": self.dst_ip,
            "proto": self.proto,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
        }

    def five_tuple(self) -> Tuple[int, int, int, int, int]:
        """The flow key used by the sampling module (Section 5)."""
        return (self.src_ip, self.dst_ip, self.proto, self.src_port, self.dst_port)

    def with_(self, **overrides: int) -> "Header":
        """A copy with some fields replaced."""
        return replace(self, **overrides)

    def __str__(self) -> str:
        return (
            f"{format_ipv4(self.src_ip)}:{self.src_port} -> "
            f"{format_ipv4(self.dst_ip)}:{self.dst_port} proto={self.proto}"
        )


@dataclass
class Packet:
    """A packet in flight: an immutable header plus mutable VeriDP state.

    Attributes mirror the in-band fields the paper adds to sampled packets:

    * ``marker`` — sampled-for-verification bit (IP TOS bit in the paper),
    * ``tag`` — the Bloom-filter path tag (16 bits by default),
    * ``ttl`` — verification TTL, initialised to ``MAX_PATH_LENGTH`` at the
      entry switch and decremented per hop (loop cut-off),
    * ``inport_id`` — encoded entry port (8-bit switch id + 6-bit port id),
    * ``size`` — payload size in bytes, used only by the latency model.
    """

    header: Header
    size: int = 512
    marker: bool = False
    tag: int = 0
    ttl: Optional[int] = None
    inport_id: Optional[int] = None
    hops_taken: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def flow_key(self) -> Tuple[int, int, int, int, int]:
        """Flow identity for sampling state lookup."""
        return self.header.five_tuple()

    def copy(self) -> "Packet":
        """An independent copy (fresh VeriDP state container)."""
        clone = Packet(
            header=self.header,
            size=self.size,
            marker=self.marker,
            tag=self.tag,
            ttl=self.ttl,
            inport_id=self.inport_id,
        )
        clone.hops_taken = list(self.hops_taken)
        return clone
