"""Packet header sets as BDD predicates.

VeriDP's path table stores, for every path, the *set of headers* allowed to
follow that path.  Wildcard-expression encodings blow up on negated matches
(the paper notes ``dst_port != 22`` alone needs 16 wildcard unions, and the
Stanford network would need ~652 million expressions), so header sets are
Boolean functions over the header bits, stored as BDDs.

This module fixes a bit layout for the classic 5-tuple and provides the
predicate constructors the rest of the system uses:

* exact-match on a field,
* IP-prefix match,
* integer range match (for port ranges),
* ternary wildcard strings (``"10xx...x"``),
* conversion of a concrete packet header into its singleton BDD.

Field bits are allocated MSB-first in field declaration order, so prefix
matches are single cubes (cheap and small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .engine import BDD, FALSE, TRUE

__all__ = [
    "HeaderField",
    "HeaderLayout",
    "HeaderSpace",
    "DEFAULT_FIELDS",
    "parse_ipv4",
    "parse_prefix",
    "format_ipv4",
    "range_to_prefixes",
]


@dataclass(frozen=True)
class HeaderField:
    """A named fixed-width bit field in the packet header."""

    name: str
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")
        if not self.name:
            raise ValueError("field name must be non-empty")

    @property
    def max_value(self) -> int:
        """Largest representable value of this field."""
        return (1 << self.width) - 1


#: The TCP/IP 5-tuple used throughout the paper's examples (104 bits total).
DEFAULT_FIELDS: Tuple[HeaderField, ...] = (
    HeaderField("src_ip", 32),
    HeaderField("dst_ip", 32),
    HeaderField("proto", 8),
    HeaderField("src_port", 16),
    HeaderField("dst_port", 16),
)


class HeaderLayout:
    """An ordered collection of header fields mapped to BDD variable levels.

    The first declared field owns the root-most BDD levels.  Within a field,
    the most significant bit gets the smallest level, so an IP prefix is a
    contiguous run of top levels — one cube, ``plen`` BDD nodes.
    """

    def __init__(self, fields: Sequence[HeaderField] = DEFAULT_FIELDS) -> None:
        if not fields:
            raise ValueError("layout needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in layout: {names}")
        self.fields: Tuple[HeaderField, ...] = tuple(fields)
        self._offset: Dict[str, int] = {}
        self._by_name: Dict[str, HeaderField] = {}
        offset = 0
        for field in self.fields:
            self._offset[field.name] = offset
            self._by_name[field.name] = field
            offset += field.width
        self.total_bits = offset

    def field(self, name: str) -> HeaderField:
        """Look up a field by name, raising ``KeyError`` with context."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown header field {name!r}; layout has {list(self._by_name)}"
            ) from None

    def offset(self, name: str) -> int:
        """BDD level of the MSB of field ``name``."""
        self.field(name)
        return self._offset[name]

    def bit_level(self, name: str, bit_from_msb: int) -> int:
        """BDD level of the ``bit_from_msb``-th bit (0 = MSB) of a field."""
        field = self.field(name)
        if not 0 <= bit_from_msb < field.width:
            raise ValueError(
                f"bit {bit_from_msb} out of range for {name} (width {field.width})"
            )
        return self._offset[name] + bit_from_msb

    def field_names(self) -> List[str]:
        """Declared field names, in layout order."""
        return [f.name for f in self.fields]


class HeaderSpace:
    """Factory for header-set BDDs over a fixed :class:`HeaderLayout`.

    One ``HeaderSpace`` (and hence one BDD manager) is shared by everything
    that must compare header sets — the path table, the verifier and the
    incremental updater all receive the same instance.
    """

    def __init__(self, layout: Optional[HeaderLayout] = None) -> None:
        self.layout = layout or HeaderLayout()
        self.bdd = BDD(self.layout.total_bits)
        self._exact_cache: Dict[Tuple[str, int], int] = {}

    # -- constants -----------------------------------------------------

    @property
    def all_match(self) -> int:
        """The universe: every possible header (a BDD of True)."""
        return TRUE

    @property
    def empty(self) -> int:
        """The empty header set (a BDD of False)."""
        return FALSE

    # -- predicate constructors ----------------------------------------

    def exact(self, field_name: str, value: int) -> int:
        """Headers whose ``field_name`` equals ``value`` exactly."""
        key = (field_name, value)
        cached = self._exact_cache.get(key)
        if cached is not None:
            return cached
        field = self.layout.field(field_name)
        self._check_value(field, value)
        result = self.prefix(field_name, value, field.width)
        self._exact_cache[key] = result
        return result

    def prefix(self, field_name: str, value: int, plen: int) -> int:
        """Headers whose top ``plen`` bits of ``field_name`` match ``value``.

        ``value`` is the full-width field value; only its top ``plen`` bits
        are significant (the convention of IP routing tables).
        """
        field = self.layout.field(field_name)
        if not 0 <= plen <= field.width:
            raise ValueError(
                f"prefix length {plen} out of range for {field_name} "
                f"(width {field.width})"
            )
        self._check_value(field, value)
        base = self.layout.offset(field_name)
        literals = [
            (base + i, bool((value >> (field.width - 1 - i)) & 1))
            for i in range(plen)
        ]
        return self.bdd.cube(literals)

    def wildcard(self, field_name: str, pattern: str) -> int:
        """Headers matching a ternary pattern of ``0``/``1``/``x`` (MSB first)."""
        field = self.layout.field(field_name)
        if len(pattern) != field.width:
            raise ValueError(
                f"pattern length {len(pattern)} != width {field.width} of {field_name}"
            )
        base = self.layout.offset(field_name)
        literals: List[Tuple[int, bool]] = []
        for i, ch in enumerate(pattern):
            if ch == "1":
                literals.append((base + i, True))
            elif ch == "0":
                literals.append((base + i, False))
            elif ch not in ("x", "X", "*"):
                raise ValueError(f"bad wildcard character {ch!r} in {pattern!r}")
        return self.bdd.cube(literals)

    def range_(self, field_name: str, lo: int, hi: int) -> int:
        """Headers with ``lo <= field <= hi`` (inclusive on both ends)."""
        field = self.layout.field(field_name)
        self._check_value(field, lo)
        self._check_value(field, hi)
        if lo > hi:
            return FALSE
        return self.bdd.or_many(
            self.prefix(field_name, value, plen)
            for value, plen in range_to_prefixes(lo, hi, field.width)
        )

    def not_equal(self, field_name: str, value: int) -> int:
        """Headers whose ``field_name`` differs from ``value``."""
        return self.bdd.not_(self.exact(field_name, value))

    def member(self, field_name: str, values: Iterable[int]) -> int:
        """Headers whose ``field_name`` is one of ``values``."""
        return self.bdd.or_many(self.exact(field_name, v) for v in values)

    def header_bdd(self, header: Mapping[str, int]) -> int:
        """Singleton BDD for one concrete header.

        Every field of the layout must be present: a tag report carries a
        complete 5-tuple, and the membership test ``header ≺ p.headers``
        (Algorithm 3, line 2) intersects this singleton with the path's
        header set.
        """
        literals: List[Tuple[int, bool]] = []
        for field in self.layout.fields:
            try:
                value = header[field.name]
            except KeyError:
                raise KeyError(
                    f"header missing field {field.name!r}: {dict(header)}"
                ) from None
            self._check_value(field, value)
            base = self.layout.offset(field.name)
            for i in range(field.width):
                literals.append(
                    (base + i, bool((value >> (field.width - 1 - i)) & 1))
                )
        return self.bdd.cube(literals)

    # -- rewrite transforms (header image / preimage) ----------------------

    def field_levels(self, field_name: str) -> List[int]:
        """The BDD variable levels spanned by a field."""
        field = self.layout.field(field_name)
        base = self.layout.offset(field_name)
        return list(range(base, base + field.width))

    def set_field(self, header_set: int, field_name: str, value: int) -> int:
        """Image of ``header_set`` under the rewrite ``field := value``.

        The field's old bits are existentially forgotten, then pinned to
        the new constant — exactly what an OpenFlow ``set_field`` does to a
        set of packets.
        """
        field = self.layout.field(field_name)
        self._check_value(field, value)
        forgotten = self.bdd.exists(header_set, self.field_levels(field_name))
        return self.bdd.and_(forgotten, self.exact(field_name, value))

    def apply_sets(
        self, header_set: int, sets: Sequence[Tuple[str, int]]
    ) -> int:
        """Image under an ordered sequence of ``field := value`` rewrites."""
        result = header_set
        for field_name, value in sets:
            result = self.set_field(result, field_name, value)
        return result

    def preimage_sets(
        self, constraint: int, sets: Sequence[Tuple[str, int]]
    ) -> int:
        """Headers whose *rewritten* version satisfies ``constraint``.

        For one op ``f := c``: a pre-rewrite header satisfies the
        constraint iff the constraint holds with ``f`` pinned to ``c`` —
        and the header's own ``f`` bits are then unconstrained.  A chain is
        inverted op-by-op in reverse order.
        """
        result = constraint
        for field_name, value in reversed(list(sets)):
            pinned = self.bdd.and_(result, self.exact(field_name, value))
            result = self.bdd.exists(pinned, self.field_levels(field_name))
        return result

    def rewrite_header(
        self, header: Dict[str, int], sets: Sequence[Tuple[str, int]]
    ) -> Dict[str, int]:
        """Apply rewrites to one concrete header mapping."""
        result = dict(header)
        for field_name, value in sets:
            field = self.layout.field(field_name)
            self._check_value(field, value)
            result[field_name] = value
        return result

    # -- queries ---------------------------------------------------------

    def contains(self, header_set: int, header: Mapping[str, int]) -> bool:
        """Is the concrete ``header`` a member of ``header_set``?

        Walks the BDD once with the header bits instead of materialising the
        singleton BDD — this is the verification fast path.
        """
        bits: Dict[int, bool] = {}
        for field in self.layout.fields:
            value = header[field.name]
            base = self.layout.offset(field.name)
            for i in range(field.width):
                bits[base + i] = bool((value >> (field.width - 1 - i)) & 1)
        return self.bdd.evaluate(header_set, bits)

    def header_value(self, header: Mapping[str, int]) -> int:
        """Pack a concrete header into one integer (level 0 = MSB).

        This is the input format of :meth:`repro.bdd.engine.FlatBDD
        .evaluate_value`: compiled matchers extract each variable's bit with
        one shift instead of a per-bit dict lookup, which is what makes the
        verification fast path cheap.
        """
        value = 0
        for field in self.layout.fields:
            v = header[field.name]
            if v >> field.width:
                raise ValueError(
                    f"value {v} out of range for field {field.name} "
                    f"(width {field.width})"
                )
            value = (value << field.width) | v
        return value

    def header_from_value(self, value: int) -> Dict[str, int]:
        """Unpack :meth:`header_value`'s integer back into a field mapping.

        The inverse the active prober needs: compiled-matcher witness
        extraction (:func:`repro.core.vector.witness_cube`) produces packed
        values, and packet synthesis needs concrete fields.
        """
        if value < 0 or value >> self.layout.total_bits:
            raise ValueError(
                f"packed value {value} does not fit the "
                f"{self.layout.total_bits}-bit layout"
            )
        header: Dict[str, int] = {}
        for field in reversed(self.layout.fields):
            header[field.name] = value & field.max_value
            value >>= field.width
        return {field.name: header[field.name] for field in self.layout.fields}

    def sample_header(self, header_set: int) -> Optional[Dict[str, int]]:
        """One concrete header in ``header_set``, or ``None`` if empty.

        Don't-care bits are filled with zeros.  Used by workload generators
        to craft a packet that exercises a given path.
        """
        cube = self.bdd.pick(header_set)
        if cube is None:
            return None
        header: Dict[str, int] = {}
        for field in self.layout.fields:
            base = self.layout.offset(field.name)
            value = 0
            for i in range(field.width):
                value = (value << 1) | int(cube.get(base + i, False))
            header[field.name] = value
        return header

    def count_headers(self, header_set: int) -> int:
        """Number of concrete headers in the set."""
        return self.bdd.count(header_set)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _check_value(field: HeaderField, value: int) -> None:
        if not 0 <= value <= field.max_value:
            raise ValueError(
                f"value {value} out of range for field {field.name} "
                f"(width {field.width})"
            )


def range_to_prefixes(lo: int, hi: int, width: int) -> List[Tuple[int, int]]:
    """Decompose an integer range into maximal prefixes.

    Returns ``(value, plen)`` pairs whose (disjoint) union is ``[lo, hi]``.
    The classic result: any range over ``width`` bits needs at most
    ``2 * width - 2`` prefixes.
    """
    if not 0 <= lo <= hi < (1 << width):
        raise ValueError(f"bad range [{lo}, {hi}] for width {width}")
    prefixes: List[Tuple[int, int]] = []
    while lo <= hi:
        # Largest block size that is aligned at lo and fits in [lo, hi].
        if lo == 0:
            align = 1 << width
        else:
            align = lo & -lo  # largest power of two dividing lo
        size = align
        while size > hi - lo + 1:
            size >>= 1
        plen = width - size.bit_length() + 1
        prefixes.append((lo, plen))
        lo += size
    return prefixes


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 octet {part!r} in {text!r}")
        value = (value << 8) | octet
    return value


def parse_prefix(text: str) -> Tuple[int, int]:
    """Parse ``"a.b.c.d/len"`` (or a bare address = /32) into (value, plen)."""
    if "/" in text:
        addr_text, plen_text = text.split("/", 1)
        plen = int(plen_text)
    else:
        addr_text, plen = text, 32
    if not 0 <= plen <= 32:
        raise ValueError(f"bad prefix length in {text!r}")
    value = parse_ipv4(addr_text)
    # Zero out host bits so equal prefixes compare equal.
    if plen < 32:
        mask = ((1 << plen) - 1) << (32 - plen) if plen else 0
        value &= mask
    return value, plen


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as dotted-quad text."""
    if not 0 <= value < (1 << 32):
        raise ValueError(f"value {value} is not a 32-bit address")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
