"""Atomic predicates (Yang & Lam [56], the paper's reference 56).

Given a set of *generator* predicates (for VeriDP: every transfer predicate
of every switch), the **atoms** are the coarsest partition of the header
space such that each generator is a union of atoms.  Representing header
sets as sets of atom indices turns the BDD intersections in Algorithm 2's
inner loop into native integer-set operations — the optimisation that lets
[56] verify the Stanford network in real time.

This module computes the atoms by iterative refinement and provides the
bidirectional conversion between BDDs and atom sets.  The correctness
contract: conversions are exact for any Boolean combination of generator
predicates (property-tested), which covers everything a path-table
traversal ever intersects.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from .engine import BDD, FALSE, TRUE

__all__ = ["AtomicUniverse", "compute_atoms"]


def compute_atoms(bdd: BDD, predicates: Iterable[int]) -> List[int]:
    """Refine ``{True}`` against every predicate; returns the atom BDDs.

    Deterministic: atoms come out in refinement order.  Worst case the atom
    count is exponential in the predicate count, but nested/disjoint
    predicates (IP routing tables) stay near-linear — which is the whole
    point of the technique.
    """
    atoms: List[int] = [TRUE]
    for predicate in predicates:
        if predicate in (TRUE, FALSE):
            continue
        refined: List[int] = []
        for atom in atoms:
            inside = bdd.and_(atom, predicate)
            if inside != FALSE:
                refined.append(inside)
            outside = bdd.diff(atom, predicate)
            if outside != FALSE:
                refined.append(outside)
        atoms = refined
    return atoms


class AtomicUniverse:
    """A fixed atom basis with BDD <-> atom-set conversion.

    Built once from the generator predicates; afterwards every set
    operation on generator-derived header sets is a ``frozenset`` op.
    """

    def __init__(self, bdd: BDD, generators: Sequence[int]) -> None:
        self.bdd = bdd
        self.atoms: List[int] = compute_atoms(bdd, generators)
        self._to_bdd_cache: Dict[FrozenSet[int], int] = {}
        self._from_bdd_cache: Dict[int, FrozenSet[int]] = {}
        self.all_atoms: FrozenSet[int] = frozenset(range(len(self.atoms)))
        self.empty: FrozenSet[int] = frozenset()

    def __len__(self) -> int:
        return len(self.atoms)

    # -- conversions ---------------------------------------------------------

    def from_bdd(self, predicate: int) -> FrozenSet[int]:
        """Atom indices whose union is ``predicate``.

        Exact iff ``predicate`` is a union of atoms (true for any Boolean
        combination of the generators); atoms partially overlapping a
        non-generator predicate are *included*, making the result an
        over-approximation in that (unsupported) case.
        """
        cached = self._from_bdd_cache.get(predicate)
        if cached is not None:
            return cached
        if predicate == FALSE:
            result: FrozenSet[int] = frozenset()
        elif predicate == TRUE:
            result = self.all_atoms
        else:
            result = frozenset(
                index
                for index, atom in enumerate(self.atoms)
                if self.bdd.and_(atom, predicate) != FALSE
            )
        self._from_bdd_cache[predicate] = result
        return result

    def to_bdd(self, atom_set: FrozenSet[int]) -> int:
        """The union BDD of a set of atoms."""
        atom_set = frozenset(atom_set)
        cached = self._to_bdd_cache.get(atom_set)
        if cached is not None:
            return cached
        if atom_set == self.all_atoms:
            result = TRUE
        else:
            result = self.bdd.or_many(self.atoms[i] for i in sorted(atom_set))
        self._to_bdd_cache[atom_set] = result
        return result

    # -- diagnostics -----------------------------------------------------------

    def is_partition(self) -> bool:
        """Sanity: atoms are pairwise disjoint and cover the universe."""
        union = self.bdd.or_many(self.atoms)
        if union != TRUE:
            return False
        for i, a in enumerate(self.atoms):
            for b in self.atoms[i + 1 :]:
                if self.bdd.and_(a, b) != FALSE:
                    return False
        return True
