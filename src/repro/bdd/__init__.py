"""Binary Decision Diagram substrate for header-set reasoning.

VeriDP (Section 4.1) encodes packet header sets as BDDs instead of wildcard
expressions.  :mod:`repro.bdd.engine` is a from-scratch ROBDD manager;
:mod:`repro.bdd.headerspace` maps the TCP/IP 5-tuple onto BDD variables and
provides match-predicate constructors.
"""

from .atomic import AtomicUniverse, compute_atoms
from .engine import BDD, FALSE, TRUE
from .headerspace import (
    DEFAULT_FIELDS,
    HeaderField,
    HeaderLayout,
    HeaderSpace,
    format_ipv4,
    parse_ipv4,
    parse_prefix,
    range_to_prefixes,
)

__all__ = [
    "BDD",
    "AtomicUniverse",
    "compute_atoms",
    "FALSE",
    "TRUE",
    "HeaderField",
    "HeaderLayout",
    "HeaderSpace",
    "DEFAULT_FIELDS",
    "parse_ipv4",
    "parse_prefix",
    "format_ipv4",
    "range_to_prefixes",
]
