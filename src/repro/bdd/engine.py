"""Reduced Ordered Binary Decision Diagram (ROBDD) engine.

VeriDP represents packet header sets as BDDs (Section 4.1 of the paper,
following Yang & Lam's atomic-predicates work [56]).  This module is a
self-contained, pure-Python ROBDD implementation with:

* hash-consed node storage (a *unique table*), so structural equality is
  pointer (integer id) equality,
* memoized ``ite`` (if-then-else), the single primitive from which all binary
  Boolean connectives are derived,
* existential/universal quantification and variable restriction,
* model counting and satisfying-cube enumeration.

Nodes are referenced by small integers.  ``FALSE = 0`` and ``TRUE = 1`` are
the two terminals.  An internal node ``u`` has a *level* (its variable index
in the global ordering; smaller level = closer to the root), a *low* child
(the cofactor when the variable is 0) and a *high* child (cofactor when 1).

The manager enforces the two ROBDD invariants:

1. ordering: ``level(u) < level(low(u))`` and ``level(u) < level(high(u))``,
2. reduction: no node with ``low == high``, and no two distinct nodes with
   identical ``(level, low, high)`` triples.

Together these make every Boolean function over the fixed ordering have a
single canonical node id, which is what lets VeriDP compare and intersect
header sets in O(size) time.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BDD", "FlatBDD", "FALSE", "TRUE"]

#: Terminal node id for the constant-false function (empty header set).
FALSE = 0
#: Terminal node id for the constant-true function (the all-match header set).
TRUE = 1

#: Pseudo-level assigned to terminals; larger than any real variable level.
_TERMINAL_LEVEL = 1 << 30

#: Child sentinels inside :class:`FlatBDD` arrays (real children are >= 0).
_FLAT_FALSE = -1
_FLAT_TRUE = -2

#: Default bound on each operation cache.  When a cache reaches the bound the
#: oldest half (dict insertion order) is dropped; memo eviction only costs
#: recomputation, never correctness.
_OP_CACHE_MAX = 1 << 20

#: Worklist frame tags for the iterative ``ite``/``not_`` (see below).
_EXPAND = 0
_COMBINE = 1


class FlatBDD:
    """One BDD function frozen into flat parallel arrays for fast evaluation.

    Recursive evaluation through the manager pays a dict lookup per level;
    the verification hot path instead chases three plain lists.  A node ``i``
    stores ``shifts[i]`` (the right-shift that extracts its variable's bit
    from a packed header integer, MSB = level 0), ``low[i]`` and ``high[i]``
    (either another node index or one of the terminal sentinels).

    ``source`` is the manager node id the function was compiled from; by
    ROBDD canonicity a matcher is stale iff its source id no longer equals
    the BDD it should represent, which makes cache invalidation a single
    integer compare.

    Instances are self-contained (no reference to the owning manager), so
    they pickle cheaply — the sharded daemon ships them to worker processes
    as each shard's path-table replica.
    """

    __slots__ = ("source", "root", "shifts", "low", "high", "_np")

    def __init__(
        self,
        source: int,
        root: int,
        shifts: Sequence[int],
        low: Sequence[int],
        high: Sequence[int],
    ) -> None:
        self.source = source
        self.root = root
        self.shifts = list(shifts)
        self.low = list(low)
        self.high = list(high)
        self._np = None

    def arrays(self):
        """Node arrays as numpy ``int32`` for the vector kernel.

        Returns ``(shifts, children)`` where ``children`` interleaves the
        low/high child of each node (``children[2i]`` / ``children[2i+1]``),
        the layout the gather-based batch descent consumes.  Cached per
        instance; ``None`` when numpy is unavailable.
        """
        if self._np is None:
            try:
                import numpy as np
            except Exception:  # pragma: no cover - no-numpy fallback
                return None
            shifts = np.asarray(self.shifts, dtype=np.int32)
            children = np.empty(2 * len(self.low), dtype=np.int32)
            children[0::2] = self.low
            children[1::2] = self.high
            self._np = (shifts, children)
        return self._np

    def evaluate_value(self, value: int) -> bool:
        """Evaluate against a header packed into one integer (level 0 = MSB)."""
        u = self.root
        shifts = self.shifts
        low = self.low
        high = self.high
        while u >= 0:
            u = high[u] if (value >> shifts[u]) & 1 else low[u]
        return u == _FLAT_TRUE

    def __len__(self) -> int:
        return len(self.shifts)

    def __getstate__(self):
        return (self.source, self.root, self.shifts, self.low, self.high)

    def __setstate__(self, state) -> None:
        self.source, self.root, self.shifts, self.low, self.high = state
        self._np = None


class BDD:
    """A manager owning a shared pool of ROBDD nodes.

    All node ids returned by one manager are only meaningful to that manager.
    The number of variables is fixed at construction; variable *levels* run
    from 0 (root-most) to ``num_vars - 1``.

    Example::

        bdd = BDD(4)
        x0, x1 = bdd.var(0), bdd.var(1)
        f = bdd.and_(x0, bdd.not_(x1))
        assert bdd.count(f) == 4  # of the 16 assignments over 4 vars
    """

    def __init__(self, num_vars: int, op_cache_max: int = _OP_CACHE_MAX) -> None:
        if num_vars <= 0:
            raise ValueError(f"num_vars must be positive, got {num_vars}")
        if op_cache_max < 2:
            raise ValueError(f"op_cache_max must be >= 2, got {op_cache_max}")
        self.num_vars = num_vars
        # Parallel arrays indexed by node id.  Slots 0/1 are the terminals;
        # their level sorts after every variable so cofactoring stops there.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        # unique table: (level, low, high) -> node id
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # operation caches (memos): each bounded at op_cache_max entries.
        # The ite cache doubles as the apply memo — every binary connective
        # funnels through ite, and the cache survives across calls until
        # new_generation()/clear_caches() retires it.
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._and_memo: Dict[Tuple[int, int], int] = {}
        self._or_memo: Dict[Tuple[int, int], int] = {}
        self._quant_cache: Dict[Tuple[int, int, frozenset], int] = {}
        self._count_cache: Dict[int, int] = {}
        # size() memo: node structure is immutable once allocated, so cached
        # reachable-set sizes stay valid for the life of the manager.
        self._size_cache: Dict[int, int] = {}
        self.op_cache_max = op_cache_max
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: Build generation: bumped by new_generation(); apply memos live
        #: exactly one generation.
        self.generation = 0
        # single-variable nodes are ubiquitous; build them lazily
        self._var_nodes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Return the canonical node for ``(level, low, high)``."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, level: int) -> int:
        """The function that is true iff variable ``level`` is 1."""
        if not 0 <= level < self.num_vars:
            raise ValueError(f"variable level {level} out of range [0, {self.num_vars})")
        node = self._var_nodes.get(level)
        if node is None:
            node = self._mk(level, FALSE, TRUE)
            self._var_nodes[level] = node
        return node

    def nvar(self, level: int) -> int:
        """The function that is true iff variable ``level`` is 0."""
        if not 0 <= level < self.num_vars:
            raise ValueError(f"variable level {level} out of range [0, {self.num_vars})")
        return self._mk(level, TRUE, FALSE)

    # ------------------------------------------------------------------
    # structural accessors
    # ------------------------------------------------------------------

    def level_of(self, node: int) -> int:
        """Variable level of ``node`` (terminals report a huge sentinel)."""
        return self._level[node]

    def low_of(self, node: int) -> int:
        """Low (variable = 0) cofactor child."""
        return self._low[node]

    def high_of(self, node: int) -> int:
        """High (variable = 1) cofactor child."""
        return self._high[node]

    def size(self, node: int) -> int:
        """Number of distinct nodes reachable from ``node`` (incl. terminals).

        Memoized per root: node structure is immutable once allocated, so a
        cached answer never goes stale.  Stats collection used to pay this
        O(nodes) walk on every call; repeat calls are now O(1).
        """
        cached = self._size_cache.get(node)
        if cached is not None:
            return cached
        seen = {node}
        stack = [node]
        while stack:
            u = stack.pop()
            if u <= TRUE:
                continue
            for child in (self._low[u], self._high[u]):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        result = len(seen)
        self._size_cache[node] = result
        return result

    def num_nodes(self) -> int:
        """Total nodes allocated by this manager (a capacity metric)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def export_nodes(self) -> Tuple[List[int], List[int], List[int]]:
        """The node table (terminals excluded) as three parallel lists.

        Together with :meth:`from_nodes` this round-trips the manager so
        that *node ids stay valid*: any header-set id held elsewhere (path
        table entries, reachability records, FlatBDD sources) refers to the
        same function in the restored manager.
        """
        return (list(self._level[2:]), list(self._low[2:]), list(self._high[2:]))

    def export_nodes_since(self, base: int) -> Tuple[List[int], List[int], List[int]]:
        """The node-table suffix allocated at or after id ``base``.

        The parallel path-table builder forks workers that share the parent's
        first ``base`` nodes; each worker ships back only its private suffix,
        and the parent grafts it on with :meth:`import_nodes`.  The same
        slices serve as the appended-nodes half of a table delta.
        """
        start = max(base, 2)
        return (
            list(self._level[start:]),
            list(self._low[start:]),
            list(self._high[start:]),
        )

    def import_nodes(
        self,
        base: int,
        levels: Sequence[int],
        lows: Sequence[int],
        highs: Sequence[int],
    ) -> List[int]:
        """Graft a foreign node-table suffix onto this manager.

        The foreign manager must share this manager's first ``base`` nodes
        (which fork-based workers do by construction): child references below
        ``base`` are taken verbatim, references at or above it are remapped
        through the nodes merged so far.  Hash-consing in :meth:`_mk`
        collapses duplicates, so merging the same function from two workers
        yields one node.

        Returns ``remap`` with ``remap[i]`` = local id of foreign node
        ``base + i``; terminals and ids below ``base`` map to themselves.
        """
        if not (len(levels) == len(lows) == len(highs)):
            raise ValueError("node arrays disagree on length")
        if not 2 <= base <= len(self._level):
            raise ValueError(
                f"foreign base {base} outside local table [2, {len(self._level)}]"
            )
        remap: List[int] = []
        for level, low, high in zip(levels, lows, highs):
            foreign_id = base + len(remap)
            if not (0 <= low < foreign_id and 0 <= high < foreign_id):
                raise ValueError(f"corrupt suffix at foreign node {foreign_id}")
            if not 0 <= level < self.num_vars:
                raise ValueError(f"corrupt level at foreign node {foreign_id}")
            lo = low if low < base else remap[low - base]
            hi = high if high < base else remap[high - base]
            remap.append(self._mk(level, lo, hi))
        return remap

    @classmethod
    def from_nodes(
        cls,
        num_vars: int,
        levels: List[int],
        lows: List[int],
        highs: List[int],
    ) -> "BDD":
        """Rebuild a manager from :meth:`export_nodes` output.

        Rebuilds the unique table so subsequent operations hash-cons onto
        the restored nodes (reproducing identical ids for identical
        functions); operation caches start cold.
        """
        if not (len(levels) == len(lows) == len(highs)):
            raise ValueError("node arrays disagree on length")
        bdd = cls(num_vars)
        bdd._level.extend(levels)
        bdd._low.extend(lows)
        bdd._high.extend(highs)
        unique = bdd._unique
        for node in range(2, len(bdd._level)):
            low, high = bdd._low[node], bdd._high[node]
            level = bdd._level[node]
            # Nodes are appended in construction order, so children always
            # precede parents; anything else is a corrupt table.
            if not (0 <= low < node and 0 <= high < node) or low == high:
                raise ValueError(f"corrupt node table at node {node}")
            if not 0 <= level < num_vars:
                raise ValueError(f"corrupt level at node {node}")
            unique[(level, low, high)] = node
        return bdd

    # ------------------------------------------------------------------
    # the ite primitive and derived connectives
    # ------------------------------------------------------------------

    def _evict_half(self, cache: Dict) -> None:
        """Drop the oldest half of an operation cache (insertion order).

        Amortized O(1) per insert; losing memo entries only costs
        recomputation.  The evicted count feeds the obs registry.
        """
        drop = len(cache) // 2
        for key in list(itertools.islice(iter(cache), drop)):
            del cache[key]
        self.cache_evictions += drop

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the function ``(f AND g) OR (NOT f AND h)``.

        Iterative worklist form: an explicit frame stack replaces the call
        stack (no recursion-limit ceiling on deep BDDs, no per-call frame
        overhead) and a value stack carries cofactor results up to their
        ``_mk`` combine step.  The memo is bounded at ``op_cache_max``.
        """
        # terminal shortcuts (kept out of the loop for the hot trivial calls)
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        levels = self._level
        lows = self._low
        highs = self._high
        cache = self._ite_cache
        results: List[int] = []
        stack: List[Tuple] = [(_EXPAND, f, g, h)]
        while stack:
            frame = stack.pop()
            if frame[0] == _EXPAND:
                _, f, g, h = frame
                if f == TRUE:
                    results.append(g)
                    continue
                if f == FALSE:
                    results.append(h)
                    continue
                if g == h:
                    results.append(g)
                    continue
                if g == TRUE and h == FALSE:
                    results.append(f)
                    continue
                key = (f, g, h)
                cached = cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    results.append(cached)
                    continue
                self.cache_misses += 1
                level = min(levels[f], levels[g], levels[h])
                f0, f1 = (lows[f], highs[f]) if levels[f] == level else (f, f)
                g0, g1 = (lows[g], highs[g]) if levels[g] == level else (g, g)
                h0, h1 = (lows[h], highs[h]) if levels[h] == level else (h, h)
                stack.append((_COMBINE, key, level))
                stack.append((_EXPAND, f1, g1, h1))
                stack.append((_EXPAND, f0, g0, h0))
            else:
                _, key, level = frame
                hi = results.pop()
                lo = results.pop()
                node = self._mk(level, lo, hi)
                if len(cache) >= self.op_cache_max:
                    self._evict_half(cache)
                cache[key] = node
                results.append(node)
        return results[-1]

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if self._level[node] == level:
            return self._low[node], self._high[node]
        return node, node

    def not_(self, f: int) -> int:
        """Complement of ``f`` (iterative, memoized both directions)."""
        if f == FALSE:
            return TRUE
        if f == TRUE:
            return FALSE
        cache = self._not_cache
        cached = cache.get(f)
        if cached is not None:
            self.cache_hits += 1
            return cached
        levels = self._level
        lows = self._low
        highs = self._high
        results: List[int] = []
        stack: List[Tuple[int, int]] = [(_EXPAND, f)]
        while stack:
            tag, u = stack.pop()
            if tag == _EXPAND:
                if u == FALSE:
                    results.append(TRUE)
                    continue
                if u == TRUE:
                    results.append(FALSE)
                    continue
                cached = cache.get(u)
                if cached is not None:
                    self.cache_hits += 1
                    results.append(cached)
                    continue
                self.cache_misses += 1
                stack.append((_COMBINE, u))
                stack.append((_EXPAND, highs[u]))
                stack.append((_EXPAND, lows[u]))
            else:
                hi = results.pop()
                lo = results.pop()
                node = self._mk(levels[u], lo, hi)
                if len(cache) >= self.op_cache_max:
                    self._evict_half(cache)
                cache[u] = node
                cache[node] = u
                results.append(node)
        return results[-1]

    def and_(self, f: int, g: int) -> int:
        """Conjunction (header-set intersection)."""
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == g:
            return f
        # Commutative apply memo over the shared ite cache: catches the
        # and_(g, f) flips the (f, g, FALSE) ite key cannot.
        key = (f, g) if f < g else (g, f)
        memo = self._and_memo
        cached = memo.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        result = self.ite(f, g, FALSE)
        if len(memo) >= self.op_cache_max:
            self._evict_half(memo)
        memo[key] = result
        return result

    def or_(self, f: int, g: int) -> int:
        """Disjunction (header-set union)."""
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE or g == TRUE:
            return TRUE
        if f == g:
            return f
        key = (f, g) if f < g else (g, f)
        memo = self._or_memo
        cached = memo.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        result = self.ite(f, TRUE, g)
        if len(memo) >= self.op_cache_max:
            self._evict_half(memo)
        memo[key] = result
        return result

    def xor(self, f: int, g: int) -> int:
        """Exclusive or (symmetric difference of header sets)."""
        return self.ite(f, self.not_(g), g)

    def diff(self, f: int, g: int) -> int:
        """Set difference ``f AND NOT g``."""
        return self.ite(f, self.not_(g), FALSE)

    def implies(self, f: int, g: int) -> bool:
        """True iff every satisfying assignment of ``f`` also satisfies ``g``."""
        return self.diff(f, g) == FALSE

    def equiv(self, f: int, g: int) -> bool:
        """Semantic equality, which by canonicity is id equality."""
        return f == g

    def and_many(self, terms: Iterable[int]) -> int:
        """Conjunction of an iterable of functions (TRUE for empty input).

        Balanced-tree reduction: pairwise rounds keep intermediate results
        small (a linear fold drags one ever-growing accumulant through every
        step), turning n-way intersections from O(n * |acc|) into the
        log-depth product profile.
        """
        items = [t for t in terms if t != TRUE]
        if not items:
            return TRUE
        if FALSE in items:
            return FALSE
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                r = self.and_(items[i], items[i + 1])
                if r == FALSE:
                    return FALSE
                nxt.append(r)
            if len(items) & 1:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def or_many(self, terms: Iterable[int]) -> int:
        """Disjunction of an iterable of functions (FALSE for empty input).

        Balanced-tree reduction; see :meth:`and_many`.
        """
        items = [t for t in terms if t != FALSE]
        if not items:
            return FALSE
        if TRUE in items:
            return TRUE
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                r = self.or_(items[i], items[i + 1])
                if r == TRUE:
                    return TRUE
                nxt.append(r)
            if len(items) & 1:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    # ------------------------------------------------------------------
    # cube construction (the workhorse for match predicates)
    # ------------------------------------------------------------------

    def cube(self, literals: Sequence[Tuple[int, bool]]) -> int:
        """Conjunction of literals given as ``(level, polarity)`` pairs.

        Builds the cube bottom-up in a single pass, which is far cheaper than
        repeated ``and_`` calls: a 32-bit exact-match predicate costs exactly
        32 node allocations.
        """
        node = TRUE
        for level, positive in sorted(literals, key=lambda lp: lp[0], reverse=True):
            if positive:
                node = self._mk(level, FALSE, node)
            else:
                node = self._mk(level, node, FALSE)
        return node

    # ------------------------------------------------------------------
    # restriction and quantification
    # ------------------------------------------------------------------

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Substitute constants for variables: ``f|_{x_i = b_i}``."""
        if not assignment:
            return f
        cache: Dict[int, int] = {}

        def walk(u: int) -> int:
            if u <= TRUE:
                return u
            hit = cache.get(u)
            if hit is not None:
                return hit
            level = self._level[u]
            if level in assignment:
                result = walk(self._high[u] if assignment[level] else self._low[u])
            else:
                result = self._mk(level, walk(self._low[u]), walk(self._high[u]))
            cache[u] = result
            return result

        return walk(f)

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existential quantification over the given variable levels."""
        levelset = frozenset(levels)
        if not levelset:
            return f
        return self._quantify(f, levelset, conjunctive=False)

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universal quantification over the given variable levels."""
        levelset = frozenset(levels)
        if not levelset:
            return f
        return self._quantify(f, levelset, conjunctive=True)

    def _quantify(self, f: int, levelset: frozenset, conjunctive: bool) -> int:
        key = (f, int(conjunctive), levelset)
        cached = self._quant_cache.get(key)
        if cached is not None:
            return cached
        if f <= TRUE:
            return f
        level = self._level[f]
        lo = self._quantify(self._low[f], levelset, conjunctive)
        hi = self._quantify(self._high[f], levelset, conjunctive)
        if level in levelset:
            result = self.and_(lo, hi) if conjunctive else self.or_(lo, hi)
        else:
            result = self._mk(level, lo, hi)
        self._quant_cache[key] = result
        return result

    def support(self, f: int) -> List[int]:
        """Sorted list of variable levels that ``f`` actually depends on."""
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            levels.add(self._level[u])
            stack.append(self._low[u])
            stack.append(self._high[u])
        return sorted(levels)

    # ------------------------------------------------------------------
    # model counting and enumeration
    # ------------------------------------------------------------------

    def count(self, f: int, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables.

        ``num_vars`` defaults to the manager width; pass a smaller value only
        if you know ``f``'s support fits inside it.
        """
        width = self.num_vars if num_vars is None else num_vars

        def effective_level(u: int) -> int:
            return width if u <= TRUE else self._level[u]

        def solutions(u: int) -> int:
            """Satisfying assignments over levels [level(u), width)."""
            if u == FALSE:
                return 0
            if u == TRUE:
                return 1
            key = (u, width)
            cached = self._count_cache.get(key)
            if cached is None:
                level = self._level[u]
                lo, hi = self._low[u], self._high[u]
                cached = (solutions(lo) << (effective_level(lo) - level - 1)) + (
                    solutions(hi) << (effective_level(hi) - level - 1)
                )
                self._count_cache[key] = cached
            return cached

        return solutions(f) << effective_level(f)

    def cubes(self, f: int) -> Iterator[Dict[int, bool]]:
        """Yield satisfying *cubes* as partial assignments ``level -> bool``.

        Unassigned levels in a yielded dict are don't-cares.  The cubes are
        disjoint and their union is exactly the satisfying set of ``f``.
        """
        path: Dict[int, bool] = {}

        def walk(u: int) -> Iterator[Dict[int, bool]]:
            if u == FALSE:
                return
            if u == TRUE:
                yield dict(path)
                return
            level = self._level[u]
            path[level] = False
            yield from walk(self._low[u])
            path[level] = True
            yield from walk(self._high[u])
            del path[level]

        yield from walk(f)

    def pick(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying cube of ``f``, or ``None`` if unsatisfiable."""
        for cube in self.cubes(f):
            return cube
        return None

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a *total* assignment of its support."""
        u = f
        while u > TRUE:
            level = self._level[u]
            try:
                u = self._high[u] if assignment[level] else self._low[u]
            except KeyError as exc:
                raise ValueError(f"assignment missing variable level {level}") from exc
        return u == TRUE

    # ------------------------------------------------------------------
    # flat compilation (the verification fast path)
    # ------------------------------------------------------------------

    def compile_flat(self, f: int) -> FlatBDD:
        """Compile ``f`` into a :class:`FlatBDD` for fast repeated evaluation.

        The returned matcher evaluates headers packed into a single integer
        with variable level 0 as the most significant bit: the bit for level
        ``L`` is ``(value >> (num_vars - 1 - L)) & 1`` (see
        :meth:`repro.bdd.headerspace.HeaderSpace.header_value`).
        """
        if f == FALSE:
            return FlatBDD(f, _FLAT_FALSE, (), (), ())
        if f == TRUE:
            return FlatBDD(f, _FLAT_TRUE, (), (), ())
        index: Dict[int, int] = {}
        order: List[int] = []
        stack = [f]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in index:
                continue
            index[u] = len(order)
            order.append(u)
            stack.append(self._low[u])
            stack.append(self._high[u])
        top = self.num_vars - 1

        def child(c: int) -> int:
            if c == FALSE:
                return _FLAT_FALSE
            if c == TRUE:
                return _FLAT_TRUE
            return index[c]

        shifts = [top - self._level[u] for u in order]
        low = [child(self._low[u]) for u in order]
        high = [child(self._high[u]) for u in order]
        return FlatBDD(f, 0, shifts, low, high)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop operation caches (the unique table is kept).

        Long-running servers can call this between workloads to bound memory;
        node ids stay valid.  The ``size()`` memo is kept: node structure is
        immutable, so it can never go stale.
        """
        self._ite_cache.clear()
        self._not_cache.clear()
        self._and_memo.clear()
        self._or_memo.clear()
        self._quant_cache.clear()
        self._count_cache.clear()

    def new_generation(self) -> int:
        """Start a new build generation: retire the apply memos, keep nodes.

        Apply memos (ite/not/and/or) survive across calls *within* one
        generation — a full table build or one coalesced update flush — so
        repeated sub-expressions hit.  Call this at generation boundaries to
        return the memory without touching the unique table.
        """
        self.clear_caches()
        self.generation += 1
        return self.generation

    def cache_counters(self) -> Dict[str, int]:
        """Cumulative operation-cache hit/miss/eviction counters."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
        }

    def stats(self) -> Dict[str, int]:
        """Allocation and cache-size counters, for capacity benchmarks."""
        return {
            "nodes": len(self._level),
            "ite_cache": len(self._ite_cache),
            "not_cache": len(self._not_cache),
            "and_memo": len(self._and_memo),
            "or_memo": len(self._or_memo),
            "quant_cache": len(self._quant_cache),
            "size_cache": len(self._size_cache),
            "op_cache_max": self.op_cache_max,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "generation": self.generation,
        }

    def to_dot(
        self,
        node: int,
        var_names: Optional[Dict[int, str]] = None,
        title: str = "bdd",
    ) -> str:
        """Graphviz DOT rendering of the BDD rooted at ``node``.

        Dashed edges are low (variable = 0) branches, solid edges high.
        ``var_names`` maps levels to labels (e.g. header field bit names).
        """
        var_names = var_names or {}
        lines = [
            f'digraph "{title}" {{',
            "  rankdir=TB;",
            '  node [shape=circle];',
            '  f [label="0", shape=box];' if node != TRUE else "",
            '  t [label="1", shape=box];' if node != FALSE else "",
        ]
        seen = set()

        def name(u: int) -> str:
            if u == FALSE:
                return "f"
            if u == TRUE:
                return "t"
            return f"n{u}"

        stack = [node]
        while stack:
            u = stack.pop()
            if u <= TRUE or u in seen:
                continue
            seen.add(u)
            level = self._level[u]
            label = var_names.get(level, f"x{level}")
            lines.append(f'  n{u} [label="{label}"];')
            lines.append(f"  n{u} -> {name(self._low[u])} [style=dashed];")
            lines.append(f"  n{u} -> {name(self._high[u])};")
            stack.append(self._low[u])
            stack.append(self._high[u])
        if node == FALSE:
            lines.append('  f [label="0", shape=box];')
        if node == TRUE:
            lines.append('  t [label="1", shape=box];')
        lines.append("}")
        return "\n".join(line for line in lines if line)
