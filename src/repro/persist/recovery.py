"""Crash recovery: snapshot + WAL suffix -> a resumable server state.

:class:`PersistentState` owns one state directory holding the write-ahead
log segments, the snapshot set and a ``meta.json`` naming the topology the
state belongs to.  Boot order:

1. load the newest snapshot that validates (none -> empty base),
2. restore the BDD manager *with its node ids intact*, the LPM provider
   (by re-adding the recorded rules — hash-consing reproduces identical
   predicate ids), the path table and the reachability index,
3. replay every control record after the snapshot's WAL position through
   the incremental updater (Section 4.4),
4. on a first boot with an empty log, *bootstrap*: extract the pure
   destination-prefix rules from the topology's flow tables, append them
   to the WAL as control records, let step 3 apply them, and write an
   initial snapshot so the next cold start skips Algorithm 2.

Recovery invariants (proved by the kill-loop chaos test):

* a torn or corrupt WAL tail is truncated, never fatal (the WAL's job);
* a crash mid-snapshot leaves a stray temp file, never a half-snapshot
  (atomic rename) — recovery falls back to the previous snapshot + a
  longer suffix;
* every applied control record has a WAL sequence number <= the position
  a later snapshot claims to cover, because control events are logged
  *before* they are applied and snapshots are taken on the same thread.

Durable mode covers the paper's incremental workload: destination-prefix
forwarding rules (Section 4.4).  Flow tables carrying ACL drops, port
matches or rewrites are rejected at bootstrap with a clear error; inbound
ACL denies added at runtime are likewise refused at snapshot time.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd.engine import BDD
from ..bdd.headerspace import HeaderSpace, format_ipv4
from ..core.bloom import BloomTagScheme
from ..core.incremental import IncrementalPathTable, LpmProvider
from ..core.pathtable import PathTable
from ..core.reports import REPORT_SIZE
from ..netmodel.rules import Forward
from .snapshot import SNAPSHOT_FORMAT, SnapshotStore
from .wal import RT_CONTROL, RT_MALFORMED, RT_REPORT, ControlEvent, WriteAheadLog

__all__ = [
    "RecoveryError",
    "BootResult",
    "PersistentState",
    "lpm_rules_from_topology",
    "capture_state",
    "restore_state",
    "apply_control_event",
    "stage_control_event",
]

_META_NAME = "meta.json"

#: Boot-time WAL suffix replay flushes coalesced batches at this size: big
#: enough to amortise recompute across a churn burst, small enough that a
#: replay abort (corrupt record) loses little staged work.
_REPLAY_FLUSH_EVERY = 512


class RecoveryError(RuntimeError):
    """State that cannot be recovered or captured safely."""


@dataclass
class BootResult:
    """Everything a server adopts after :meth:`PersistentState.boot`."""

    hs: HeaderSpace
    updater: IncrementalPathTable
    state_version: int
    base_seq: int  # WAL position the snapshot covered (0 = scratch)
    replayed_controls: int
    source: str  # "snapshot" | "wal" | "bootstrap" | "empty"

    @property
    def table(self) -> PathTable:
        return self.updater.table


def lpm_rules_from_topology(topo) -> List[Tuple[str, str, int]]:
    """Extract the pure destination-prefix forwarding rules per switch.

    Raises :class:`RecoveryError` on anything the incremental machinery
    cannot replay: non-Forward actions, matches beyond a destination
    prefix, multi-table pipelines, duplicate prefixes.
    """
    rules: List[Tuple[str, str, int]] = []
    for switch_id in sorted(topo.switches):
        table = topo.switches[switch_id].flow_table
        table_ids = table.table_ids()
        if table_ids and table_ids != [0]:
            raise RecoveryError(
                f"{switch_id}: multi-table pipeline {table_ids} is not "
                f"supported in durable mode (LPM rules only)"
            )
        seen: Dict[Tuple[int, int], int] = {}
        for rule in table.sorted_rules():
            match = rule.match
            if (
                match.dst_prefix is None
                or match.src_prefix is not None
                or match.proto is not None
                or match.src_port_range is not None
                or match.dst_port_range is not None
                or match.in_port is not None
            ):
                raise RecoveryError(
                    f"{switch_id} rule {rule.rule_id}: durable mode only "
                    f"supports pure destination-prefix matches, got {match}"
                )
            if not isinstance(rule.action, Forward):
                raise RecoveryError(
                    f"{switch_id} rule {rule.rule_id}: durable mode only "
                    f"supports Forward actions, got {rule.action!r}"
                )
            value, plen = match.dst_prefix
            if plen == 0:
                raise RecoveryError(
                    f"{switch_id} rule {rule.rule_id}: the zero-length prefix "
                    f"is reserved for the virtual drop rule"
                )
            if (value, plen) in seen:
                raise RecoveryError(
                    f"{switch_id}: duplicate prefix for rule {rule.rule_id} "
                    f"(LPM allows one rule per prefix)"
                )
            seen[(value, plen)] = rule.rule_id
            rules.append((switch_id, f"{format_ipv4(value)}/{plen}", rule.action.port))
    return rules


def capture_state(topo, hs, updater, state_version: int, wal_seq: int) -> dict:
    """The snapshot payload: node table + path table + reach index + rules."""
    provider = updater.provider
    if not isinstance(provider, LpmProvider):
        raise RecoveryError(
            f"durable state requires an LpmProvider, got {type(provider).__name__}"
        )
    if provider.has_inbound_denies:
        raise RecoveryError("inbound ACL denies are not persisted; remove them first")
    table = updater.table
    return {
        "format": SNAPSHOT_FORMAT,
        "topo_name": topo.name,
        "wal_seq": wal_seq,
        "state_version": state_version,
        "num_vars": hs.layout.total_bits,
        "nodes": hs.bdd.export_nodes(),
        "table_version": table.version,
        "pairs": [
            (inport, outport, list(entries))
            for (inport, outport), entries in table._entries.items()
        ],
        "reach_index": {
            switch: list(records)
            for switch, records in updater.builder.reach_index.items()
        },
        "rules": provider.iter_rules(),
    }


def restore_state(
    payload: dict,
    topo,
    scheme: Optional[BloomTagScheme] = None,
    max_path_length: Optional[int] = None,
) -> Tuple[HeaderSpace, IncrementalPathTable]:
    """Rebuild (hs, updater) from a snapshot payload — no Algorithm 2 run."""
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise RecoveryError(f"unsupported snapshot format {payload.get('format')}")
    if payload.get("topo_name") != topo.name:
        raise RecoveryError(
            f"snapshot belongs to topology {payload.get('topo_name')!r}, "
            f"booting {topo.name!r}"
        )
    hs = HeaderSpace()
    if payload["num_vars"] != hs.layout.total_bits:
        raise RecoveryError(
            f"snapshot uses {payload['num_vars']} header bits, this build "
            f"uses {hs.layout.total_bits}"
        )
    try:
        hs.bdd = BDD.from_nodes(payload["num_vars"], *payload["nodes"])
    except ValueError as exc:
        raise RecoveryError(f"corrupt BDD node table: {exc}") from exc
    provider = LpmProvider(topo, hs)
    try:
        for switch, prefix, port in payload["rules"]:
            provider.add_rule(switch, prefix, port)
    except (KeyError, ValueError) as exc:
        raise RecoveryError(f"cannot re-install snapshot rules: {exc}") from exc
    table = PathTable()
    for inport, outport, entries in payload["pairs"]:
        for entry in entries:
            table.add(inport, outport, entry)
    table.version = payload["table_version"]
    updater = IncrementalPathTable.restore(
        topo,
        hs,
        table=table,
        reach_index=payload["reach_index"],
        scheme=scheme,
        provider=provider,
        max_path_length=max_path_length,
    )
    return hs, updater


def apply_control_event(updater: IncrementalPathTable, event: ControlEvent) -> None:
    """Apply one logged control record through the incremental updater."""
    try:
        if event.kind == "add":
            updater.add_rule(event.switch, event.prefix, event.out_port)
        elif event.kind == "delete":
            updater.delete_rule(event.switch, event.prefix)
        else:  # pragma: no cover - decode() only emits the two kinds
            raise RecoveryError(f"unknown control kind {event.kind!r}")
    except (KeyError, ValueError) as exc:
        raise RecoveryError(
            f"cannot apply logged control event {event}: {exc}"
        ) from exc


def stage_control_event(updater: IncrementalPathTable, event: ControlEvent) -> None:
    """Stage one logged control record for a coalesced flush.

    The prefix-tree mutation (and its validation — bad events still fail
    here, at the same point :func:`apply_control_event` would) happens
    immediately; the path-table recompute is deferred to the caller's
    ``updater.flush_updates()``.  Boot-time WAL suffix replay uses this to
    recompute each dirty region once per batch instead of once per record.
    """
    try:
        if event.kind == "add":
            updater.stage_add_rule(event.switch, event.prefix, event.out_port)
        elif event.kind == "delete":
            updater.stage_delete_rule(event.switch, event.prefix)
        else:  # pragma: no cover - decode() only emits the two kinds
            raise RecoveryError(f"unknown control kind {event.kind!r}")
    except (KeyError, ValueError) as exc:
        raise RecoveryError(
            f"cannot apply logged control event {event}: {exc}"
        ) from exc


class PersistentState:
    """One state directory: WAL + snapshots + meta, and the boot logic."""

    def __init__(
        self,
        state_dir: str,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        segment_max_bytes: int = 4 << 20,
        retain: int = 3,
        obs=None,
        read_only: bool = False,
    ) -> None:
        self.state_dir = state_dir
        self.read_only = read_only
        if not read_only:
            os.makedirs(state_dir, exist_ok=True)
        self.wal = WriteAheadLog(
            state_dir,
            fsync=fsync,
            fsync_interval_s=fsync_interval_s,
            segment_max_bytes=segment_max_bytes,
            obs=obs,
            read_only=read_only,
        )
        self.snapshots = SnapshotStore(state_dir, retain=retain, obs=obs)
        self.recoveries = 0
        self.replayed_controls = 0
        if obs is not None:
            registry = obs.registry
            registry.counter(
                "veridp_recoveries_total",
                "Boots that recovered state from this directory.",
                callback=lambda: self.recoveries,
            )
            registry.counter(
                "veridp_replayed_control_records_total",
                "Control records replayed through the incremental updater at boot.",
                callback=lambda: self.replayed_controls,
            )

    # -- meta ---------------------------------------------------------------

    def _meta_path(self) -> str:
        return os.path.join(self.state_dir, _META_NAME)

    def check_meta(self, topo) -> None:
        """Bind the directory to one topology; refuse a mismatched boot."""
        path = self._meta_path()
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            if meta.get("topo") != topo.name:
                raise RecoveryError(
                    f"state dir {self.state_dir} belongs to topology "
                    f"{meta.get('topo')!r}, booting {topo.name!r}"
                )
        elif not self.read_only:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump({"format": 1, "topo": topo.name}, fh)

    def read_meta(self) -> Optional[dict]:
        path = self._meta_path()
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    # -- boot ----------------------------------------------------------------

    def boot(
        self,
        topo,
        scheme: Optional[BloomTagScheme] = None,
        max_path_length: Optional[int] = None,
        build_workers: Optional[int] = None,
    ) -> BootResult:
        """Snapshot + suffix replay (+ first-boot bootstrap); see module doc."""
        self.check_meta(topo)
        snap = self.snapshots.load_latest()
        if snap is not None:
            hs, updater = restore_state(
                snap, topo, scheme=scheme, max_path_length=max_path_length
            )
            state_version = snap["state_version"]
            base_seq = snap["wal_seq"]
            source = "snapshot"
        else:
            hs = HeaderSpace()
            updater = IncrementalPathTable(
                topo,
                hs,
                scheme=scheme,
                max_path_length=max_path_length,
                build_workers=build_workers,
            )
            state_version = 0
            base_seq = 0
            if self.wal.last_seq > 0:
                source = "wal"
            elif not self.read_only:
                source = "bootstrap"
                for switch, prefix, port in lpm_rules_from_topology(topo):
                    self.wal.append_control(
                        ControlEvent("add", switch, prefix, port)
                    )
            else:
                source = "empty"

        first = self.wal.first_seq()
        if first is not None and first > base_seq + 1:
            raise RecoveryError(
                f"WAL starts at seq {first} but the newest snapshot covers "
                f"only seq {base_seq}; segments were pruned past every snapshot"
            )

        # Coalesced suffix replay: stage every control record (prefix-tree
        # mutations and their validation happen per record, exactly as in
        # the one-by-one path), flush in batches so each dirty path-table
        # region is recomputed once per batch rather than once per record.
        # Identical final table — see test_recovery coalescing parity.
        replayed = 0
        staged = 0
        for record in self.wal.records(start_seq=base_seq + 1):
            if record.rtype != RT_CONTROL:
                continue
            stage_control_event(updater, ControlEvent.decode(record.payload))
            state_version += 1
            replayed += 1
            staged += 1
            if staged >= _REPLAY_FLUSH_EVERY:
                updater.flush_updates()
                staged = 0
        if staged:
            updater.flush_updates()
        self.recoveries += 1
        self.replayed_controls += replayed

        result = BootResult(
            hs=hs,
            updater=updater,
            state_version=state_version,
            base_seq=base_seq,
            replayed_controls=replayed,
            source=source,
        )
        if source == "bootstrap" and replayed:
            # Seed an initial snapshot: the next cold start loads it instead
            # of re-running Algorithm 2 over the whole rule set.
            self.snapshot(topo, hs, updater, state_version)
        return result

    # -- logging --------------------------------------------------------------

    def log_control(self, event: ControlEvent) -> int:
        return self.wal.append_control(event)

    def log_report(self, payload: bytes) -> int:
        return self.wal.append_report(payload)

    def log_report_batch(self, payloads) -> int:
        """Batched report logging for high-throughput ingestion paths.

        Writes the whole batch as one RT_REPORT_BATCH record, so the WAL
        header/CRC cost amortises over the batch.
        """
        return self.wal.append_report_batch(payloads)

    def log_report_frame(self, frame: bytes) -> int:
        """Log a contiguous frame of wire reports as one batch record.

        Replay-compatible with :meth:`log_report_batch` — the record body
        is byte-identical — but built without splitting the frame into
        per-report payloads first.
        """
        return self.wal.append_report_frame(frame, REPORT_SIZE)

    def log_malformed(self, payload: bytes) -> int:
        return self.wal.append_malformed(payload)

    # -- snapshots -------------------------------------------------------------

    def snapshot(self, topo, hs, updater, state_version: int) -> str:
        """Checkpoint current state; must run on the control-plane thread."""
        if self.read_only:
            raise RecoveryError("state opened read-only")
        # The snapshot claims coverage up to last_seq: make that prefix
        # durable first, so "snapshot + suffix" never references lost data.
        self.wal.sync()
        payload = capture_state(
            topo, hs, updater, state_version, wal_seq=self.wal.last_seq
        )
        return self.snapshots.save(payload)

    def prune_wal(self) -> int:
        """Drop WAL segments fully covered by the newest valid snapshot.

        Trades replay history for disk: replay can then only reconstruct
        incidents after the snapshot's coverage point.
        """
        snap = self.snapshots.load_latest()
        if snap is None:
            return 0
        return self.wal.prune_segments_before(snap["wal_seq"])

    # -- lifecycle / observability ---------------------------------------------

    def stats(self) -> Dict[str, int]:
        out = dict(self.wal.stats())
        out.update(self.snapshots.stats())
        out["recoveries"] = self.recoveries
        out["replayed_control_records"] = self.replayed_controls
        return out

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "PersistentState":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
