"""Deterministic incident replay from a state directory.

The WAL already interleaves everything a postmortem needs: every applied
control-plane change (RT_CONTROL) and every sampled tag report at the
moment it entered the monitor (RT_REPORT), in one global sequence.
:func:`replay` rebuilds a verification pipeline offline and re-feeds that
stream in order, so every incident the live server raised is reproduced at
the exact WAL position it first occurred — no network, no timing, no
sampling randomness.

Replay base selection:

* if the log still starts at seq 1 (never pruned), replay starts from an
  *empty* path table and lets the logged control records build it — the
  strongest reproduction, independent of any snapshot;
* if the prefix was pruned, replay boots from the **oldest** snapshot that
  covers the missing prefix (most history still replayable ahead of it).

Bisection: ``start_seq``/``stop_seq`` bound which *reports* are verified
(control records before the window are always applied — they are state,
not events), so an operator can binary-search the first bad report:
``repro replay state/ --stop-seq MID`` and check ``first_failure_seq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.bloom import BloomTagScheme
from ..core.localization import PathInferLocalizer
from ..core.reports import PortCodec, ReportDecodeError, unpack_report
from ..core.verifier import Verifier
from .recovery import PersistentState, RecoveryError, apply_control_event, restore_state
from .wal import (
    RT_CONTROL,
    RT_MALFORMED,
    RT_REPORT,
    RT_REPORT_BATCH,
    ControlEvent,
    unpack_report_batch,
)

__all__ = ["ReplayIncident", "ReplayResult", "replay", "incident_key"]


def incident_key(
    report, verdict_name: str
) -> Tuple[str, int, str, int, Tuple, bool, int, str]:
    """Order-free identity of one incident, comparable live vs replayed.

    Built only from primitives (no BDD node ids, no object identity), so a
    key computed inside the live process equals the key computed by an
    offline replay in a different process.
    """
    header = report.header
    return (
        report.inport.switch,
        report.inport.port,
        report.outport.switch,
        report.outport.port,
        (header.src_ip, header.dst_ip, header.proto, header.src_port, header.dst_port),
        report.ttl_expired,
        report.tag,
        verdict_name,
    )


@dataclass
class ReplayIncident:
    """One reproduced inconsistency, pinned to its WAL position."""

    seq: int
    verification: object  # VerificationResult
    localization: Optional[object] = None  # LocalizationResult

    @property
    def key(self):
        return incident_key(
            self.verification.report, self.verification.verdict.name
        )

    def __str__(self) -> str:
        blame = ""
        if self.localization is not None:
            blamed = self.localization.blamed_switches()
            if blamed:
                blame = f" | blamed: {', '.join(blamed)}"
        return f"seq={self.seq} {self.verification}{blame}"


@dataclass
class ReplayResult:
    """What a replay pass saw, and where."""

    source: str  # "wal" (from-scratch) or "snapshot"
    base_seq: int
    replayed_controls: int = 0
    replayed_reports: int = 0
    skipped_reports: int = 0  # outside the [start_seq, stop_seq] window
    malformed_records: int = 0
    decode_errors: int = 0
    incidents: List[ReplayIncident] = field(default_factory=list)

    @property
    def first_failure_seq(self) -> Optional[int]:
        return self.incidents[0].seq if self.incidents else None

    def incident_keys(self) -> List[Tuple]:
        return [incident.key for incident in self.incidents]

    def summary(self) -> str:
        first = self.first_failure_seq
        return (
            f"replayed {self.replayed_reports} reports / "
            f"{self.replayed_controls} control records from {self.source} "
            f"(base seq {self.base_seq}): {len(self.incidents)} incidents"
            + (f", first at seq {first}" if first is not None else "")
        )


def replay(
    state: PersistentState,
    topo,
    scheme: Optional[BloomTagScheme] = None,
    codec: Optional[PortCodec] = None,
    start_seq: int = 1,
    stop_seq: Optional[int] = None,
    localize: bool = True,
    max_path_length: Optional[int] = None,
    fast_path: bool = True,
) -> ReplayResult:
    """Re-verify the logged report stream; see the module docstring.

    ``state`` should be opened ``read_only=True`` when replaying a live
    server's directory.  Raises :class:`RecoveryError` if the WAL prefix
    was pruned and no snapshot covers it.
    """
    state.check_meta(topo)
    scheme = scheme or BloomTagScheme()
    codec = codec or PortCodec(sorted(topo.switches))

    wal = state.wal
    first = wal.first_seq()
    if first is None or first == 1:
        # Complete history: rebuild from nothing, trusting only the log.
        from ..bdd.headerspace import HeaderSpace
        from ..core.incremental import IncrementalPathTable

        hs = HeaderSpace()
        updater = IncrementalPathTable(
            topo, hs, scheme=scheme, max_path_length=max_path_length
        )
        result = ReplayResult(source="wal", base_seq=0)
    else:
        snap = state.snapshots.load_first_covering(first - 1)
        if snap is None:
            raise RecoveryError(
                f"WAL starts at seq {first} and no snapshot covers the "
                f"pruned prefix; cannot establish a replay base"
            )
        hs, updater = restore_state(
            snap, topo, scheme=scheme, max_path_length=max_path_length
        )
        result = ReplayResult(source="snapshot", base_seq=snap["wal_seq"])

    verifier = Verifier(updater.table, hs, fast_path=fast_path)
    localizer = (
        PathInferLocalizer(updater.builder, scheme, topo) if localize else None
    )

    def verify_payload(seq: int, payload: bytes) -> None:
        try:
            report = unpack_report(payload, codec)
        except ReportDecodeError:
            result.decode_errors += 1
            return
        verification = verifier.verify(report)
        result.replayed_reports += 1
        if not verification.passed:
            localization = None
            if localizer is not None:
                try:
                    localization = localizer.localize(report)
                except Exception:
                    localization = None
            result.incidents.append(
                ReplayIncident(
                    seq=seq,
                    verification=verification,
                    localization=localization,
                )
            )

    for record in wal.records(start_seq=result.base_seq + 1):
        if stop_seq is not None and record.seq > stop_seq:
            break
        if record.rtype == RT_CONTROL:
            apply_control_event(updater, ControlEvent.decode(record.payload))
            result.replayed_controls += 1
        elif record.rtype == RT_REPORT:
            if record.seq < start_seq:
                result.skipped_reports += 1
                continue
            verify_payload(record.seq, record.payload)
        elif record.rtype == RT_REPORT_BATCH:
            # A batched dispatch shares one seq; bisection granularity
            # for daemon-recorded streams is the dispatch batch.
            payloads = unpack_report_batch(record.payload)
            if record.seq < start_seq:
                result.skipped_reports += len(payloads)
                continue
            for payload in payloads:
                verify_payload(record.seq, payload)
        elif record.rtype == RT_MALFORMED:
            result.malformed_records += 1
    return result
