"""Durable state for the VeriDP monitor: WAL, snapshots, recovery, replay.

The paper treats the VeriDP server as an always-on monitor, but a monitor
that forgets its path table (minutes of Algorithm 2 on Stanford-scale
networks) and its evidence (the sampled report stream) on every restart is
not continuous.  This package adds durability with stdlib only:

* :mod:`repro.persist.wal`      — an append-only, CRC-checksummed,
  segment-rotated write-ahead log carrying control-plane rule changes and
  sampled tag reports in one global sequence, with configurable fsync
  policies and torn-tail recovery,
* :mod:`repro.persist.snapshot` — versioned, atomically-renamed path-table
  checkpoints (BDD node table included) with retention,
* :mod:`repro.persist.recovery` — boot = newest valid snapshot + WAL
  suffix replay through the Section 4.4 incremental updater,
* :mod:`repro.persist.replay`   — deterministic offline re-verification of
  the logged report stream (``python -m repro replay <state-dir>``),
  bisectable by WAL sequence number.
"""

from .recovery import (
    BootResult,
    PersistentState,
    RecoveryError,
    apply_control_event,
    capture_state,
    lpm_rules_from_topology,
    restore_state,
    stage_control_event,
)
from .replay import ReplayIncident, ReplayResult, incident_key, replay
from .snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    SnapshotStore,
    bdd_fingerprint,
    read_snapshot,
    table_fingerprint,
    write_snapshot,
)
from .wal import (
    RT_CONTROL,
    RT_MALFORMED,
    RT_REPORT,
    ControlEvent,
    WalError,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "WalError",
    "ControlEvent",
    "RT_CONTROL",
    "RT_REPORT",
    "RT_MALFORMED",
    "SnapshotStore",
    "SnapshotError",
    "SNAPSHOT_FORMAT",
    "write_snapshot",
    "read_snapshot",
    "bdd_fingerprint",
    "table_fingerprint",
    "PersistentState",
    "stage_control_event",
    "BootResult",
    "RecoveryError",
    "capture_state",
    "restore_state",
    "apply_control_event",
    "lpm_rules_from_topology",
    "ReplayResult",
    "ReplayIncident",
    "replay",
    "incident_key",
]
