"""Versioned, checksummed path-table snapshots.

A snapshot is one self-contained checkpoint of the server's durable state:
the BDD engine's node table (so every header-set node id in the path table
stays valid), the :class:`~repro.core.pathtable.PathTable` entries with
their compiled FlatBDD matchers, the builder's reachability index (what
the incremental updater's extend phase traverses), the LPM rule set that
reproduces the provider's predicates, and the WAL sequence number the
checkpoint covers — recovery is "newest valid snapshot + WAL suffix".

File format: 8-byte magic, format version (u16), CRC32 (u32) and length
(u64) of the body, then the pickled state dict.  Writes go to a temp file
in the same directory, are flushed + fsynced, then atomically renamed into
place (``os.replace``), so a crash mid-snapshot leaves either the previous
snapshot set or a stray temp file — never a half-written checkpoint that
:meth:`SnapshotStore.load_latest` could mistake for valid.  Corrupt or
unreadable snapshots are skipped (and counted), falling back to the next
newest; the retention policy keeps the last ``retain``.
"""

from __future__ import annotations

import glob
import os
import pickle
import struct
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAP_MAGIC",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "SnapshotStore",
    "bdd_fingerprint",
    "table_fingerprint",
]

SNAP_MAGIC = b"VDPSNAP1"
SNAPSHOT_FORMAT = 1
_SNAP_HEADER = struct.Struct(">HIQ")  # format, crc32, body length
_SNAP_GLOB = "snap-*.snap"


class SnapshotError(Exception):
    """A snapshot file that cannot be trusted (corrupt, torn, foreign)."""


def write_snapshot(path: str, payload: dict) -> int:
    """Atomically write ``payload`` to ``path``; returns bytes written."""
    import zlib

    body = pickle.dumps(payload, protocol=4)
    blob = SNAP_MAGIC + _SNAP_HEADER.pack(
        SNAPSHOT_FORMAT, zlib.crc32(body), len(body)
    ) + body
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    directory = os.path.dirname(path) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return len(blob)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    return len(blob)


def read_snapshot(path: str) -> dict:
    """Read and validate one snapshot file; raises :class:`SnapshotError`."""
    import zlib

    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    prefix = len(SNAP_MAGIC) + _SNAP_HEADER.size
    if len(blob) < prefix or blob[: len(SNAP_MAGIC)] != SNAP_MAGIC:
        raise SnapshotError(f"{path}: bad magic or truncated header")
    fmt, crc, length = _SNAP_HEADER.unpack_from(blob, len(SNAP_MAGIC))
    if fmt != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path}: unsupported snapshot format {fmt}")
    body = blob[prefix:]
    if len(body) != length or zlib.crc32(body) != crc:
        raise SnapshotError(f"{path}: checksum/length mismatch")
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise SnapshotError(f"{path}: undecodable body: {exc}") from exc
    if not isinstance(payload, dict) or "wal_seq" not in payload:
        raise SnapshotError(f"{path}: not a state snapshot")
    return payload


class SnapshotStore:
    """Retention-managed directory of snapshots, named by WAL coverage."""

    def __init__(self, directory: str, retain: int = 3, obs=None) -> None:
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.directory = directory
        self.retain = retain
        self.snapshots_written = 0
        self.last_snapshot_bytes = 0
        self.load_failures = 0
        self._snapshot_hist = None
        if obs is not None:
            self._register_metrics(obs)

    def path_for(self, wal_seq: int) -> str:
        return os.path.join(self.directory, f"snap-{wal_seq:016d}.snap")

    def paths(self) -> List[str]:
        """Snapshot files, oldest first (name order == WAL coverage order)."""
        return sorted(glob.glob(os.path.join(self.directory, _SNAP_GLOB)))

    def save(self, payload: dict) -> str:
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(payload["wal_seq"])
        start = time.perf_counter()
        size = write_snapshot(path, payload)
        elapsed = time.perf_counter() - start
        self.snapshots_written += 1
        self.last_snapshot_bytes = size
        if self._snapshot_hist is not None:
            self._snapshot_hist.observe(elapsed)
        self.prune()
        return path

    def load_latest(self) -> Optional[dict]:
        """The newest snapshot that validates, skipping damaged ones."""
        for path in reversed(self.paths()):
            try:
                return read_snapshot(path)
            except SnapshotError:
                self.load_failures += 1
        return None

    def load_first_covering(self, seq: int) -> Optional[dict]:
        """The *oldest* valid snapshot whose coverage reaches ``seq``.

        Replay wants the base with the most WAL history still ahead of it:
        the earliest snapshot with ``wal_seq >= seq`` maximises the range of
        report records that can be re-verified against correct state.
        """
        for path in self.paths():
            try:
                payload = read_snapshot(path)
            except SnapshotError:
                self.load_failures += 1
                continue
            if payload["wal_seq"] >= seq:
                return payload
        return None

    def prune(self) -> int:
        """Drop snapshots beyond the newest ``retain`` plus stray temp files."""
        removed = 0
        for stray in glob.glob(os.path.join(self.directory, "*.snap.tmp")):
            os.remove(stray)
            removed += 1
        paths = self.paths()
        for path in paths[: -self.retain] if len(paths) > self.retain else []:
            os.remove(path)
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "snapshots_written": self.snapshots_written,
            "snapshot_bytes": self.last_snapshot_bytes,
            "snapshot_load_failures": self.load_failures,
            "snapshots_on_disk": len(self.paths()),
        }

    def _register_metrics(self, obs) -> None:
        from ..obs import IO_BUCKETS

        registry = obs.registry
        registry.counter(
            "veridp_snapshots_total",
            "Snapshots written.",
            callback=lambda: self.snapshots_written,
        )
        registry.counter(
            "veridp_snapshot_load_failures_total",
            "Snapshot files skipped as corrupt/unreadable during load.",
            callback=lambda: self.load_failures,
        )
        registry.gauge(
            "veridp_snapshot_bytes",
            "Size of the most recently written snapshot.",
            callback=lambda: self.last_snapshot_bytes,
        )
        self._snapshot_hist = registry.histogram(
            "veridp_snapshot_seconds",
            "Wall-clock seconds per snapshot write (serialize + fsync + rename).",
            buckets=IO_BUCKETS,
        ).labels()


def bdd_fingerprint(bdd, node: int) -> Tuple:
    """Manager-independent structural fingerprint of one BDD node.

    Two nodes (possibly in different managers) denote the same boolean
    function iff their fingerprints are equal — ROBDDs are canonical, so
    structural equality is semantic equality.  Used by tests to compare a
    recovered table against a freshly rebuilt one across HeaderSpaces.
    """
    from ..bdd.engine import FALSE, TRUE

    memo: Dict[int, object] = {FALSE: "F", TRUE: "T"}

    def walk(u: int):
        got = memo.get(u)
        if got is None:
            got = (bdd.level_of(u), walk(bdd.low_of(u)), walk(bdd.high_of(u)))
            memo[u] = got
        return got

    return walk(node)


def table_fingerprint(table, bdd) -> str:
    """Manager-independent digest of a whole path table.

    Two tables digest equal iff every ``(inport, outport)`` pair holds the
    same set of paths with semantically equal header-set and exit-header-set
    BDDs — regardless of node ids, entry order, or which manager built
    them.  This is the parity oracle for the parallel/coalesced build
    paths: serial build, parallel build, per-event updates and coalesced
    flushes must all land on the same fingerprint.
    """
    import hashlib

    digest = hashlib.sha1()
    for inport, outport in sorted(table.pairs(), key=repr):
        entries = sorted(
            (
                entry.hops,
                entry.tag,
                bdd_fingerprint(bdd, entry.headers),
                bdd_fingerprint(bdd, entry.exit_header_set()),
            )
            for entry in table.lookup(inport, outport)
        )
        digest.update(repr((inport, outport, entries)).encode())
    return digest.hexdigest()
