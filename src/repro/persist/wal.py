"""Write-ahead log for the VeriDP monitoring plane.

The server's durable source of truth is an append-only, CRC-checksummed
record log holding the two event streams that define its state and its
history (Section 4.4's incremental updates plus the sampled tag reports of
Algorithm 3):

* **control records** (:data:`RT_CONTROL`) — rule add/delete events in the
  exact form :class:`repro.core.incremental.IncrementalPathTable` consumes,
* **report records** (:data:`RT_REPORT`) — raw wire payloads in the
  :mod:`repro.core.reports` encoding, logged at admission,
* **malformed records** (:data:`RT_MALFORMED`) — payloads the transport
  pre-screen rejected; kept for forensics, never fed to verification.

On-disk layout: segments named ``wal-<index>.log``, each starting with an
8-byte magic.  A record is a 13-byte header (``>IBQ``: payload length,
record type, global sequence number) + payload + CRC32 over header and
payload.  Sequence numbers are global, contiguous and strictly increasing
across segments, so snapshot coverage ("everything up to seq N") and
suffix replay are well defined.

Crash safety: opening the log scans every segment and *truncates* the
first torn or corrupt record — plus everything after it — recovering the
longest valid prefix.  Recovery never raises on a damaged tail; damage in
the middle of history is indistinguishable from a tail by construction
(appends are sequential), so the same rule applies.  Durability is
controlled by the fsync policy: ``always`` (fsync per record, on the
append path), ``interval`` (group commit — a background flusher thread
fsyncs every ``fsync_interval_s`` seconds, plus on rotation and close,
so appends never block on the disk), ``never`` (leave it to the OS).
"""

from __future__ import annotations

import glob
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "RT_CONTROL",
    "RT_REPORT",
    "RT_MALFORMED",
    "RT_REPORT_BATCH",
    "WAL_MAGIC",
    "WalError",
    "WalRecord",
    "ControlEvent",
    "WriteAheadLog",
    "unpack_report_batch",
]

#: Record type tags (one byte on the wire).
RT_CONTROL = 1
RT_REPORT = 2
RT_MALFORMED = 3
#: Many report payloads in ONE record (the daemon's group-commit unit):
#: the header/CRC cost amortises over the whole dispatch batch.
RT_REPORT_BATCH = 4
_RECORD_TYPES = frozenset((RT_CONTROL, RT_REPORT, RT_MALFORMED, RT_REPORT_BATCH))

_STREAM_NAMES = {
    RT_CONTROL: "control",
    RT_REPORT: "report",
    RT_MALFORMED: "malformed",
    RT_REPORT_BATCH: "report_batch",
}

WAL_MAGIC = b"VDPWAL01"
_HEADER = struct.Struct(">IBQ")  # payload_len, rtype, seq
_CRC = struct.Struct(">I")
_RECORD_OVERHEAD = _HEADER.size + _CRC.size
#: Sanity bound on a single payload; anything larger is treated as corruption.
_MAX_PAYLOAD = 1 << 24

_FSYNC_POLICIES = ("always", "interval", "never")
_SEGMENT_GLOB = "wal-*.log"
_WRITE_BUFFER = 1 << 16

#: Length prefix of each payload inside an RT_REPORT_BATCH record body.
_BATCH_LEN = struct.Struct(">H")


def unpack_report_batch(payload: bytes) -> List[bytes]:
    """Split an RT_REPORT_BATCH record body back into report payloads."""
    out: List[bytes] = []
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + _BATCH_LEN.size > size:
            raise WalError("truncated report-batch record body")
        (plen,) = _BATCH_LEN.unpack_from(payload, offset)
        offset += _BATCH_LEN.size
        if offset + plen > size:
            raise WalError("truncated report-batch record body")
        out.append(payload[offset : offset + plen])
        offset += plen
    return out


class WalError(Exception):
    """Misuse of the log or an undecodable logged payload."""


@dataclass(frozen=True)
class WalRecord:
    """One validated record as read back from the log."""

    seq: int
    rtype: int
    payload: bytes


# Control-event kinds (one byte inside the control payload).
_KIND_ADD = 1
_KIND_DELETE = 2
_KIND_NAMES = {_KIND_ADD: "add", _KIND_DELETE: "delete"}
_KIND_CODES = {name: code for code, name in _KIND_NAMES.items()}


@dataclass(frozen=True)
class ControlEvent:
    """A rule add/delete exactly as the incremental updater consumes it.

    ``prefix`` is the textual destination prefix (``"10.0.1.0/24"``);
    ``out_port`` is ignored for deletes (the tree remembers the port).
    """

    kind: str  # "add" | "delete"
    switch: str
    prefix: str
    out_port: int = 0

    def encode(self) -> bytes:
        code = _KIND_CODES.get(self.kind)
        if code is None:
            raise WalError(f"unknown control-event kind {self.kind!r}")
        sw = self.switch.encode("utf-8")
        pfx = self.prefix.encode("utf-8")
        if len(sw) > 0xFF or len(pfx) > 0xFF:
            raise WalError("switch id / prefix too long for the control encoding")
        return b"".join(
            (
                struct.pack(">BB", code, len(sw)),
                sw,
                struct.pack(">B", len(pfx)),
                pfx,
                struct.pack(">i", self.out_port),
            )
        )

    @classmethod
    def decode(cls, payload: bytes) -> "ControlEvent":
        try:
            code, sw_len = struct.unpack_from(">BB", payload, 0)
            offset = 2
            switch = payload[offset : offset + sw_len].decode("utf-8")
            offset += sw_len
            (pfx_len,) = struct.unpack_from(">B", payload, offset)
            offset += 1
            prefix = payload[offset : offset + pfx_len].decode("utf-8")
            offset += pfx_len
            (out_port,) = struct.unpack_from(">i", payload, offset)
            offset += 4
        except (struct.error, UnicodeDecodeError) as exc:
            raise WalError(f"undecodable control event: {exc}") from exc
        if code not in _KIND_NAMES or offset != len(payload):
            raise WalError(f"malformed control event ({len(payload)} bytes)")
        return cls(_KIND_NAMES[code], switch, prefix, out_port)


def _segment_index(path: str) -> int:
    stem = os.path.basename(path)
    return int(stem[len("wal-") : -len(".log")])


@dataclass
class _Segment:
    path: str
    index: int
    #: Sequence number of the segment's first record (None while empty).
    first_seq: Optional[int]


class WriteAheadLog:
    """Segmented, checksummed, crash-truncating append log.

    Appends are thread-safe; :meth:`records` takes a consistent view of the
    flushed prefix.  ``read_only=True`` opens the log for scanning without
    repairing torn tails on disk (the scan still stops at the first invalid
    record, so readers see the identical valid prefix).
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        segment_max_bytes: int = 4 << 20,
        obs=None,
        read_only: bool = False,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_max_bytes < len(WAL_MAGIC) + _RECORD_OVERHEAD:
            raise ValueError(f"segment_max_bytes {segment_max_bytes} too small")
        self.directory = directory
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self.segment_max_bytes = segment_max_bytes
        self.read_only = read_only
        self._lock = threading.RLock()
        self._fh = None
        self._size = 0
        self._closed = False
        self._last_sync = time.monotonic()
        self._last_seq = 0
        self._segments: List[_Segment] = []

        # Plain-int ledger; exported through zero-cost callback instruments.
        self.records_appended: Dict[int, int] = {t: 0 for t in _RECORD_TYPES}
        #: Individual report payloads carried inside RT_REPORT_BATCH records.
        self.batched_report_payloads = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self.truncated_bytes = 0

        if not read_only:
            os.makedirs(directory, exist_ok=True)
        self._recover()
        if not read_only:
            self._open_active()
        self._fsync_hist = None
        if obs is not None:
            self._register_metrics(obs)

        # Group commit: ``interval`` mode fsyncs from a background thread
        # so the append path never blocks on the disk.  The loss window is
        # unchanged (it was always the fsync interval); only who pays the
        # fsync latency changes.  os.fsync releases the GIL, so appends
        # proceed concurrently with the flush.
        self._flusher_stop = threading.Event()
        self._flusher: Optional[threading.Thread] = None
        if fsync == "interval" and not read_only:
            self._flusher = threading.Thread(
                target=self._flusher_main, name="wal-flusher", daemon=True
            )
            self._flusher.start()

    # -- opening / crash recovery -----------------------------------------

    def _segment_paths(self) -> List[str]:
        return sorted(
            glob.glob(os.path.join(self.directory, _SEGMENT_GLOB)),
            key=_segment_index,
        )

    def _recover(self) -> None:
        """Scan all segments, keep the longest valid prefix, repair on disk."""
        paths = self._segment_paths()
        for pos, path in enumerate(paths):
            size = os.path.getsize(path)
            good, first_seq, last_seq = self._scan_valid_prefix(path, self._last_seq)
            if good == 0:
                # Not even a readable header: the file and everything after
                # it are dropped (the prefix ends at the previous segment).
                self._drop_tail(paths[pos:])
                return
            self._segments.append(_Segment(path, _segment_index(path), first_seq))
            if first_seq is not None:
                self._last_seq = last_seq
            if good < size:
                self.truncated_bytes += size - good
                if not self.read_only:
                    with open(path, "r+b") as fh:
                        fh.truncate(good)
                self._drop_tail(paths[pos + 1 :])
                return

    def _drop_tail(self, paths: List[str]) -> None:
        for path in paths:
            self.truncated_bytes += os.path.getsize(path)
            if not self.read_only:
                os.remove(path)

    def _scan_valid_prefix(
        self, path: str, prev_seq: int
    ) -> Tuple[int, Optional[int], int]:
        """(valid byte prefix, first seq or None, last seq) of one segment."""
        first_seq: Optional[int] = None
        last_seq = prev_seq
        with open(path, "rb") as fh:
            if fh.read(len(WAL_MAGIC)) != WAL_MAGIC:
                return 0, None, prev_seq
            good = len(WAL_MAGIC)
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return good, first_seq, last_seq
                plen, rtype, seq = _HEADER.unpack(header)
                if rtype not in _RECORD_TYPES or plen > _MAX_PAYLOAD:
                    return good, first_seq, last_seq
                body = fh.read(plen + _CRC.size)
                if len(body) < plen + _CRC.size:
                    return good, first_seq, last_seq
                payload = body[:plen]
                (crc,) = _CRC.unpack(body[plen:])
                if crc != zlib.crc32(header + payload):
                    return good, first_seq, last_seq
                # Appends are sequential: each record continues the global
                # sequence exactly.  Anything else is damage.
                if last_seq and seq != last_seq + 1:
                    return good, first_seq, last_seq
                if first_seq is None:
                    first_seq = seq
                last_seq = seq
                good += _HEADER.size + plen + _CRC.size

    def _open_active(self) -> None:
        if not self._segments:
            self._create_segment(1)
        else:
            active = self._segments[-1]
            self._fh = open(active.path, "ab", buffering=_WRITE_BUFFER)
            self._size = os.path.getsize(active.path)

    def _create_segment(self, index: int) -> None:
        path = os.path.join(self.directory, f"wal-{index:08d}.log")
        self._fh = open(path, "wb", buffering=_WRITE_BUFFER)
        self._fh.write(WAL_MAGIC)
        self._fh.flush()
        if self.fsync != "never":
            os.fsync(self._fh.fileno())
            self._fsync_directory()
        self._size = len(WAL_MAGIC)
        self._segments.append(_Segment(path, index, None))

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- appending ----------------------------------------------------------

    def append(self, rtype: int, payload: bytes) -> int:
        """Append one record, returning its global sequence number."""
        if rtype not in _RECORD_TYPES:
            raise WalError(f"unknown record type {rtype}")
        with self._lock:
            if self.read_only:
                raise WalError("log opened read-only")
            if self._closed:
                raise WalError("log is closed")
            seq = self._last_seq + 1
            header = _HEADER.pack(len(payload), rtype, seq)
            record = header + payload + _CRC.pack(zlib.crc32(header + payload))
            self._fh.write(record)
            segment = self._segments[-1]
            if segment.first_seq is None:
                segment.first_seq = seq
            self._last_seq = seq
            self._size += len(record)
            self.bytes_appended += len(record)
            self.records_appended[rtype] += 1
            # "interval" durability is the flusher thread's job.
            if self.fsync == "always":
                self._sync_locked()
            if self._size >= self.segment_max_bytes:
                self._rotate_locked()
            return seq

    def append_batch(self, rtype: int, payloads) -> int:
        """Append many records in one lock/encode/write pass.

        Returns the sequence number of the last record appended (or the
        current :attr:`last_seq` for an empty batch).  This is the
        ingestion fast path: one lock acquisition, one ``write`` and one
        fsync-policy check amortised over the whole batch, so the
        per-record cost is dominated by the CRC.  A batch is a single
        write, so it may overshoot ``segment_max_bytes`` by up to one
        batch before rotating.
        """
        if rtype not in _RECORD_TYPES:
            raise WalError(f"unknown record type {rtype}")
        pack_header = _HEADER.pack
        pack_crc = _CRC.pack
        crc32 = zlib.crc32
        with self._lock:
            if self.read_only:
                raise WalError("log opened read-only")
            if self._closed:
                raise WalError("log is closed")
            seq = self._last_seq
            pieces = []
            grow = pieces.append
            for payload in payloads:
                seq += 1
                header = pack_header(len(payload), rtype, seq)
                grow(header)
                grow(payload)
                grow(pack_crc(crc32(payload, crc32(header))))
            if seq == self._last_seq:
                return seq
            blob = b"".join(pieces)
            self._fh.write(blob)
            segment = self._segments[-1]
            if segment.first_seq is None:
                segment.first_seq = self._last_seq + 1
            self.records_appended[rtype] += seq - self._last_seq
            self._last_seq = seq
            self._size += len(blob)
            self.bytes_appended += len(blob)
            if self.fsync == "always":
                self._sync_locked()
            if self._size >= self.segment_max_bytes:
                self._rotate_locked()
            return seq

    def append_control(self, event: ControlEvent) -> int:
        return self.append(RT_CONTROL, event.encode())

    def append_report(self, payload: bytes) -> int:
        return self.append(RT_REPORT, payload)

    def append_report_batch(self, payloads) -> int:
        """Log many report payloads as ONE length-prefixed batch record.

        The daemon's group-commit unit: a single header + CRC covers the
        whole dispatch batch, so per-report WAL cost collapses to the
        length prefix.  Returns the batch record's seq (the current
        :attr:`last_seq` for an empty batch).  Replay iterates the
        contained payloads in order; bisection granularity for batched
        streams is the batch record.
        """
        pack_len = _BATCH_LEN.pack
        pieces = []
        grow = pieces.append
        count = 0
        for payload in payloads:
            if len(payload) > 0xFFFF:
                raise WalError(
                    f"payload of {len(payload)} bytes does not fit a "
                    "report-batch record"
                )
            grow(pack_len(len(payload)))
            grow(payload)
            count += 1
        with self._lock:
            if not count:
                return self._last_seq
            seq = self.append(RT_REPORT_BATCH, b"".join(pieces))
            self.batched_report_payloads += count
            return seq

    def append_report_frame(self, frame: bytes, row_size: int) -> int:
        """Log a frame of fixed-``row_size`` payloads as ONE batch record.

        Same record type and body layout as :meth:`append_report_batch`
        (length prefix per payload), built with strided slice assignment
        instead of a per-payload Python loop — the batched-ingestion WAL
        hot path.  Replay is byte-identical to logging the rows one list
        at a time.
        """
        if not 0 < row_size <= 0xFFFF:
            raise WalError(f"report frame row size {row_size} not loggable")
        count, rem = divmod(len(frame), row_size)
        if rem:
            raise WalError(
                f"report frame length {len(frame)} is not a multiple of "
                f"{row_size}"
            )
        with self._lock:
            if not count:
                return self._last_seq
            stride = row_size + _BATCH_LEN.size
            body = bytearray(count * stride)
            plen = _BATCH_LEN.pack(row_size)
            body[0::stride] = plen[0:1] * count
            body[1::stride] = plen[1:2] * count
            for j in range(row_size):
                body[_BATCH_LEN.size + j :: stride] = frame[j::row_size]
            seq = self.append(RT_REPORT_BATCH, bytes(body))
            self.batched_report_payloads += count
            return seq

    def append_malformed(self, payload: bytes) -> int:
        return self.append(RT_MALFORMED, payload)

    def _sync_locked(self) -> None:
        self._fh.flush()
        start = time.perf_counter()
        os.fsync(self._fh.fileno())
        elapsed = time.perf_counter() - start
        self.fsyncs += 1
        self._last_sync = time.monotonic()
        if self._fsync_hist is not None:
            self._fsync_hist.observe(elapsed)

    def sync(self) -> None:
        """Flush and fsync the active segment regardless of policy."""
        with self._lock:
            if self._fh is not None and not self._closed:
                self._sync_locked()

    def _flusher_main(self) -> None:
        while not self._flusher_stop.wait(self.fsync_interval_s):
            self._background_sync()

    def _background_sync(self) -> None:
        """One group commit: flush under the lock, fsync outside it.

        The fsync runs on a dup'd descriptor so a concurrent rotation
        (which closes the old segment) cannot invalidate it mid-call,
        and appends keep the lock free for the fsync's whole duration.
        """
        with self._lock:
            if self._closed or self._fh is None:
                return
            self._fh.flush()
            try:
                fd = os.dup(self._fh.fileno())
            except OSError:  # pragma: no cover - fd table exhausted
                return
        start = time.perf_counter()
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        elapsed = time.perf_counter() - start
        self.fsyncs += 1
        self._last_sync = time.monotonic()
        if self._fsync_hist is not None:
            self._fsync_hist.observe(elapsed)

    def _rotate_locked(self) -> None:
        if self.fsync == "never":
            self._fh.flush()
        else:
            self._sync_locked()
        self._fh.close()
        self._create_segment(self._segments[-1].index + 1)

    # -- reading ------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self._last_seq

    def first_seq(self) -> Optional[int]:
        """Sequence number of the oldest retained record (None if empty)."""
        for segment in self._segments:
            if segment.first_seq is not None:
                return segment.first_seq
        return None

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def records(
        self, start_seq: int = 1, stop_seq: Optional[int] = None
    ) -> Iterator[WalRecord]:
        """Yield validated records with ``start_seq <= seq <= stop_seq``.

        Re-validates checksums on the way through, so an iterator opened on
        a live log simply stops at the flushed prefix.
        """
        with self._lock:
            if self._fh is not None and not self._closed:
                self._fh.flush()
            segments = list(self._segments)
        prev_seq = 0
        for pos, segment in enumerate(segments):
            nxt = segments[pos + 1] if pos + 1 < len(segments) else None
            if nxt is not None and nxt.first_seq is not None:
                prev_seq = nxt.first_seq - 1
                if prev_seq < start_seq:
                    continue  # every record here precedes the window
                prev_seq = (segment.first_seq or 1) - 1
            for record in self._iter_segment(segment.path, prev_seq):
                prev_seq = record.seq
                if stop_seq is not None and record.seq > stop_seq:
                    return
                if record.seq >= start_seq:
                    yield record

    def _iter_segment(self, path: str, prev_seq: int) -> Iterator[WalRecord]:
        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            return
        with fh:
            if fh.read(len(WAL_MAGIC)) != WAL_MAGIC:
                return
            last = prev_seq
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                plen, rtype, seq = _HEADER.unpack(header)
                if rtype not in _RECORD_TYPES or plen > _MAX_PAYLOAD:
                    return
                body = fh.read(plen + _CRC.size)
                if len(body) < plen + _CRC.size:
                    return
                payload = body[:plen]
                (crc,) = _CRC.unpack(body[plen:])
                if crc != zlib.crc32(header + payload):
                    return
                if last and seq != last + 1:
                    return
                last = seq
                yield WalRecord(seq, rtype, payload)

    # -- maintenance ---------------------------------------------------------

    def prune_segments_before(self, seq: int) -> int:
        """Delete whole segments whose records are all ``<= seq``.

        Only safe when a snapshot covers that prefix.  The active segment is
        never deleted.  Returns the number of segments removed.
        """
        removed = 0
        with self._lock:
            if self.read_only:
                raise WalError("log opened read-only")
            while len(self._segments) > 1:
                nxt = self._segments[1]
                # All records of segment 0 have seq < nxt.first_seq.  An
                # empty successor blocks pruning: segments carry no base
                # seq, so a log whose only remaining segment is empty
                # would restart numbering at 1 on reopen.
                if nxt.first_seq is None or nxt.first_seq > seq + 1:
                    break
                victim = self._segments.pop(0)
                os.remove(victim.path)
                removed += 1
        return removed

    def close(self) -> None:
        flusher = self._flusher
        if flusher is not None:
            self._flusher_stop.set()
            if flusher is not threading.current_thread():
                flusher.join(timeout=5.0)
            self._flusher = None
        with self._lock:
            if self._closed or self._fh is None:
                self._closed = True
                return
            self._fh.flush()
            if self.fsync != "never":
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "wal_last_seq": self._last_seq,
                "wal_segments": len(self._segments),
                "wal_records_control": self.records_appended[RT_CONTROL],
                # Reports, not records: batch records count their payloads,
                # so the figure is comparable across single/batched logging.
                "wal_records_report": (
                    self.records_appended[RT_REPORT]
                    + self.batched_report_payloads
                ),
                "wal_records_report_batch": self.records_appended[
                    RT_REPORT_BATCH
                ],
                "wal_records_malformed": self.records_appended[RT_MALFORMED],
                "wal_bytes_appended": self.bytes_appended,
                "wal_fsyncs": self.fsyncs,
                "wal_truncated_bytes": self.truncated_bytes,
            }

    def _register_metrics(self, obs) -> None:
        from ..obs import IO_BUCKETS

        registry = obs.registry
        registry.counter(
            "veridp_wal_records_total",
            "Records appended to the write-ahead log by stream.",
            ("stream",),
            callback=lambda: {
                (_STREAM_NAMES[t],): n for t, n in self.records_appended.items()
            },
        )
        registry.counter(
            "veridp_wal_bytes_total",
            "Bytes appended to the write-ahead log.",
            callback=lambda: self.bytes_appended,
        )
        registry.counter(
            "veridp_wal_fsyncs_total",
            "fsync calls issued by the write-ahead log.",
            callback=lambda: self.fsyncs,
        )
        registry.counter(
            "veridp_wal_truncated_bytes_total",
            "Bytes discarded while truncating torn/corrupt WAL tails.",
            callback=lambda: self.truncated_bytes,
        )
        registry.gauge(
            "veridp_wal_segments",
            "Live WAL segment files.",
            callback=lambda: len(self._segments),
        )
        registry.gauge(
            "veridp_wal_last_seq",
            "Highest global sequence number in the WAL.",
            callback=lambda: self._last_seq,
        )
        self._fsync_hist = obs.registry.histogram(
            "veridp_wal_fsync_seconds",
            "Wall-clock seconds per WAL fsync.",
            buckets=IO_BUCKETS,
        ).labels()
