"""Unified observability for the VeriDP monitoring plane.

The paper sells VeriDP as *continuous* monitoring of control-data plane
consistency; a monitor whose own behaviour is opaque is only half built.
This package makes the monitoring plane observable with zero hard
dependencies (stdlib only):

* :mod:`repro.obs.metrics`    — thread/process-safe registry of counters,
  gauges and fixed-bucket histograms with labels, callback-sourced
  instruments, and mergeable picklable snapshots (shard workers ship
  deltas to the parent through them),
* :mod:`repro.obs.tracing`    — span context managers with a ring-buffer
  exporter instrumenting decode → admission → verify → localize →
  incident,
* :mod:`repro.obs.exposition` — Prometheus text format v0.0.4 + JSON,
* :mod:`repro.obs.httpd`      — the live ``/metrics`` / ``/healthz`` /
  ``/varz`` endpoint served by a stdlib ``http.server``.

:class:`Observability` bundles one registry and one tracer; the
:class:`~repro.core.server.VeriDPServer` creates one by default and the
daemons adopt it, so one scrape covers the whole pipeline.  The metric
catalogue and span taxonomy are documented in DESIGN.md §8.
"""

from __future__ import annotations

from typing import Optional

from .exposition import (
    CONTENT_TYPE_PROMETHEUS,
    parse_prometheus_text,
    render_json,
    render_prometheus,
    snapshot_to_dict,
)
from .httpd import MetricsEndpoint
from .metrics import (
    DEFAULT_BUCKETS,
    IO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from .tracing import Span, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "IO_BUCKETS",
    "Tracer",
    "Span",
    "MetricsEndpoint",
    "render_prometheus",
    "render_json",
    "snapshot_to_dict",
    "parse_prometheus_text",
    "CONTENT_TYPE_PROMETHEUS",
]


class Observability:
    """One registry + one tracer: the unit components share and export."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer()
        self.tracer.register_metrics(self.registry)
        # Bound-method shorthand; skips a wrapper frame on the hot path.
        self.span = self.tracer.span

    def endpoint(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        health=None,
        varz=None,
    ) -> MetricsEndpoint:
        """Build (but do not start) an HTTP endpoint over this bundle."""
        return MetricsEndpoint(self, host=host, port=port, health=health, varz=varz)
