"""A zero-dependency metrics registry for the VeriDP monitoring plane.

VeriDP is pitched as *continuous* monitoring (Section 3 of the paper), so
the monitor's own runtime state — ingestion rates, queue pressure, verify
verdicts, localization outcomes, supervisor restarts — is first-class
output, not an ad-hoc ``stats()`` dict.  This module supplies the storage
layer; :mod:`repro.obs.exposition` renders it, and
:mod:`repro.obs.httpd` serves it.

Three primitive kinds, mirroring the Prometheus data model:

* :class:`Counter`   — monotonically increasing totals,
* :class:`Gauge`     — point-in-time values that go both ways,
* :class:`Histogram` — fixed-bucket latency/size distributions.

Each is a *family* that may carry labels; ``family.labels("a", "b")``
returns a cached child bound to one label-value tuple, so hot paths pay a
dict hit once and an integer add per update.

Two sourcing modes coexist deliberately:

* **stored** instruments own their value (used by shard workers, span
  aggregation and tests),
* **callback** instruments evaluate a function at collection time, so a
  component whose hot path already maintains a plain-int counter (for
  example :class:`repro.core.verifier.Verifier`'s verdict counts) can be
  exposed with *zero* added cost on the fast path — the registry is the
  single exposition surface either way.  Re-registering a callback
  instrument replaces the callback ("latest owner wins"), which is what a
  daemon attaching to an already-instrumented server wants.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain-data and picklable;
:meth:`MetricsRegistry.merge` folds one registry's snapshot into another,
which is how the sharded daemon's forked workers ship per-flush metric
deltas to the parent (``snapshot(reset=True)`` on the worker, ``merge`` on
the parent).  Counters and histograms merge additively; gauges are
last-write-wins.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "IO_BUCKETS",
]

#: Default histogram buckets (seconds): microsecond-scale verification up
#: to multi-second maintenance operations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for storage I/O latencies (seconds): fsync on a warm page cache
#: lands in the tens of microseconds; snapshot writes and cold fsyncs can
#: reach tens of milliseconds, and a stalled disk far beyond.
IO_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 5.0, 30.0,
)

LabelKey = Tuple[str, ...]


def _coerce_label_key(
    labelnames: Tuple[str, ...], args: Sequence[str], kwargs: Dict[str, str]
) -> LabelKey:
    """Resolve positional/keyword label values into the canonical tuple."""
    if kwargs:
        if args:
            raise ValueError("pass label values positionally or by name, not both")
        try:
            return tuple(str(kwargs[name]) for name in labelnames)
        except KeyError as exc:
            raise ValueError(f"missing label {exc} (need {labelnames})") from None
    if len(args) != len(labelnames):
        raise ValueError(
            f"expected {len(labelnames)} label value(s) {labelnames}, got {len(args)}"
        )
    return tuple(str(v) for v in args)


class _Child:
    """One (family, label-values) series; updates are O(1) under one lock."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "_Metric", key: LabelKey) -> None:
        self._metric = metric
        self._key = key


class _CounterChild(_Child):
    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount})")
        metric = self._metric
        with metric._lock:
            metric._values[self._key] = metric._values.get(self._key, 0) + amount

    @property
    def value(self) -> float:
        metric = self._metric
        with metric._lock:
            return metric._values.get(self._key, 0)


class _GaugeChild(_Child):
    def set(self, value: float) -> None:
        metric = self._metric
        with metric._lock:
            metric._values[self._key] = value

    def inc(self, amount: float = 1) -> None:
        metric = self._metric
        with metric._lock:
            metric._values[self._key] = metric._values.get(self._key, 0) + amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        metric = self._metric
        with metric._lock:
            return metric._values.get(self._key, 0)


class _HistogramChild(_Child):
    """Caches lock, bounds and the state list: ``observe`` is on the
    daemon's per-batch path, and every indirection it skips is a likely
    cache miss there (the obs-overhead bench gates the total)."""

    __slots__ = ("_lock", "_buckets", "_state")

    def __init__(self, metric: "_Metric", key: LabelKey) -> None:
        super().__init__(metric, key)
        self._lock = metric._lock
        self._buckets = metric.buckets
        # Constructed under metric._lock (via labels()), so the get-or-create
        # is race-free; eager creation keeps the series visible from birth
        # and lets _reset zero it in place without breaking this alias.
        state = metric._values.get(key)
        if state is None:
            state = [[0] * (len(metric.buckets) + 1), 0.0]
            metric._values[key] = state
        self._state = state

    def observe(self, value: float) -> None:
        state = self._state
        with self._lock:
            # bisect_left finds the first bucket bound >= value, matching
            # Prometheus ``le`` (less-or-equal) semantics exactly at the
            # boundary; beyond the last bound lands in the +Inf slot.
            state[0][bisect_left(self._buckets, value)] += 1
            state[1] += value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._state[0])

    @property
    def sum(self) -> float:
        with self._lock:
            return self._state[1]


class _Metric:
    """Base family: a named, typed, optionally-labelled set of series."""

    kind = "untyped"
    _child_cls = _Child

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        callback: Optional[Callable] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._callback = callback
        self._lock = threading.Lock()
        self._values: Dict[LabelKey, object] = {}
        self._children: Dict[LabelKey, _Child] = {}

    def labels(self, *args, **kwargs) -> _Child:
        if self._callback is not None:
            raise ValueError(f"{self.name} is callback-sourced; it cannot be set")
        key = _coerce_label_key(self.labelnames, args, kwargs)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._child_cls(self, key))
        return child

    def _default(self) -> _Child:
        if self.labelnames:
            raise ValueError(f"{self.name} has labels {self.labelnames}; use .labels()")
        return self.labels()

    def _collect(self) -> Dict[LabelKey, object]:
        """Materialise current values (invoking the callback if sourced so)."""
        if self._callback is not None:
            produced = self._callback()
            if isinstance(produced, dict):
                out = {}
                for key, value in produced.items():
                    if not isinstance(key, tuple):
                        key = (str(key),)
                    if len(key) != len(self.labelnames):
                        raise ValueError(
                            f"{self.name}: callback key {key!r} does not match "
                            f"labels {self.labelnames}"
                        )
                    out[tuple(str(k) for k in key)] = value
                return out
            if self.labelnames:
                raise ValueError(
                    f"{self.name}: labelled callback must return a dict"
                )
            return {(): produced}
        with self._lock:
            return {
                key: (list(value[0]), value[1]) if self.kind == "histogram" else value
                for key, value in self._values.items()
            }

    def _reset(self) -> None:
        """Zero stored values (no-op for gauges and callback instruments)."""


class Counter(_Metric):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value

    def _reset(self) -> None:
        if self._callback is None:
            with self._lock:
                self._values.clear()


class Gauge(_Metric):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(_Metric):
    kind = "histogram"
    _child_cls = _HistogramChild

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        callback: Optional[Callable] = None,
    ) -> None:
        bucket_tuple = tuple(sorted(float(b) for b in buckets))
        if not bucket_tuple:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bucket_tuple)) != len(bucket_tuple):
            raise ValueError(f"duplicate bucket bounds in {bucket_tuple}")
        super().__init__(name, help, labelnames, callback)
        self.buckets = bucket_tuple

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def _reset(self) -> None:
        # Zero in place: children alias their state list, so replacing or
        # clearing the dict would orphan them.
        if self._callback is None:
            with self._lock:
                for state in self._values.values():
                    state[0][:] = [0] * len(state[0])
                    state[1] = 0.0


class MetricsSnapshot:
    """A picklable point-in-time copy of a registry's series.

    ``metrics`` is a list of plain dicts — safe to ship over a
    ``multiprocessing`` queue, dump to JSON, or diff in tests.  Histogram
    values are ``(per_bucket_counts, sum)`` with *non-cumulative* bucket
    counts; the Prometheus renderer cumulates at exposition time.
    """

    __slots__ = ("metrics",)

    def __init__(self, metrics: List[dict]) -> None:
        self.metrics = metrics

    def get(self, name: str) -> Optional[dict]:
        for metric in self.metrics:
            if metric["name"] == name:
                return metric
        return None

    def value(self, name: str, labels: LabelKey = (), default=0):
        """One series' value; histograms return ``{"counts", "sum", "count"}``."""
        metric = self.get(name)
        if metric is None:
            return default
        value = metric["values"].get(tuple(str(v) for v in labels))
        if value is None:
            return default
        if metric["kind"] == "histogram":
            counts, total = value
            return {"counts": list(counts), "sum": total, "count": sum(counts)}
        return value

    def total(self, name: str, default=0):
        """Sum of every series in a family (counters/gauges only)."""
        metric = self.get(name)
        if metric is None or not metric["values"]:
            return default
        if metric["kind"] == "histogram":
            raise ValueError(f"{name} is a histogram; total() is ambiguous")
        return sum(metric["values"].values())


class MetricsRegistry:
    """Thread-safe home of every metric family, in registration order.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: asking for
    an existing name with a matching kind returns the existing family
    (passing a new ``callback`` rebinds it — latest owner wins), so a
    server and the daemon wrapping it can share one registry without
    coordination.  A kind or bucket mismatch is a programming error and
    raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # -- registration ------------------------------------------------------

    def _register(self, cls, name, help, labelnames, callback, **extra) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != cls.kind:
                    raise ValueError(
                        f"{name} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                if existing.labelnames != labelnames:
                    raise ValueError(
                        f"{name} already registered with labels "
                        f"{existing.labelnames}, not {labelnames}"
                    )
                if "buckets" in extra and tuple(
                    sorted(float(b) for b in extra["buckets"])
                ) != getattr(existing, "buckets", ()):
                    raise ValueError(f"{name} already registered with other buckets")
                if callback is not None:
                    existing._callback = callback
                return existing
            metric = cls(name, help, labelnames, callback=callback, **extra)
            self._metrics[name] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        callback: Optional[Callable] = None,
    ) -> Counter:
        return self._register(Counter, name, help, labelnames, callback)

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        callback: Optional[Callable] = None,
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames, callback)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, None, buckets=buckets
        )

    def unregister(self, name: str) -> bool:
        """Drop one family (tests and component teardown)."""
        with self._lock:
            return self._metrics.pop(name, None) is not None

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self, reset: bool = False) -> MetricsSnapshot:
        """Materialise every family (callbacks included) into plain data.

        ``reset=True`` zeroes stored counters and histograms afterwards —
        the delta-shipping mode shard workers use.  Gauges and
        callback-sourced instruments are never reset (a gauge is a state,
        not a flow; a callback's truth lives with its owner).
        """
        with self._lock:
            metrics = list(self._metrics.values())
        out: List[dict] = []
        for metric in metrics:
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": metric.labelnames,
                "values": metric._collect(),
            }
            if metric.kind == "histogram":
                entry["buckets"] = metric.buckets
            out.append(entry)
            if reset:
                metric._reset()
        return MetricsSnapshot(out)

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker's) snapshot into this registry.

        Counters and histograms add; gauges take the incoming value.
        Families are created on first sight, so the parent does not need to
        pre-declare everything its workers measure.  Merging into a
        callback-sourced family is refused: the callback already owns that
        family's truth.
        """
        for entry in snapshot.metrics:
            kind = entry["kind"]
            if kind == "counter":
                metric = self.counter(entry["name"], entry["help"], entry["labelnames"])
            elif kind == "gauge":
                metric = self.gauge(entry["name"], entry["help"], entry["labelnames"])
            elif kind == "histogram":
                metric = self.histogram(
                    entry["name"], entry["help"], entry["labelnames"],
                    buckets=entry["buckets"],
                )
            else:  # pragma: no cover - snapshot only carries known kinds
                raise ValueError(f"unknown metric kind {kind!r}")
            if metric._callback is not None:
                raise ValueError(
                    f"cannot merge into callback-sourced metric {metric.name}"
                )
            if kind == "histogram" and metric.buckets != tuple(entry["buckets"]):
                raise ValueError(
                    f"{metric.name}: bucket schema mismatch on merge"
                )
            with metric._lock:
                for key, value in entry["values"].items():
                    key = tuple(key)
                    if kind == "counter":
                        metric._values[key] = metric._values.get(key, 0) + value
                    elif kind == "gauge":
                        metric._values[key] = value
                    else:
                        state = metric._values.get(key)
                        if state is None:
                            state = [[0] * (len(metric.buckets) + 1), 0.0]
                            metric._values[key] = state
                        counts, total = value
                        for i, n in enumerate(counts):
                            state[0][i] += n
                        state[1] += total
