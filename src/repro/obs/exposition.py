"""Render metric snapshots: Prometheus text format v0.0.4 and JSON.

The text format is the de-facto scrape interface ("Prometheus exposition
format, version 0.0.4"): ``# HELP``/``# TYPE`` headers followed by one
``name{label="value"} number`` sample per series.  Histograms expand into
cumulative ``_bucket{le="..."}`` samples plus ``_sum`` and ``_count`` —
bucket counts are stored per-bucket in the snapshot and cumulated here.

:func:`parse_prometheus_text` is the inverse for *our own* output (plus
any well-formed subset): the chaos-campaign CI job scrapes a live daemon
and reconciles the parsed counters against the fault injector's
ground-truth ledger, and the golden-file test round-trips through it.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from .metrics import LabelKey, MetricsSnapshot

__all__ = [
    "CONTENT_TYPE_PROMETHEUS",
    "render_prometheus",
    "render_json",
    "snapshot_to_dict",
    "parse_prometheus_text",
]

CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


def _format_number(value) -> str:
    """Prometheus-style numbers: integers bare, floats via repr, inf/nan named."""
    if isinstance(value, bool):  # pragma: no cover - bools are not metrics
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _labels_text(labelnames: Tuple[str, ...], key: LabelKey, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, key)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The v0.0.4 text exposition of one snapshot (ends with a newline)."""
    lines: List[str] = []
    for metric in snapshot.metrics:
        name = metric["name"]
        labelnames = tuple(metric["labelnames"])
        if metric["help"]:
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        values = metric["values"]
        for key in sorted(values):
            value = values[key]
            if metric["kind"] == "histogram":
                counts, total = value
                cumulative = 0
                for bound, count in zip(metric["buckets"], counts):
                    cumulative += count
                    le = _labels_text(
                        labelnames, key, f'le="{_format_number(float(bound))}"'
                    )
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += counts[-1]
                inf = _labels_text(labelnames, key, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf} {cumulative}")
                lines.append(
                    f"{name}_sum{_labels_text(labelnames, key)} "
                    f"{_format_number(total)}"
                )
                lines.append(f"{name}_count{_labels_text(labelnames, key)} {cumulative}")
            else:
                lines.append(
                    f"{name}{_labels_text(labelnames, key)} {_format_number(value)}"
                )
    return "\n".join(lines) + "\n"


def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict:
    """JSON-ready structure: ``{name: {kind, help, samples: [...]}}``."""
    out: Dict[str, dict] = {}
    for metric in snapshot.metrics:
        labelnames = tuple(metric["labelnames"])
        samples = []
        for key in sorted(metric["values"]):
            value = metric["values"][key]
            labels = dict(zip(labelnames, key))
            if metric["kind"] == "histogram":
                counts, total = value
                samples.append(
                    {
                        "labels": labels,
                        "buckets": list(metric["buckets"]),
                        "counts": list(counts),
                        "sum": total,
                        "count": sum(counts),
                    }
                )
            else:
                samples.append({"labels": labels, "value": value})
        out[metric["name"]] = {
            "kind": metric["kind"],
            "help": metric["help"],
            "samples": samples,
        }
    return out


def render_json(snapshot: MetricsSnapshot, **extra) -> str:
    """JSON snapshot (the ``/varz`` body); ``extra`` keys ride alongside."""
    payload = {"metrics": snapshot_to_dict(snapshot)}
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:\\.|[^"\\])*)"')


def _unescape_label(value: str) -> str:
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
    )


def parse_prometheus_text(text: str) -> Dict[str, Dict[frozenset, float]]:
    """Parse v0.0.4 text into ``{name: {frozenset(label items): value}}``.

    Histogram series surface under their expanded sample names
    (``*_bucket``/``*_sum``/``*_count``), mirroring what a real scraper
    stores.  Built for round-tripping this module's own renderer in tests
    and the chaos CI reconciliation; not a general-purpose parser.
    """
    out: Dict[str, Dict[frozenset, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        raw = match.group("value")
        if raw == "+Inf":
            value = float("inf")
        elif raw == "-Inf":
            value = float("-inf")
        else:
            value = float(raw)
        labels = frozenset(
            (name, _unescape_label(val))
            for name, val in _LABEL_RE.findall(match.group("labels") or "")
        )
        out.setdefault(match.group("name"), {})[labels] = value
    return out
