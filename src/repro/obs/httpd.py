"""The live monitoring endpoint: ``/metrics``, ``/healthz``, ``/varz``.

A stdlib-only (``http.server``) HTTP endpoint a Prometheus scraper, a
load balancer health check, or a curious operator can hit while a VeriDP
daemon is verifying reports:

* ``GET /metrics``  — Prometheus text format v0.0.4 of the registry,
* ``GET /healthz``  — ``200 ok`` / ``503`` + a small JSON verdict from the
  owner's health callback (a degraded daemon reports itself unhealthy),
* ``GET /varz``     — the JSON snapshot: every metric, span aggregates,
  the most recent spans, process uptime, and whatever extra dict the
  owner's ``varz`` callback contributes (e.g. ``daemon.stats()``).

The server is a ``ThreadingHTTPServer`` on a daemon thread: scrapes run
concurrently with verification and never block ingestion.  ``port=0``
binds an ephemeral port — read :attr:`MetricsEndpoint.address` (tests and
the chaos CI job rely on this).  ``start``/``stop`` are idempotent.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from .exposition import CONTENT_TYPE_PROMETHEUS, render_json, render_prometheus

__all__ = ["MetricsEndpoint"]


class MetricsEndpoint:
    """Serve one :class:`Observability` bundle over HTTP.

    ``health`` (optional) returns ``(ok, detail_dict)``; ``varz``
    (optional) returns a dict merged into the ``/varz`` body.  Both are
    called per-request and must be cheap and exception-safe at the caller
    level — a raising callback yields a 500, never a crashed serve thread.
    """

    def __init__(
        self,
        obs,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Optional[Callable[[], Tuple[bool, dict]]] = None,
        varz: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.obs = obs
        self._host = host
        self._port = port
        self._health = health
        self._varz = varz
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.time()
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "MetricsEndpoint":
        if self._httpd is not None:
            return self
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # scrapes are not news
                pass

            def do_GET(self) -> None:
                try:
                    status, content_type, body = endpoint._route(self.path)
                except Exception as exc:  # pragma: no cover - defensive
                    status, content_type, body = (
                        500,
                        "text/plain; charset=utf-8",
                        f"internal error: {type(exc).__name__}: {exc}\n".encode(),
                    )
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        self.address = self._httpd.server_address[:2]
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="veridp-metrics-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is None:
            return
        httpd.shutdown()
        httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def url(self) -> str:
        if self.address is None:
            raise RuntimeError("endpoint is not started")
        return f"http://{self.address[0]}:{self.address[1]}"

    # -- routing -----------------------------------------------------------

    def _route(self, path: str) -> Tuple[int, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            text = render_prometheus(self.obs.registry.snapshot())
            return 200, CONTENT_TYPE_PROMETHEUS, text.encode("utf-8")
        if path == "/healthz":
            ok, detail = (True, {}) if self._health is None else self._health()
            body = json.dumps(
                {"status": "ok" if ok else "unhealthy", **detail},
                sort_keys=True, default=str,
            ) + "\n"
            return (200 if ok else 503), "application/json", body.encode("utf-8")
        if path == "/varz":
            extra: Dict[str, object] = {
                "uptime_s": round(time.time() - self._started_at, 3),
                "spans": self.obs.tracer.to_dict(),
            }
            if self._varz is not None:
                extra["varz"] = self._varz()
            body = render_json(self.obs.registry.snapshot(), **extra)
            return 200, "application/json", body.encode("utf-8")
        return (
            404,
            "text/plain; charset=utf-8",
            b"not found; try /metrics, /healthz or /varz\n",
        )
