"""Lightweight trace spans for the VeriDP hot paths.

A *span* is one timed step of the report pipeline — decode, queue
admission, verify, localize, incident — recorded with a name, a duration
and a small attribute dict.  The exporter is a bounded ring buffer: the
last ``capacity`` spans are kept for ``/varz`` and debugging, and per-name
aggregates (count, total seconds, errors) survive ring eviction so the
metrics view never loses history.

Design constraints, in order:

1. **Cheap.** One ``perf_counter`` pair, one deque append, one dict update
   per span.  Hot loops span at *batch* granularity (one span per
   ``verify_batch`` call, not per report), which is how the <5 %
   instrumentation-overhead budget on the Figure 13 fast path is met
   (``benchmarks/test_obs_overhead.py`` gates it).
2. **Crash-transparent.** An exception inside a span marks the span's
   ``error`` and re-raises; tracing never swallows or adds failures.
3. **Optional.** ``Tracer(enabled=False)`` turns ``span()`` into a no-op
   that yields a shared inert span object.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One recorded pipeline step.  Mutable while active, frozen after.

    A span is its *own* context manager — ``Tracer.span()`` hands it out
    and ``__exit__`` records it.  One object and no generator frame per
    span: a generator-based ``@contextmanager`` costs microseconds of
    entry/exit against a ~100 us verify batch, which is real money on the
    daemon hot path (the obs-overhead bench gates the difference).
    """

    __slots__ = ("name", "start_s", "duration_s", "attrs", "error", "_tracer")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.start_s = 0.0
        self.duration_s = 0.0
        self.attrs = attrs if attrs is not None else {}
        self.error: Optional[str] = None
        self._tracer: Optional["Tracer"] = None

    def set(self, key: str, value) -> None:
        """Attach one attribute to the active span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if tracer is None:  # detached (noop) span: nothing to record
            return False
        self.duration_s = time.perf_counter() - self.start_s
        if exc_type is not None:
            self.error = exc_type.__name__
        with tracer._lock:
            tracer._ring.append(self)
            agg = tracer._agg.get(self.name)
            if agg is None:
                agg = tracer._agg[self.name] = [0, 0.0, 0]
            agg[0] += 1
            agg[1] += self.duration_s
            if self.error is not None:
                agg[2] += 1
        return False  # never swallow the exception

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "error": self.error,
        }

    def __repr__(self) -> str:
        status = f" error={self.error}" if self.error else ""
        return f"<span {self.name} {self.duration_s * 1e6:.1f}us{status}>"


#: Shared inert span handed out by disabled tracers: its ``_tracer`` stays
#: None, so ``__exit__`` records nothing (attrs land nowhere observable,
#: which is exactly the point).
_NOOP_SPAN = Span("noop")


class Tracer:
    """Ring-buffer span recorder with per-name aggregates.

    ``span()`` is a context manager::

        with tracer.span("verify", reports=len(batch)) as sp:
            result = verifier.verify_batch(batch)
            sp.set("failed", len(result.failures))

    ``spans()`` returns the retained ring (oldest first); ``aggregates()``
    returns ``{name: {"count", "total_s", "errors"}}`` accumulated since
    construction (or the last ``reset()``), independent of ring capacity.
    ``register_metrics()`` exposes the aggregates as callback counters on a
    :class:`~repro.obs.metrics.MetricsRegistry`, so span totals ride the
    same ``/metrics`` exposition as everything else.
    """

    def __init__(self, capacity: int = 2048, enabled: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self._agg: Dict[str, List[float]] = {}  # name -> [count, total_s, errors]
        self._lock = threading.Lock()

    def span(self, name: str, **attrs) -> Span:
        if not self.enabled:
            return _NOOP_SPAN
        record = Span(name, attrs)
        record._tracer = self
        return record

    # -- export ------------------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """The retained ring, oldest first (optionally one span name)."""
        with self._lock:
            if name is None:
                return list(self._ring)
            return [span for span in self._ring if span.name == name]

    def aggregates(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                name: {"count": agg[0], "total_s": agg[1], "errors": agg[2]}
                for name, agg in self._agg.items()
            }

    def to_dict(self, limit: int = 64) -> dict:
        """JSON-ready view for ``/varz``: aggregates + the newest spans."""
        with self._lock:
            recent = [span.to_dict() for span in list(self._ring)[-limit:]]
        return {"aggregates": self.aggregates(), "recent": recent}

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self._agg.clear()

    def register_metrics(self, registry) -> None:
        """Expose span aggregates as callback counters on ``registry``."""
        registry.counter(
            "veridp_spans_total",
            "Completed trace spans by span name.",
            ("span",),
            callback=lambda: {
                (name,): agg["count"] for name, agg in self.aggregates().items()
            },
        )
        registry.counter(
            "veridp_span_seconds_total",
            "Cumulative seconds spent inside spans, by span name.",
            ("span",),
            callback=lambda: {
                (name,): agg["total_s"] for name, agg in self.aggregates().items()
            },
        )
        registry.counter(
            "veridp_span_errors_total",
            "Spans that ended with an exception, by span name.",
            ("span",),
            callback=lambda: {
                (name,): agg["errors"] for name, agg in self.aggregates().items()
            },
        )
