"""Horizontally-scalable verification tier (DESIGN.md §14).

The paper's pipeline funnels every switch report into one verification
process; this package promotes the PR 5 pair-delta / ``replica_digest``
resync protocol across process boundaries so verification scales out:

* :mod:`repro.cluster.protocol`    — length-prefixed message streams,
* :mod:`repro.cluster.ring`        — consistent-hash placement,
* :mod:`repro.cluster.frontend`    — asyncio/selectors multi-socket
  ingestion + exactly-once batch routing,
* :mod:`repro.cluster.node`        — a verification worker behind TCP,
* :mod:`repro.cluster.coordinator` — membership, rebalancing, resync and
  fleet-wide aggregation,
* :mod:`repro.cluster.cluster`     — the :class:`VeriDPCluster` facade.
"""

from __future__ import annotations

from .cluster import VeriDPCluster
from .coordinator import ClusterCoordinator
from .frontend import (
    AsyncioIngest,
    ClusterFrontend,
    SelectorIngest,
    build_ingest,
    routing_key_of,
)
from .node import NodeHandle, VerificationNode, start_node
from .protocol import MessageStream, ProtocolError, message_name
from .ring import HashRing

__all__ = [
    "VeriDPCluster",
    "ClusterCoordinator",
    "ClusterFrontend",
    "AsyncioIngest",
    "SelectorIngest",
    "build_ingest",
    "routing_key_of",
    "VerificationNode",
    "NodeHandle",
    "start_node",
    "MessageStream",
    "ProtocolError",
    "message_name",
    "HashRing",
]
