"""Cluster ingestion frontend: multi-socket intake + consistent routing.

This replaces the thread-per-listener ingestion model for cluster
deployments.  One :class:`ClusterFrontend` owns the routing state — which
verification node each ``(inport, outport)`` pair belongs to — and one
ingest engine (:class:`AsyncioIngest`, or :class:`SelectorIngest` where
asyncio is unavailable) feeds it 27-byte report payloads from any number
of UDP and TCP sockets on a single event-loop thread.

Routing is two-layered:

* an explicit **placement map** (routing key → node id) that the
  coordinator updates transactionally during rebalances — a key is only
  flipped *after* its compiled pair spec reached the new owner, so a
  routed report never races its own replica,
* the **hash ring** as the fallback for keys the coordinator has not
  pinned (fresh pairs mid-churn); a miss on the far side comes back in
  the flush reply and is re-ingested by the coordinator, so the fallback
  only costs latency, never correctness.

Tenant awareness (PR 8): every pair owned by a slice routes under the key
``tenant:<name>`` instead of ``pair:<key>``, so one tenant's pairs — and
with them its isolation-recheck work and footprint BDDs — land on a
single node rather than replicating everywhere.

Delivery bookkeeping implements the exactly-once contract from
:mod:`repro.cluster.protocol`: every dispatched batch stays in the
per-node un-acked map until a flush reply covers its seq; a dead node's
un-acked batches are detached wholesale and redelivered to the surviving
owners.
"""

from __future__ import annotations

import socket
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..core.daemon import frame_batch, unframe_batch
from ..core.ingest import (
    DEFAULT_INGEST_BATCH,
    HAVE_NUMPY,
    FrameBuffer,
    drain_socket,
    pair_keys,
    screen_frame,
)
from ..core.reports import REPORT_SIZE, Frame, payload_precheck
from .protocol import MSG_BATCH, MessageStream
from .ring import HashRing

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as np
except Exception:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = [
    "ClusterFrontend",
    "AsyncioIngest",
    "SelectorIngest",
    "build_ingest",
    "routing_key_of",
]

try:
    import asyncio

    HAVE_ASYNCIO = True
except Exception:  # pragma: no cover - asyncio is stdlib everywhere we run
    asyncio = None  # type: ignore[assignment]
    HAVE_ASYNCIO = False

import selectors


def routing_key_of(pair_key: int, tenant: Optional[str]) -> str:
    """The ring/placement key for one wire pair.

    Tenant-owned pairs share one key per tenant (co-location); unsliced
    pairs hash individually (spread).
    """
    if tenant:
        return f"tenant:{tenant}"
    return f"pair:{pair_key}"


class _NodeLink:
    """The frontend's view of one verification node's data connection."""

    def __init__(self, node_id: str, address: Tuple[str, int]) -> None:
        self.node_id = node_id
        self.address = address
        self.stream = MessageStream.connect(address)
        self.lock = threading.Lock()
        self.seq = 0  # last batch seq dispatched to this node
        self.acked = 0  # highest seq a flush reply has covered
        #: seq -> (frame, odd); insertion order == seq order.
        self.unacked: "OrderedDict[int, Tuple[bytes, List[bytes]]]" = (
            OrderedDict()
        )
        self.buffer: List[bytes] = []
        self.fbuffer: List[bytes] = []  # frame chunks from submit_frame
        self.fcount = 0  # rows pending in fbuffer
        self.dead = False


class ClusterFrontend:
    """Route report payloads to verification nodes, exactly once.

    Thread-safe: the ingest engine's loop thread, the coordinator's flush
    turns and test harnesses may all call in concurrently.
    """

    def __init__(
        self,
        batch_size: int = 256,
        persist=None,
        observer: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        self.batch_size = max(1, int(batch_size))
        self.persist = persist
        self.observer = observer
        self.ring = HashRing()
        #: routing key -> node_id, maintained by the coordinator.
        self.placement: Dict[str, str] = {}
        #: wire pair key32 -> tenant name, from the slice registry.
        self.tenant_of: Dict[int, str] = {}
        self._links: Dict[str, _NodeLink] = {}
        self._route_lock = threading.Lock()
        # intake ledger (plain ints under the route lock)
        self.submitted = 0
        self.precheck_rejected = 0
        self.dropped_no_node = 0
        self.dispatched_batches = 0
        self.dispatched_reports = 0
        self.redelivered_reports = 0
        self.dispatch_errors = 0

    # -- membership (coordinator-driven) -----------------------------------

    def attach_node(self, node_id: str, address: Tuple[str, int]) -> None:
        link = _NodeLink(node_id, address)
        with self._route_lock:
            self._links[node_id] = link
            if node_id not in self.ring:
                self.ring.add(node_id)

    def detach_node(self, node_id: str) -> List[bytes]:
        """Drop a node and return every payload it still owed us.

        The returned payloads (un-acked batches in seq order, then the
        undispatched buffer) are the redelivery set: the dead node's
        unflushed verdict counts died with it, so re-routing these to the
        surviving owners counts each verdict exactly once.
        """
        with self._route_lock:
            link = self._links.pop(node_id, None)
            if node_id in self.ring:
                self.ring.remove(node_id)
            self.placement = {
                key: owner
                for key, owner in self.placement.items()
                if owner != node_id
            }
        if link is None:
            return []
        link.dead = True
        link.stream.close()
        pending: List[bytes] = []
        with link.lock:
            for frame, odd in link.unacked.values():
                pending.extend(unframe_batch(frame, odd))
            pending.extend(link.buffer)
            for chunk in link.fbuffer:
                pending.extend(unframe_batch(chunk, []))
            link.unacked.clear()
            link.buffer = []
            link.fbuffer = []
            link.fcount = 0
        return pending

    def nodes(self) -> List[str]:
        with self._route_lock:
            return sorted(self._links)

    # -- routing -----------------------------------------------------------

    def routing_key(self, payload: bytes) -> str:
        pair_key = int.from_bytes(payload[2:6], "big")
        return routing_key_of(pair_key, self.tenant_of.get(pair_key))

    def owner_of(self, key: str) -> Optional[str]:
        node = self.placement.get(key)
        if node is not None and node in self._links:
            return node
        return self.ring.owner(key)

    def submit(self, payload: bytes) -> bool:
        """Ingest one wire payload; returns False when it was rejected."""
        with self._route_lock:
            self.submitted += 1
            if payload_precheck(payload) is not None:
                self.precheck_rejected += 1
                return False
            key = self.routing_key(payload)
            node = self.owner_of(key)
            link = self._links.get(node) if node is not None else None
            if link is None:
                self.dropped_no_node += 1
                return False
        if self.observer is not None:
            self.observer(payload)
        with link.lock:
            # A dead link still buffers: detach_node() surrenders the
            # buffer for redelivery, so a node's death window loses
            # nothing — the payloads just wait for the failover.
            link.buffer.append(payload)
            if (
                len(link.buffer) + link.fcount >= self.batch_size
                and not link.dead
            ):
                self._dispatch_locked(link)
        return True

    def submit_frame(self, frame: Frame) -> int:
        """Ingest a frame of wire rows in one routing pass.

        One vectorized screen + one ``np.unique`` over the pair-key column
        replaces per-row precheck/route/append rounds; each owner's rows
        land in its link's frame-chunk buffer as one contiguous chunk.
        Returns the rows accepted (screen rejects and ownerless rows are
        counted exactly as scalar :meth:`submit` counts them).  Falls back
        to per-row :meth:`submit` when numpy is unavailable or an observer
        tap needs to see individual payloads.
        """
        count = frame.count
        if count == 0:
            return 0
        if self.observer is not None or not HAVE_NUMPY:
            accepted = 0
            for row in frame.rows():
                if self.submit(row):
                    accepted += 1
            return accepted
        clean, rejected = screen_frame(frame.payload())
        nrows = len(clean) // REPORT_SIZE
        targets: List[Tuple[_NodeLink, bytes, int]] = []
        with self._route_lock:
            self.submitted += count
            self.precheck_rejected += len(rejected)
            if not nrows:
                return 0
            keys = pair_keys(clean)
            raw = np.frombuffer(clean, dtype=np.uint8).reshape(
                -1, REPORT_SIZE
            )
            uniq, inverse = np.unique(keys, return_inverse=True)
            # Map each unique pair key to a node slot (None = unroutable),
            # then fan rows out per slot in one mask pass each.
            node_slots: Dict[Optional[str], int] = {}
            slot_nodes: List[Optional[str]] = []
            codes = np.empty(uniq.shape[0], dtype=np.int64)
            for j, key in enumerate(uniq.tolist()):
                key = int(key)
                node = self.owner_of(
                    routing_key_of(key, self.tenant_of.get(key))
                )
                if node is not None and node not in self._links:
                    node = None
                slot = node_slots.get(node)
                if slot is None:
                    slot = len(slot_nodes)
                    node_slots[node] = slot
                    slot_nodes.append(node)
                codes[j] = slot
            row_slots = codes[inverse]
            for slot, node in enumerate(slot_nodes):
                mask = row_slots == slot
                rows = int(mask.sum())
                if node is None:
                    self.dropped_no_node += rows
                    continue
                targets.append(
                    (self._links[node], raw[mask].tobytes(), rows)
                )
        accepted = 0
        for link, chunk, rows in targets:
            with link.lock:
                link.fbuffer.append(chunk)
                link.fcount += rows
                accepted += rows
                if (
                    len(link.buffer) + link.fcount >= self.batch_size
                    and not link.dead
                ):
                    self._dispatch_locked(link)
        return accepted

    def redeliver(self, payloads: List[bytes]) -> int:
        """Re-route a detached node's pending payloads; returns the count."""
        count = 0
        for payload in payloads:
            with self._route_lock:
                self.submitted -= 1  # submit() recounts it below
            if self.submit(payload):
                count += 1
        with self._route_lock:
            self.redelivered_reports += count
        return count

    # -- dispatch ----------------------------------------------------------

    def _dispatch_locked(self, link: _NodeLink) -> None:
        """Ship the link's pending singles and frame chunks as one batch
        (caller holds ``link.lock``)."""
        singles = link.buffer
        link.buffer = []
        chunks = link.fbuffer
        link.fbuffer = []
        rows = link.fcount + len(singles)
        link.fcount = 0
        sized, odd = frame_batch(singles)
        frame = b"".join(chunks) + sized if chunks else sized
        if self.persist is not None:
            # WAL-before-verify at batch granularity: the batch is durable
            # before any node sees it, exactly like the sharded daemon —
            # one RT_REPORT_BATCH record per frame when the store supports
            # frame logging.
            log_frame = getattr(self.persist, "log_report_frame", None)
            if log_frame is not None:
                if frame:
                    log_frame(frame)
                if odd:
                    self.persist.log_report_batch(odd)
            else:
                self.persist.log_report_batch(
                    unframe_batch(frame, odd)
                )
        link.seq += 1
        link.unacked[link.seq] = (frame, odd)
        try:
            link.stream.send(MSG_BATCH, (link.seq, frame, odd))
        except OSError:
            # Connection is gone; the batch stays un-acked and will be
            # redelivered when the coordinator detaches the node.
            link.dead = True
            with self._route_lock:
                self.dispatch_errors += 1
            return
        with self._route_lock:
            self.dispatched_batches += 1
            self.dispatched_reports += rows

    def flush_buffers(self) -> None:
        """Dispatch every node's partial buffer (end-of-stream / timer)."""
        with self._route_lock:
            links = list(self._links.values())
        for link in links:
            with link.lock:
                if (link.buffer or link.fbuffer) and not link.dead:
                    self._dispatch_locked(link)

    def ack(self, node_id: str, last_seq: int) -> int:
        """Drop batches a flush reply covered; returns how many retired."""
        with self._route_lock:
            link = self._links.get(node_id)
        if link is None:
            return 0
        retired = 0
        with link.lock:
            if last_seq > link.acked:
                link.acked = last_seq
            while link.unacked:
                seq = next(iter(link.unacked))
                if seq > last_seq:
                    break
                del link.unacked[seq]
                retired += 1
        return retired

    def pending(self, node_id: str) -> Tuple[int, int]:
        """(un-acked batches, buffered payloads) for one node."""
        with self._route_lock:
            link = self._links.get(node_id)
        if link is None:
            return (0, 0)
        with link.lock:
            return (len(link.unacked), len(link.buffer) + link.fcount)

    def stats(self) -> Dict[str, int]:
        with self._route_lock:
            out = {
                "submitted": self.submitted,
                "precheck_rejected": self.precheck_rejected,
                "dropped_no_node": self.dropped_no_node,
                "dispatched_batches": self.dispatched_batches,
                "dispatched_reports": self.dispatched_reports,
                "redelivered_reports": self.redelivered_reports,
                "dispatch_errors": self.dispatch_errors,
                "nodes": len(self._links),
                "placement_keys": len(self.placement),
            }
        return out


# ---------------------------------------------------------------------------
# ingest engines
# ---------------------------------------------------------------------------


def _bind_udp(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.setblocking(False)
    return sock

def _bind_tcp(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(64)
    sock.setblocking(False)
    return sock


class AsyncioIngest:
    """All listen sockets on one asyncio loop thread (no thread-per-port).

    UDP datagrams carry one payload each (the switch-agent shape); TCP
    connections carry back-to-back ``REPORT_SIZE``-stride payloads (the
    relay/replay shape).  Sockets are bound synchronously — ``listen_udp``
    and ``listen_tcp`` return the bound address immediately, before or
    after :meth:`start` — and handed to the loop to serve.
    """

    engine = "asyncio"

    def __init__(
        self,
        frontend: ClusterFrontend,
        ingest_batch: int = DEFAULT_INGEST_BATCH,
    ) -> None:
        if not HAVE_ASYNCIO:
            raise RuntimeError("asyncio is unavailable; use SelectorIngest")
        self.frontend = frontend
        # > 1 selects the frame-native drain loop (one readability wakeup
        # drains up to this many datagrams into one submit_frame); 1 keeps
        # the per-datagram protocol path.
        self.ingest_batch = max(1, int(ingest_batch))
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._thread: Optional[threading.Thread] = None
        self._udp_socks: List[socket.socket] = []
        self._tcp_socks: List[socket.socket] = []
        self._transports: List = []
        self._servers: List = []
        self._readers: List[socket.socket] = []
        self.datagrams = 0
        self.tcp_connections = 0

    # -- binding -----------------------------------------------------------

    def listen_udp(self, host: str = "127.0.0.1", port: int = 0):
        sock = _bind_udp(host, port)
        self._udp_socks.append(sock)
        if self._loop is not None:
            self._run(self._serve_udp(sock))
        return sock.getsockname()

    def listen_tcp(self, host: str = "127.0.0.1", port: int = 0):
        sock = _bind_tcp(host, port)
        self._tcp_socks.append(sock)
        if self._loop is not None:
            self._run(self._serve_tcp(sock))
        return sock.getsockname()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AsyncioIngest":
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=runner, name="veridp-cluster-ingest", daemon=True
        )
        self._thread.start()
        started.wait(timeout=5)
        for sock in self._udp_socks:
            self._run(self._serve_udp(sock))
        for sock in self._tcp_socks:
            self._run(self._serve_tcp(sock))
        return self

    def stop(self) -> None:
        if self._loop is None:
            return
        loop = self._loop

        def shutdown() -> None:
            for transport in self._transports:
                transport.close()
            for server in self._servers:
                server.close()
            for sock in self._readers:
                try:
                    loop.remove_reader(sock)
                except (OSError, ValueError):  # pragma: no cover
                    pass
            loop.stop()

        loop.call_soon_threadsafe(shutdown)
        if self._thread is not None:
            self._thread.join(timeout=5)
        loop.close()
        self._loop = None
        for sock in self._udp_socks + self._tcp_socks:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def _run(self, coro) -> None:
        asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout=5)

    # -- protocols ---------------------------------------------------------

    async def _serve_udp(self, sock: socket.socket) -> None:
        if self.ingest_batch > 1:
            # Frame-native drain: one readability callback drains every
            # pending datagram (up to ingest_batch) into a preallocated
            # frame buffer and hands the frontend one frame.  The socket
            # is already non-blocking (_bind_udp).
            fb = FrameBuffer(self.ingest_batch)

            def on_readable() -> None:
                count, odd = drain_socket(sock, fb, self.ingest_batch)
                if not count:
                    return
                self.datagrams += count
                for payload, _nbytes in odd:
                    # Wrong-sized datagrams take the scalar path; submit()
                    # counts them as precheck-rejected, same as before.
                    self.frontend.submit(payload)
                if fb.rows:
                    self.frontend.submit_frame(Frame(fb.take()))

            self._loop.add_reader(sock, on_readable)
            self._readers.append(sock)
            return
        ingest = self

        class Proto(asyncio.DatagramProtocol):
            def datagram_received(self, data: bytes, addr) -> None:
                ingest.datagrams += 1
                ingest.frontend.submit(data)

        transport, _ = await self._loop.create_datagram_endpoint(
            Proto, sock=sock
        )
        self._transports.append(transport)

    async def _serve_tcp(self, sock: socket.socket) -> None:
        async def handle(reader, writer) -> None:
            self.tcp_connections += 1
            pending = b""
            try:
                while True:
                    chunk = await reader.read(65536)
                    if not chunk:
                        break
                    pending += chunk
                    if self.ingest_batch > 1:
                        # Submit the maximal aligned prefix as one frame.
                        cut = (len(pending) // REPORT_SIZE) * REPORT_SIZE
                        if cut:
                            self.frontend.submit_frame(Frame(pending[:cut]))
                            pending = pending[cut:]
                        continue
                    while len(pending) >= REPORT_SIZE:
                        self.frontend.submit(pending[:REPORT_SIZE])
                        pending = pending[REPORT_SIZE:]
            finally:
                writer.close()

        server = await asyncio.start_server(handle, sock=sock)
        self._servers.append(server)


class SelectorIngest:
    """``selectors``-based fallback engine with the same surface.

    One thread, one :class:`selectors.DefaultSelector`; exists for
    runtimes where asyncio cannot own a loop thread, and as the
    explicitly-selectable engine for A/B testing the two.
    """

    engine = "selectors"

    def __init__(
        self,
        frontend: ClusterFrontend,
        ingest_batch: int = DEFAULT_INGEST_BATCH,
    ) -> None:
        self.frontend = frontend
        self.ingest_batch = max(1, int(ingest_batch))
        self._selector = selectors.DefaultSelector()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._socks: List[socket.socket] = []
        self.datagrams = 0
        self.tcp_connections = 0

    def listen_udp(self, host: str = "127.0.0.1", port: int = 0):
        sock = _bind_udp(host, port)
        self._socks.append(sock)
        self._selector.register(sock, selectors.EVENT_READ, ("udp", None))
        return sock.getsockname()

    def listen_tcp(self, host: str = "127.0.0.1", port: int = 0):
        sock = _bind_tcp(host, port)
        self._socks.append(sock)
        self._selector.register(sock, selectors.EVENT_READ, ("accept", None))
        return sock.getsockname()

    def start(self) -> "SelectorIngest":
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="veridp-cluster-ingest", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5)
        for key in list(self._selector.get_map().values()):
            try:
                key.fileobj.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._selector.close()

    def _loop(self) -> None:
        buffers: Dict[socket.socket, bytes] = {}
        fbufs: Dict[socket.socket, FrameBuffer] = {}
        batched = self.ingest_batch > 1
        while self._running:
            for key, _events in self._selector.select(timeout=0.2):
                kind, _ = key.data
                sock = key.fileobj
                if kind == "udp":
                    if batched:
                        # Frame-native drain (same shape as AsyncioIngest):
                        # empty the socket into a preallocated buffer, one
                        # submit_frame per wakeup.
                        fb = fbufs.get(sock)
                        if fb is None:
                            fb = fbufs[sock] = FrameBuffer(self.ingest_batch)
                        count, odd = drain_socket(
                            sock, fb, self.ingest_batch
                        )
                        if not count:
                            continue
                        self.datagrams += count
                        for payload, _nbytes in odd:
                            self.frontend.submit(payload)
                        if fb.rows:
                            self.frontend.submit_frame(Frame(fb.take()))
                        continue
                    try:
                        data, _addr = sock.recvfrom(65536)
                    except OSError:
                        continue
                    self.datagrams += 1
                    self.frontend.submit(data)
                elif kind == "accept":
                    try:
                        conn, _addr = sock.accept()
                    except OSError:
                        continue
                    conn.setblocking(False)
                    self.tcp_connections += 1
                    buffers[conn] = b""
                    self._selector.register(
                        conn, selectors.EVENT_READ, ("tcp", None)
                    )
                else:  # tcp data
                    try:
                        chunk = sock.recv(65536)
                    except OSError:
                        chunk = b""
                    if not chunk:
                        self._selector.unregister(sock)
                        sock.close()
                        buffers.pop(sock, None)
                        continue
                    pending = buffers[sock] + chunk
                    if batched:
                        cut = (len(pending) // REPORT_SIZE) * REPORT_SIZE
                        if cut:
                            self.frontend.submit_frame(Frame(pending[:cut]))
                            pending = pending[cut:]
                    else:
                        while len(pending) >= REPORT_SIZE:
                            self.frontend.submit(pending[:REPORT_SIZE])
                            pending = pending[REPORT_SIZE:]
                    buffers[sock] = pending


def build_ingest(
    frontend: ClusterFrontend,
    engine: str = "auto",
    ingest_batch: int = DEFAULT_INGEST_BATCH,
):
    """Pick the ingest engine: ``asyncio`` (default), ``selectors``."""
    if engine == "auto":
        engine = "asyncio" if HAVE_ASYNCIO else "selectors"
    if engine == "asyncio":
        return AsyncioIngest(frontend, ingest_batch=ingest_batch)
    if engine == "selectors":
        return SelectorIngest(frontend, ingest_batch=ingest_batch)
    raise ValueError(f"unknown ingest engine {engine!r}")
