"""Cluster coordinator: membership, placement and convergence.

The coordinator is the only component that holds the *authoritative*
path table (inside its :class:`~repro.core.server.VeriDPServer`); the
nodes hold compiled replicas of disjoint slices of it.  Its job is to
keep three views consistent under churn:

* **the ring** — which node owns which routing key (``tenant:<name>`` or
  ``pair:<key>``), smoothed with virtual nodes,
* **the placement map** — the frontend's routing truth, only ever
  flipped *after* the destination replica holds the moved specs,
* **the replicas** — kept current with the table through the PR 5
  dirty-pair journal (``table.dirty_since``), shipped as ``MSG_PATCH``
  deltas with a full ``MSG_RELOAD`` fallback on journal overflow.

Rebalance invariant (DESIGN.md §14): a pair's spec reaches its new owner
**before** routing flips, and leaves its old owner only **after** a
post-flip drain — so a correctly-routed report never meets a replica
without its pair, and "unknown pair" on a node is always either a race
the coordinator resolves by authoritative re-ingest, or a genuinely
unknown pair which re-ingest will also verdict correctly.

Verdict accounting is exactly-once: node counts surface only through
flush replies (merged here, which also acks the frontend's un-acked
batches), a killed node's unflushed counts and unflushed batches are
discarded and redelivered together, and unknown-pair payloads are never
counted remotely — only by the coordinator's own re-ingest.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..core.daemon import build_pair_spec, replica_digest, wire_packing
from ..obs import MetricsRegistry, Observability
from .frontend import ClusterFrontend, routing_key_of
from .node import NodeHandle, start_node
from .protocol import (
    MSG_DIGEST,
    MSG_DIGEST_REPLY,
    MSG_FLUSH,
    MSG_FLUSH_REPLY,
    MSG_PATCH,
    MSG_PING,
    MSG_PONG,
    MSG_RELOAD,
    MessageStream,
)

__all__ = ["ClusterCoordinator"]

from ..core.verifier import Verdict

_SAMPLE_CAP = 256


class _Member:
    """One live node from the coordinator's side: handle + control stream."""

    def __init__(self, handle: NodeHandle, control: MessageStream) -> None:
        self.node_id = handle.node_id
        self.handle = handle
        self.control = control
        #: Serialises request/reply turns on the control stream.
        self.lock = threading.Lock()
        self._tokens = itertools.count(1)

    def token(self) -> int:
        return next(self._tokens)


class ClusterCoordinator:
    """Membership + placement + aggregation over verification nodes."""

    def __init__(
        self,
        server,
        frontend: Optional[ClusterFrontend] = None,
        node_mode: str = "thread",
        vector: Optional[bool] = None,
        vnodes: int = 64,
        heartbeat_timeout: float = 3.0,
    ) -> None:
        self.server = server
        self.frontend = frontend or ClusterFrontend(persist=server.persist)
        self.frontend.ring.vnodes = vnodes
        self.node_mode = node_mode
        self.vector = vector
        self.heartbeat_timeout = heartbeat_timeout
        self._packing = wire_packing(server.hs.layout)
        self._members: Dict[str, _Member] = {}
        self._lock = threading.RLock()  # membership + placement + resync
        self._ids = itertools.count(1)
        #: routing key -> {(in_wire, out_wire): spec} — the authoritative
        #: compiled view the replicas are sliced from.
        self._specs: Dict[str, Dict[Tuple[int, int], tuple]] = {}
        #: (in_wire, out_wire) -> owning tenant name ("" = unsliced).
        self._tenant: Dict[Tuple[int, int], str] = {}
        self._dirty_token = None
        self._replica_version = -1
        #: Merged node-side metrics (deltas folded in at every flush).
        self.registry = MetricsRegistry()
        # cluster ledger
        self.processed = 0
        self.malformed = 0
        self.crashed = 0
        self.counters = {v.value: 0 for v in Verdict}
        self.unknown_reingested = 0
        self.incidents: List[Tuple[bytes, str]] = []
        self.malformed_sample: List[bytes] = []
        # churn counters (the rebalance-scope assertions read these)
        self.rebalances = 0
        self.moved_pairs = 0
        self.rebalance_patches = 0
        self.failovers = 0
        self.redelivered = 0
        self.resyncs = 0
        self.resync_pairs = 0
        self.full_resyncs = 0
        self.resync_delta_bytes = 0
        self.flushes = 0
        self._bootstrap_specs()

    # -- authoritative spec view -------------------------------------------

    def _pair_wire(self, inport, outport) -> Tuple[int, int]:
        codec = self.server.codec
        return (codec.encode(inport), codec.encode(outport))

    def _tenant_of_port(self, outport) -> str:
        slices = self.server.slices
        if slices is None:
            return ""
        return slices.port_owner.get(outport, "")

    def _bootstrap_specs(self) -> None:
        """Compile the whole table into routing-key buckets (startup)."""
        server = self.server
        table = server.table
        for inport, outport in table.pairs():
            spec = build_pair_spec(table, server.hs, inport, outport)
            if spec is None:  # pragma: no cover - pairs() lists known keys
                continue
            self._admit_pair(inport, outport, spec)
        self._replica_version = table.version
        self._dirty_token = table.dirty_token()

    def _admit_pair(self, inport, outport, spec) -> str:
        """Index one compiled pair under its routing key; returns the key."""
        wire = self._pair_wire(inport, outport)
        tenant = self._tenant_of_port(outport)
        self._tenant[wire] = tenant
        key = routing_key_of((wire[0] << 16) | wire[1], tenant)
        self._specs.setdefault(key, {})[wire] = spec
        if tenant:
            self.frontend.tenant_of[(wire[0] << 16) | wire[1]] = tenant
        return key

    def _drop_pair(self, inport, outport) -> str:
        wire = self._pair_wire(inport, outport)
        tenant = self._tenant.pop(wire, "")
        key = routing_key_of((wire[0] << 16) | wire[1], tenant)
        bucket = self._specs.get(key)
        if bucket is not None:
            bucket.pop(wire, None)
            if not bucket:
                del self._specs[key]
                self.frontend.placement.pop(key, None)
        return key

    def _replica_of(self, node_id: str) -> Dict[Tuple[int, int], tuple]:
        """The replica node ``node_id`` *should* hold, per placement."""
        replica: Dict[Tuple[int, int], tuple] = {}
        for key, owner in self.frontend.placement.items():
            if owner == node_id:
                replica.update(self._specs.get(key, {}))
        return replica

    def _tagged(self, bucket: Dict[Tuple[int, int], tuple]) -> Dict:
        """Attach tenant tags: the node-side replica message shape."""
        return {
            wire: (spec, self._tenant.get(wire, "")) for wire, spec in bucket.items()
        }

    # -- membership --------------------------------------------------------

    def members(self) -> List[str]:
        with self._lock:
            return sorted(self._members)

    def start(self, nodes: int) -> List[str]:
        """Bootstrap: spawn ``nodes`` members (each join rebalances)."""
        return [self.add_node() for _ in range(nodes)]

    def add_node(self, node_id: Optional[str] = None) -> str:
        """Spawn + join one node, moving only the keys its arcs claim.

        Join order is the rebalance invariant in motion: (1) the new
        replica is loaded, (2) routing flips, (3) the old owners drain,
        (4) only then do the moved pairs leave the old replicas.
        """
        with self._lock:
            node_id = node_id or f"node-{next(self._ids)}"
            handle = start_node(
                node_id,
                self._packing,
                mode=self.node_mode,
                vector=self.vector,
            )
            control = MessageStream.connect(handle.address)
            member = _Member(handle, control)
            # 1. who loses keys to the newcomer?
            ring = self.frontend.ring
            moved: Dict[str, Optional[str]] = {}  # key -> old owner
            ring.add(node_id)
            try:
                for key in self._specs:
                    if ring.owner(key) == node_id:
                        moved[key] = self.frontend.placement.get(key)
            finally:
                ring.remove(node_id)
            # 2. load the new replica before any routing can reach it.
            replica: Dict[Tuple[int, int], tuple] = {}
            for key in moved:
                replica.update(self._specs.get(key, {}))
            control.send(MSG_RELOAD, self._tagged(replica))
            self._members[node_id] = member
            self.frontend.attach_node(node_id, handle.address)
            # 3. flip routing, drain the old owners.
            for key in moved:
                self.frontend.placement[key] = node_id
            old_owners = sorted({o for o in moved.values() if o})
            if old_owners:
                self.frontend.flush_buffers()
                self.flush()
                # 4. the moved pairs leave the old replicas.
                for owner in old_owners:
                    patch = {
                        wire: None
                        for key, old in moved.items()
                        if old == owner
                        for wire in self._specs.get(key, {})
                    }
                    if patch:
                        self._members[owner].control.send(MSG_PATCH, patch)
                        self.rebalance_patches += 1
                self.rebalances += 1
                self.moved_pairs += len(replica)
            return node_id

    def remove_node(self, node_id: str) -> None:
        """Graceful leave: drain, move the replica, stop the process."""
        with self._lock:
            member = self._members.get(node_id)
            if member is None:
                raise KeyError(f"unknown node {node_id!r}")
            moved = {
                key: owner
                for key, owner in self.frontend.placement.items()
                if owner == node_id
            }
            # Prospective owners, with the leaver off the ring.
            ring = self.frontend.ring
            ring.remove(node_id)
            try:
                new_owner_of = {key: ring.owner(key) for key in moved}
            finally:
                ring.add(node_id)
            # Ship the replica slices to the survivors first.
            patches: Dict[str, Dict] = {}
            for key, new_owner in new_owner_of.items():
                if new_owner is None:
                    continue
                patches.setdefault(new_owner, {}).update(
                    self._tagged(self._specs.get(key, {}))
                )
            for owner, patch in patches.items():
                self._members[owner].control.send(MSG_PATCH, patch)
                self.rebalance_patches += 1
            # Flip routing, then drain the leaver completely.
            for key, new_owner in new_owner_of.items():
                if new_owner is not None:
                    self.frontend.placement[key] = new_owner
            self.frontend.flush_buffers()
            self.flush()
            pending = self.frontend.detach_node(node_id)
            del self._members[node_id]
            if pending:  # pragma: no cover - drain above should empty it
                self.redelivered += self.frontend.redeliver(pending)
            if patches:
                self.rebalances += 1
                self.moved_pairs += sum(len(p) for p in patches.values())
            member.control.close()
            member.handle.stop()

    def kill_node(self, node_id: str) -> None:
        """Chaos hook: SIGKILL/stop the node with no drain whatsoever."""
        with self._lock:
            member = self._members.get(node_id)
        if member is None:
            raise KeyError(f"unknown node {node_id!r}")
        member.handle.kill()

    # -- failure detection -------------------------------------------------

    def check_nodes(self) -> List[str]:
        """Heartbeat every member; fail over the ones that are gone."""
        dead: List[str] = []
        with self._lock:
            for node_id, member in list(self._members.items()):
                if not member.handle.alive():
                    dead.append(node_id)
                    continue
                try:
                    with member.lock:
                        token = member.token()
                        member.control.send(MSG_PING, (token,))
                        mtype, body = member.control.recv(
                            timeout=self.heartbeat_timeout
                        )
                    if mtype != MSG_PONG or body[1] != token:
                        dead.append(node_id)
                except (OSError, ConnectionError):
                    dead.append(node_id)
            for node_id in dead:
                self._failover(node_id)
        return dead

    def _failover(self, node_id: str) -> None:
        """Reassign a dead node's keys and redeliver its un-acked work."""
        member = self._members.pop(node_id, None)
        if member is not None:
            member.control.close()
            member.handle.kill()
        orphaned = [
            key
            for key, owner in self.frontend.placement.items()
            if owner == node_id
        ]
        # detach first: takes the node off the ring so owner() below is
        # computed against the surviving membership, and surrenders the
        # un-acked batches (the dead node's unflushed counts died with it,
        # so redelivering these counts every verdict exactly once).
        pending = self.frontend.detach_node(node_id)
        patches: Dict[str, Dict] = {}
        for key in orphaned:
            new_owner = self.frontend.ring.owner(key)
            if new_owner is None:
                continue
            patches.setdefault(new_owner, {}).update(
                self._tagged(self._specs.get(key, {}))
            )
            self.frontend.placement[key] = new_owner
        for owner, patch in patches.items():
            self._members[owner].control.send(MSG_PATCH, patch)
        self.failovers += 1
        if pending:
            count = self.frontend.redeliver(pending)
            self.redelivered += count

    # -- replica resync (the PR 5 protocol over sockets) -------------------

    def resync(self) -> Optional[int]:
        """Bring replicas up to date with the table via the dirty journal.

        Returns patched-pair count, 0 when already current, ``None`` when
        the journal overflowed and full reloads were shipped instead.
        """
        with self._lock:
            server = self.server
            table = server.table
            if table.version == self._replica_version:
                return 0
            token, dirty = table.dirty_since(self._dirty_token)
            if dirty is None:
                # journal overflow / table swap: rebuild everything.
                self._specs.clear()
                self._tenant.clear()
                self.frontend.tenant_of.clear()
                self._bootstrap_specs()
                self._place_new_keys()
                for node_id, member in self._members.items():
                    body = self._tagged(self._replica_of(node_id))
                    self.resync_delta_bytes += member.control.send(
                        MSG_RELOAD, body
                    )
                for member in self._members.values():
                    self._await_applied(member)
                self.resyncs += 1
                self.full_resyncs += 1
                self._dirty_token = token
                self._replica_version = table.version
                return None
            patches: Dict[str, Dict] = {}
            for inport, outport in dirty:
                spec = build_pair_spec(table, server.hs, inport, outport)
                if spec is None:
                    # Resolve the owner BEFORE dropping: removing the last
                    # pair of a bucket also retires its placement entry,
                    # and the drop-patch must still reach the old owner.
                    wire = self._pair_wire(inport, outport)
                    tenant = self._tenant.get(wire, "")
                    key = routing_key_of((wire[0] << 16) | wire[1], tenant)
                    owner = self.frontend.placement.get(key)
                    if owner is None:
                        owner = self.frontend.ring.owner(key)
                    self._drop_pair(inport, outport)
                    if owner is not None:
                        patches.setdefault(owner, {})[wire] = None
                else:
                    key = self._admit_pair(inport, outport, spec)
                    wire = self._pair_wire(inport, outport)
                    owner = self.frontend.placement.get(key)
                    if owner is None:
                        owner = self.frontend.ring.owner(key)
                        if owner is not None:
                            self.frontend.placement[key] = owner
                    if owner is not None:
                        patches.setdefault(owner, {})[wire] = (
                            spec,
                            self._tenant.get(wire, ""),
                        )
            for node_id, patch in patches.items():
                member = self._members.get(node_id)
                if member is not None:
                    self.resync_delta_bytes += member.control.send(
                        MSG_PATCH, patch
                    )
            for node_id in patches:
                member = self._members.get(node_id)
                if member is not None:
                    self._await_applied(member)
            self.resyncs += 1
            self.resync_pairs += len(dirty)
            self._dirty_token = token
            self._replica_version = table.version
            return len(dirty)

    def _await_applied(self, member: _Member, timeout: float = 10.0) -> None:
        """Barrier: block until the member has applied every control
        message sent so far.

        ``MSG_PATCH``/``MSG_RELOAD`` carry no reply of their own, and
        batches travel on a *different* connection — so without a
        barrier, ``resync()`` could return while a node still verifies
        against its stale replica, and a batch dispatched immediately
        after would be judged by the old spec (wrong verdict, not
        unknown-pair).  The control stream is FIFO and the node applies
        each message under its state lock before reading the next, so a
        digest round-trip on the same stream proves the patches are
        live.  A dead member is left for ``check_nodes`` to fail over.
        """
        try:
            with member.lock:
                token = member.token()
                member.control.send(MSG_DIGEST, (token,))
                while True:
                    mtype, body = member.control.recv(timeout=timeout)
                    if mtype == MSG_DIGEST_REPLY and body[1] == token:
                        return
        except (OSError, ConnectionError):
            return

    def _place_new_keys(self) -> None:
        """Pin every un-placed routing key to its ring owner."""
        for key in self._specs:
            if key not in self.frontend.placement:
                owner = self.frontend.ring.owner(key)
                if owner is not None:
                    self.frontend.placement[key] = owner

    # -- flush / aggregation -----------------------------------------------

    def flush(self, timeout: float = 10.0) -> int:
        """Collect one round of results from every member; returns payloads
        folded in (verified + malformed + re-ingested unknowns)."""
        with self._lock:
            members = list(self._members.values())
        folded = 0
        for member in members:
            try:
                with member.lock:
                    token = member.token()
                    member.control.send(MSG_FLUSH, (token,))
                    while True:
                        mtype, body = member.control.recv(timeout=timeout)
                        if mtype == MSG_FLUSH_REPLY and body[1] == token:
                            break
            except (OSError, ConnectionError):
                continue  # check_nodes() will fail it over
            folded += self._merge_reply(body)
        self.flushes += 1
        return folded

    def _merge_reply(self, body) -> int:
        (
            node_id,
            _token,
            processed,
            malformed,
            counters,
            failures,
            crashed,
            unknown,
            malformed_sample,
            last_seq,
            snapshot,
        ) = body
        with self._lock:
            self.processed += processed
            self.malformed += malformed
            self.crashed += len(crashed)
            for verdict, count in counters.items():
                self.counters[verdict] += count
            for payload in malformed_sample:
                if len(self.malformed_sample) < _SAMPLE_CAP:
                    self.malformed_sample.append(payload)
            self.registry.merge(snapshot)
        self.frontend.ack(node_id, last_seq)
        # Failures re-ingest through the authoritative server for
        # localization (Algorithm 4) and incident logging; the cluster
        # verdict ledger already counted them from the node's counters.
        for payload, verdict in failures:
            self.incidents.append((payload, verdict))
            try:
                self.server.try_receive_report_bytes(payload, record=False)
            except Exception:  # pragma: no cover - localization is advisory
                pass
        # Unknown-pair payloads: only the authoritative table can verdict
        # these (routing race vs genuinely unknown pair).
        folded = processed + malformed
        for payload in unknown:
            incident = self.server.try_receive_report_bytes(
                payload, record=False
            )
            with self._lock:
                self.unknown_reingested += 1
                if incident is None:
                    self.malformed += 1
                else:
                    verdict = incident.verification.verdict.value
                    self.processed += 1
                    self.counters[verdict] += 1
                    if verdict != Verdict.PASS.value:
                        self.incidents.append((payload, verdict))
            folded += 1
        return folded

    def join(self, timeout: float = 30.0) -> None:
        """Flush until every dispatched batch is acked (end of stream)."""
        deadline = time.monotonic() + timeout
        while True:
            self.frontend.flush_buffers()
            self.flush()
            with self._lock:
                node_ids = list(self._members)
            outstanding = sum(
                sum(self.frontend.pending(node_id)) for node_id in node_ids
            )
            if outstanding == 0:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"cluster join timed out with {outstanding} pending"
                )
            time.sleep(0.01)

    # -- convergence -------------------------------------------------------

    def digests(self, timeout: float = 10.0) -> Dict[str, str]:
        """Each node's replica fingerprint, by node id."""
        out: Dict[str, str] = {}
        with self._lock:
            members = list(self._members.values())
        for member in members:
            with member.lock:
                token = member.token()
                member.control.send(MSG_DIGEST, (token,))
                while True:
                    mtype, body = member.control.recv(timeout=timeout)
                    if mtype == MSG_DIGEST_REPLY and body[1] == token:
                        break
            out[body[0]] = body[2]
        return out

    def expected_digests(self) -> Dict[str, str]:
        """What each node's fingerprint *must* be, from the placement map."""
        with self._lock:
            return {
                node_id: replica_digest(self._replica_of(node_id))
                for node_id in self._members
            }

    def converged(self) -> bool:
        return self.digests() == self.expected_digests()

    # -- exposure ----------------------------------------------------------

    def tenant_totals(self) -> Dict[str, float]:
        """Fleet-wide per-tenant report totals (node label summed out)."""
        snapshot = self.registry.snapshot()
        entry = snapshot.get("veridp_cluster_tenant_reports_total")
        totals: Dict[str, float] = {}
        if entry is None:
            return totals
        tenant_at = entry["labelnames"].index("tenant")
        for labels, value in entry["values"].items():
            tenant = labels[tenant_at]
            totals[tenant] = totals.get(tenant, 0) + value
        return totals

    def stats(self) -> Dict[str, object]:
        with self._lock:
            out: Dict[str, object] = {
                "nodes": len(self._members),
                "processed": self.processed,
                "malformed": self.malformed,
                "crashed": self.crashed,
                "counters": dict(self.counters),
                "unknown_reingested": self.unknown_reingested,
                "incidents": len(self.incidents),
                "rebalances": self.rebalances,
                "moved_pairs": self.moved_pairs,
                "rebalance_patches": self.rebalance_patches,
                "failovers": self.failovers,
                "redelivered": self.redelivered,
                "resyncs": self.resyncs,
                "resync_pairs": self.resync_pairs,
                "full_resyncs": self.full_resyncs,
                "resync_delta_bytes": self.resync_delta_bytes,
                "flushes": self.flushes,
            }
        out["frontend"] = self.frontend.stats()
        out["tenants"] = self.tenant_totals()
        return out

    def metrics_endpoint(self, host: str = "127.0.0.1", port: int = 0):
        """An HTTP ``/metrics`` endpoint over the merged node registries."""
        return Observability(registry=self.registry).endpoint(
            host=host, port=port, varz=self.stats
        )

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        with self._lock:
            node_ids = list(self._members)
        for node_id in node_ids:
            member = self._members.pop(node_id, None)
            if member is None:
                continue
            self.frontend.detach_node(node_id)
            member.control.close()
            member.handle.stop()
