"""A cluster verification node: one shard replica behind a TCP server.

This is the sharded daemon's ``_shard_worker_main`` promoted across a
process boundary: the same compiled pair-replica dict, the same vector
kernel (:class:`~repro.core.vector.WireBatchVerifier`) and the same
pair-delta / ``replica_digest`` resync protocol — but spoken over
length-prefixed sockets (:mod:`repro.cluster.protocol`) instead of
``multiprocessing`` queues, so a node can live in another process or on
another machine.

Differences from the in-process worker, all in service of exactly-once
verdict accounting under membership change (DESIGN.md §14):

* **batch seqs** — every ``MSG_BATCH`` carries the frontend's per-node
  sequence number; a ``MSG_FLUSH_REPLY`` reports the highest seq whose
  results it folds in, which is the frontend's ack to drop the batch from
  its redelivery buffer,
* **unknown pairs are not verdicts** — a payload whose ``(inport,
  outport)`` pair is absent from this node's replica is *shipped back*
  in the flush reply instead of being counted ``FAIL_UNKNOWN_PAIR``:
  during a rebalance the pair may simply be in flight to another node,
  and only the coordinator (holding the authoritative table) can tell a
  routing race from a genuinely unknown pair,
* **tenant attribution** — pair specs arrive tagged with their owning
  tenant, and the node counts per-tenant reports under a ``node`` label,
  so ``veridp_cluster_tenant_reports_total`` aggregates across the fleet
  by summing out the node label.

A node is deliberately ignorant of topology, codec and BDD manager — its
replica is flat integer arrays, exactly like a shard worker's.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..core.daemon import replica_digest, verify_wire
from ..core.vector import (
    HAVE_NUMPY as _HAVE_VECTOR,
    MIN_BATCH as _VECTOR_MIN_BATCH,
    VMALFORMED as _VCODE_MALFORMED,
    VSCALAR as _VCODE_SCALAR,
    VUNKNOWN as _VCODE_UNKNOWN,
    WireBatchVerifier,
)
from ..core.reports import REPORT_SIZE
from ..core.verifier import Verdict
from ..obs import DEFAULT_BUCKETS, MetricsRegistry
from .protocol import (
    MSG_BATCH,
    MSG_DIGEST,
    MSG_DIGEST_REPLY,
    MSG_FLUSH,
    MSG_FLUSH_REPLY,
    MSG_HELLO,
    MSG_HELLO_REPLY,
    MSG_PATCH,
    MSG_PING,
    MSG_PONG,
    MSG_RELOAD,
    MSG_STOP,
    MessageStream,
)

__all__ = ["VerificationNode", "NodeHandle", "start_node", "node_process_main"]

_PASS = Verdict.PASS.value
_FAIL_MISMATCH = Verdict.FAIL_TAG_MISMATCH.value
_FAIL_NO_PATH = Verdict.FAIL_NO_PATH.value

#: Bound on undecodable-payload samples shipped per flush (the count is
#: always exact; the evidence volume is capped, as in the sharded daemon).
_MALFORMED_SAMPLE = 64

_VCODE_TO_VALUE = (
    Verdict.PASS.value,
    Verdict.FAIL_TAG_MISMATCH.value,
    Verdict.FAIL_NO_PATH.value,
    Verdict.FAIL_UNKNOWN_PAIR.value,
)

try:  # the node runs fine without numpy (scalar matcher + python counts)
    import numpy as np
except Exception:  # pragma: no cover - exercised on numpy-free installs
    np = None


class VerificationNode:
    """One verification worker process/thread behind a TCP endpoint.

    The replica state (``pairs``, ``tenants``) and the pending result
    buffers are shared by every connection's reader thread under one
    lock, which also serialises batch verification — a node is a single
    logical verifier; concurrency across reports comes from running many
    nodes, not many threads per node.
    """

    def __init__(
        self,
        node_id: str,
        packing: Tuple[Tuple[int, int], ...],
        host: str = "127.0.0.1",
        port: int = 0,
        vector: Optional[bool] = None,
    ) -> None:
        self.node_id = node_id
        self._packing = tuple(packing)
        self.vector = _HAVE_VECTOR if vector is None else bool(vector) and _HAVE_VECTOR
        #: (in_wire, out_wire) -> compiled pair spec (the shard replica).
        self.pairs: Dict[Tuple[int, int], tuple] = {}
        #: (in_wire, out_wire) -> owning tenant name ("" = unsliced).
        self.tenants: Dict[Tuple[int, int], str] = {}
        self._state_lock = threading.Lock()
        self._wirev: Optional[WireBatchVerifier] = None
        if self.vector:
            try:
                self._wirev = WireBatchVerifier(self.pairs, self._packing)
            except Exception:  # pragma: no cover - defensive
                self._wirev = None
        # pending-result buffers (zeroed at every flush; the values at
        # flush time ARE the delta).
        self._counters = {v.value: 0 for v in Verdict}
        self._processed = 0
        self._malformed = 0
        self._last_seq = 0
        self._failures: List[Tuple[bytes, str]] = []
        self._crashed: List[Tuple[bytes, str]] = []
        self._unknown: List[bytes] = []
        self._malformed_sample: List[bytes] = []
        self.registry = MetricsRegistry()
        self._register_metrics()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._running = False
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._streams: List[MessageStream] = []

    def _register_metrics(self) -> None:
        node = self.node_id
        reg = self.registry
        self._batch_hist = reg.histogram(
            "veridp_node_batch_seconds",
            "Wall-clock seconds one cluster node spent verifying one batch.",
            ("node",),
            buckets=DEFAULT_BUCKETS,
        ).labels(node)
        self._batches_counter = reg.counter(
            "veridp_node_batches_total",
            "Batches a cluster node verified.",
            ("node",),
        ).labels(node)
        self._processed_counter = reg.counter(
            "veridp_node_processed_total",
            "Payloads a cluster node verified.",
            ("node",),
        ).labels(node)
        self._malformed_counter = reg.counter(
            "veridp_node_malformed_total",
            "Payloads a cluster node could not decode.",
            ("node",),
        ).labels(node)
        self._verdict_family = reg.counter(
            "veridp_node_verifications_total",
            "Cluster-node verdicts, by verdict and node.",
            ("node", "verdict"),
        )
        self._tenant_family = reg.counter(
            "veridp_cluster_tenant_reports_total",
            "Reports verified per owning tenant, by node (sum out the "
            "node label for the fleet-wide per-tenant totals).",
            ("node", "tenant"),
        )
        self._vector_reports = reg.counter(
            "veridp_node_vector_reports_total",
            "Payloads verified through the vector kernel, by node.",
            ("node",),
        ).labels(node)
        self._vector_fallback = reg.counter(
            "veridp_node_vector_fallback_total",
            "Vector-path downgrades to the scalar matcher, by node and "
            "kind (whole batch, single row, below-crossover batch).",
            ("node", "kind"),
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "VerificationNode":
        if self._running:
            return self
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"veridp-node-{self.node_id}-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass
        for stream in list(self._streams):
            stream.close()
        for thread in list(self._conn_threads):
            thread.join(timeout=2)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread (process mode)."""
        self._running = True
        self._accept_loop()

    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed during stop()
            stream = MessageStream(conn)
            self._streams.append(stream)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(stream,),
                name=f"veridp-node-{self.node_id}-conn",
                daemon=True,
            )
            thread.start()
            self._conn_threads.append(thread)

    def _serve_connection(self, stream: MessageStream) -> None:
        try:
            while self._running:
                try:
                    mtype, body = stream.recv(timeout=0.5)
                except socket.timeout:
                    continue
                if not self._handle(stream, mtype, body):
                    return
        except OSError:
            return  # peer went away; its un-acked batches will be redelivered
        finally:
            stream.close()
            if stream in self._streams:
                self._streams.remove(stream)

    # -- message handling --------------------------------------------------

    def _handle(self, stream: MessageStream, mtype: int, body) -> bool:
        if mtype == MSG_BATCH:
            seq, frame, odd = body
            with self._state_lock:
                self._verify_batch(frame, odd)
                if seq > self._last_seq:
                    self._last_seq = seq
        elif mtype == MSG_FLUSH:
            stream.send(MSG_FLUSH_REPLY, self._flush(body[0]))
        elif mtype == MSG_PATCH:
            with self._state_lock:
                for key, tagged in body.items():
                    if tagged is None:
                        self.pairs.pop(key, None)
                        self.tenants.pop(key, None)
                    else:
                        spec, tenant = tagged
                        self.pairs[key] = spec
                        self.tenants[key] = tenant or ""
                if self._wirev is not None:
                    self._wirev.invalidate(body.keys())
        elif mtype == MSG_RELOAD:
            with self._state_lock:
                self.pairs.clear()
                self.tenants.clear()
                for key, (spec, tenant) in body.items():
                    self.pairs[key] = spec
                    self.tenants[key] = tenant or ""
                if self._wirev is not None:
                    self._wirev.reload(self.pairs)
        elif mtype == MSG_DIGEST:
            with self._state_lock:
                digest = replica_digest(self.pairs)
            stream.send(MSG_DIGEST_REPLY, (self.node_id, body[0], digest))
        elif mtype == MSG_PING:
            stream.send(MSG_PONG, (self.node_id, body[0]))
        elif mtype == MSG_HELLO:
            with self._state_lock:
                count = len(self.pairs)
            stream.send(MSG_HELLO_REPLY, (self.node_id, count))
        elif mtype == MSG_STOP:
            self._running = False
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
            return False
        return True

    def _flush(self, token) -> tuple:
        """Snapshot-and-reset the pending results (holds the state lock)."""
        with self._state_lock:
            reply = (
                self.node_id,
                token,
                self._processed,
                self._malformed,
                dict(self._counters),
                self._failures,
                self._crashed,
                self._unknown,
                self._malformed_sample,
                self._last_seq,
                self.registry.snapshot(reset=True),
            )
            self._processed = 0
            self._malformed = 0
            self._counters = {v.value: 0 for v in Verdict}
            self._failures = []
            self._crashed = []
            self._unknown = []
            self._malformed_sample = []
        return reply

    # -- verification ------------------------------------------------------

    def _verify_scalar(self, payload: bytes) -> None:
        if len(payload) == REPORT_SIZE:
            key = (
                int.from_bytes(payload[2:4], "big"),
                int.from_bytes(payload[4:6], "big"),
            )
            if key not in self.pairs:
                # Not a verdict: the pair may be mid-migration.  Ship it
                # back; the coordinator holds the authoritative table.
                self._unknown.append(payload)
                return
        try:
            verdict = verify_wire(self.pairs, self._packing, payload)
        except Exception as exc:
            self._crashed.append((payload, f"{type(exc).__name__}: {exc}"))
            return
        if verdict is None:
            self._malformed += 1
            if len(self._malformed_sample) < _MALFORMED_SAMPLE:
                self._malformed_sample.append(payload)
            return
        self._account(payload, verdict)

    def _account(self, payload: bytes, verdict: str) -> None:
        self._processed += 1
        self._counters[verdict] += 1
        if verdict != _PASS:
            self._failures.append((payload, verdict))

    def _count_tenants(self, frame: bytes, n: int) -> None:
        """Per-tenant report attribution for one frame (numpy when present)."""
        if not self.tenants:
            return
        node = self.node_id
        if np is not None and n >= 64:
            rows = np.frombuffer(frame, dtype=np.uint8).reshape(n, REPORT_SIZE)
            keys = (
                rows[:, 2].astype(np.uint32) << 24
                | rows[:, 3].astype(np.uint32) << 16
                | rows[:, 4].astype(np.uint32) << 8
                | rows[:, 5].astype(np.uint32)
            )
            uniq, counts = np.unique(keys, return_counts=True)
            for key32, count in zip(uniq.tolist(), counts.tolist()):
                tenant = self.tenants.get((key32 >> 16, key32 & 0xFFFF))
                if tenant:
                    self._tenant_family.labels(node, tenant).inc(count)
            return
        for start in range(0, n * REPORT_SIZE, REPORT_SIZE):
            key = (
                int.from_bytes(frame[start + 2 : start + 4], "big"),
                int.from_bytes(frame[start + 4 : start + 6], "big"),
            )
            tenant = self.tenants.get(key)
            if tenant:
                self._tenant_family.labels(node, tenant).inc()

    def _verify_batch(self, frame: bytes, odd: List[bytes]) -> None:
        started = time.perf_counter()
        n = len(frame) // REPORT_SIZE
        node = self.node_id
        before = self._processed
        malformed_before = self._malformed
        counters_before = dict(self._counters)
        codes = None
        if self._wirev is not None and n:
            if n < _VECTOR_MIN_BATCH:
                self._vector_fallback.labels(node, "small").inc()
            else:
                try:
                    codes = self._wirev.verify_frame(frame)
                except Exception:
                    # A kernel bug must never change a verdict: redo the
                    # whole batch with the scalar matcher.
                    self._vector_fallback.labels(node, "batch").inc()
                    codes = None
        if codes is None:
            for start in range(0, len(frame), REPORT_SIZE):
                self._verify_scalar(frame[start : start + REPORT_SIZE])
        else:
            flagged = codes.nonzero()[0]
            pass_rows = n - flagged.shape[0]
            self._processed += pass_rows
            self._counters[_PASS] += pass_rows
            vector_rows = pass_rows
            for i in flagged.tolist():
                code = int(codes[i])
                payload = frame[i * REPORT_SIZE : (i + 1) * REPORT_SIZE]
                if code == _VCODE_SCALAR:
                    self._vector_fallback.labels(node, "row").inc()
                    self._verify_scalar(payload)
                elif code == _VCODE_MALFORMED:
                    self._malformed += 1
                    if len(self._malformed_sample) < _MALFORMED_SAMPLE:
                        self._malformed_sample.append(payload)
                elif code == _VCODE_UNKNOWN:
                    # Same routing-race rule as the scalar path: unknown
                    # pairs go back upstream, uncounted.
                    self._unknown.append(payload)
                else:
                    vector_rows += 1
                    self._account(payload, _VCODE_TO_VALUE[code])
            self._vector_reports.inc(vector_rows)
        for payload in odd:
            self._verify_scalar(payload)
        self._count_tenants(frame, n)
        self._processed_counter.inc(self._processed - before)
        malformed_delta = self._malformed - malformed_before
        if malformed_delta:
            self._malformed_counter.inc(malformed_delta)
        for verdict, count in self._counters.items():
            delta = count - counters_before[verdict]
            if delta:
                self._verdict_family.labels(node, verdict).inc(delta)
        self._batch_hist.observe(time.perf_counter() - started)
        self._batches_counter.inc()

    def stats(self) -> Dict[str, int]:
        with self._state_lock:
            return {
                "node_id": self.node_id,
                "pairs": len(self.pairs),
                "pending_processed": self._processed,
                "pending_malformed": self._malformed,
                "last_seq": self._last_seq,
                "vector": self._wirev is not None,
            }


# ---------------------------------------------------------------------------
# spawning
# ---------------------------------------------------------------------------


def node_process_main(
    node_id: str,
    packing: Tuple[Tuple[int, int], ...],
    address_pipe,
    host: str,
    vector: Optional[bool],
) -> None:
    """Entry point of a process-mode node: bind, report the port, serve."""
    node = VerificationNode(node_id, packing, host=host, vector=vector)
    address_pipe.send(node.address)
    address_pipe.close()
    node.serve_forever()


class NodeHandle:
    """How the coordinator holds a node it spawned: address + lifecycle.

    ``mode`` is ``"thread"`` (a :class:`VerificationNode` in this process
    — the CI smoke shape) or ``"process"`` (a forked process — the shape
    that actually scales past the GIL and can be SIGKILLed in chaos
    tests).  ``kill()`` is the chaos hook: it takes the node down without
    any drain, exactly like a machine failure.
    """

    def __init__(
        self,
        node_id: str,
        mode: str,
        address: Tuple[str, int],
        node: Optional[VerificationNode] = None,
        process=None,
    ) -> None:
        self.node_id = node_id
        self.mode = mode
        self.address = address
        self._node = node
        self._process = process

    def alive(self) -> bool:
        if self._process is not None:
            return self._process.is_alive()
        return self._node is not None and self._node._running

    def kill(self) -> None:
        """Chaos hook: no drain, no goodbye — the node just disappears."""
        if self._process is not None:
            self._process.kill()
            self._process.join(timeout=5)
        elif self._node is not None:
            self._node.stop()

    def stop(self) -> None:
        if self._process is not None:
            if self._process.is_alive():
                try:
                    MessageStream.connect(self.address, timeout=1.0).send(
                        MSG_STOP
                    )
                except OSError:
                    pass
                self._process.join(timeout=5)
            if self._process.is_alive():  # pragma: no cover - defensive
                self._process.kill()
                self._process.join(timeout=2)
        elif self._node is not None:
            self._node.stop()


def start_node(
    node_id: str,
    packing: Tuple[Tuple[int, int], ...],
    mode: str = "thread",
    host: str = "127.0.0.1",
    vector: Optional[bool] = None,
) -> NodeHandle:
    """Spawn one verification node and return its handle.

    Thread mode shares this process (cheap, GIL-bound — tests and small
    deployments); process mode forks a worker whose replica arrives over
    the socket via ``MSG_RELOAD``, so nothing needs to pickle at fork
    time and the same path serves future remote nodes.
    """
    if mode == "thread":
        node = VerificationNode(node_id, packing, host=host, vector=vector)
        node.start()
        return NodeHandle(node_id, mode, node.address, node=node)
    if mode != "process":
        raise ValueError(f"unknown node mode {mode!r}")
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=node_process_main,
        args=(node_id, packing, child_conn, host, vector),
        name=f"veridp-node-{node_id}",
        daemon=True,
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(10.0):
        process.kill()
        raise RuntimeError(f"node {node_id} did not report its address")
    address = parent_conn.recv()
    parent_conn.close()
    return NodeHandle(node_id, mode, address, process=process)
