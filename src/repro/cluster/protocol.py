"""The cluster wire protocol: length-prefixed messages over TCP.

Every conversation between the ingestion frontend, the verification nodes
and the coordinator uses one frame shape::

    +---------+----------+------------------+
    | len: u32| type: u8 | body (pickled)   |
    +---------+----------+------------------+

``len`` counts the body bytes only (the type byte is fixed overhead), so a
reader can allocate exactly once per message.  Bodies are pickled Python
objects — the cluster is a cooperating set of processes started from the
same codebase, exactly like the ``multiprocessing`` queues it replaces, so
pickle's trust model is unchanged; what changes is that the two ends may
now live on different hosts.

Report *batches* ride inside a message as one concatenated frame of
``REPORT_SIZE``-stride payloads plus a (normally empty) list of wrong-sized
oddballs — the same packing the sharded daemon's worker queues use, so the
vector kernel can skip the per-payload length screen on the far side.

Delivery semantics are built on two facts the node guarantees:

* messages on one connection are processed in arrival order,
* batch results only become visible upstream through a ``FLUSH_REPLY``,
  which carries the highest batch ``seq`` folded into that reply.

The frontend keeps every dispatched batch un-acked until a merged flush
reply covers its seq; a node that dies mid-stream loses its *unflushed*
counts along with its unflushed batches, so redelivering the un-acked
batches to the surviving nodes counts every verdict exactly once (no lost
and no duplicated verdicts — see DESIGN.md §14).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Optional, Tuple

__all__ = [
    "MessageStream",
    "ProtocolError",
    "MSG_HELLO",
    "MSG_HELLO_REPLY",
    "MSG_BATCH",
    "MSG_FLUSH",
    "MSG_FLUSH_REPLY",
    "MSG_PATCH",
    "MSG_RELOAD",
    "MSG_DIGEST",
    "MSG_DIGEST_REPLY",
    "MSG_PING",
    "MSG_PONG",
    "MSG_STOP",
    "message_name",
]

# -- message types ----------------------------------------------------------

MSG_HELLO = 1  # (sender_kind,) -> expects MSG_HELLO_REPLY
MSG_HELLO_REPLY = 2  # (node_id, pair_count)
MSG_BATCH = 3  # (seq, frame, odd) — verify, no reply
MSG_FLUSH = 4  # (token,) -> expects MSG_FLUSH_REPLY
MSG_FLUSH_REPLY = 5  # FlushReply-shaped tuple (see node.py)
MSG_PATCH = 6  # {pair_key: (spec, tenant) | None} — apply delta, no reply
MSG_RELOAD = 7  # {pair_key: (spec, tenant)} — replace replica, no reply
MSG_DIGEST = 8  # (token,) -> expects MSG_DIGEST_REPLY
MSG_DIGEST_REPLY = 9  # (node_id, token, sha1hex)
MSG_PING = 10  # (seq,) -> expects MSG_PONG
MSG_PONG = 11  # (node_id, seq)
MSG_STOP = 12  # () — node exits its serve loop

_NAMES = {
    MSG_HELLO: "hello",
    MSG_HELLO_REPLY: "hello_reply",
    MSG_BATCH: "batch",
    MSG_FLUSH: "flush",
    MSG_FLUSH_REPLY: "flush_reply",
    MSG_PATCH: "patch",
    MSG_RELOAD: "reload",
    MSG_DIGEST: "digest",
    MSG_DIGEST_REPLY: "digest_reply",
    MSG_PING: "ping",
    MSG_PONG: "pong",
    MSG_STOP: "stop",
}

_HEADER = struct.Struct(">IB")

#: Hard ceiling on one message body; a length prefix past this is treated
#: as stream corruption rather than an allocation request.
MAX_BODY = 256 * 1024 * 1024


def message_name(mtype: int) -> str:
    return _NAMES.get(mtype, f"type-{mtype}")


class ProtocolError(ConnectionError):
    """The peer sent bytes that cannot be a protocol frame."""


class MessageStream:
    """A blocking, thread-safe message pipe over one TCP socket.

    ``send`` may be called from any thread (serialised by a lock);
    ``recv`` is expected to have a single reader per stream (the node's
    per-connection thread, or the coordinator's request/reply turn).
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_buffer = b""
        self.sent_messages = 0
        self.sent_bytes = 0
        self.received_messages = 0

    @classmethod
    def connect(
        cls, address: Tuple[str, int], timeout: Optional[float] = 10.0
    ) -> "MessageStream":
        sock = socket.create_connection(address, timeout=timeout)
        sock.settimeout(None)
        return cls(sock)

    # -- sending -----------------------------------------------------------

    def send(self, mtype: int, body: Any = ()) -> int:
        """Frame and send one message; returns the body size in bytes."""
        blob = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(len(blob), mtype)
        with self._send_lock:
            self._sock.sendall(header + blob)
            self.sent_messages += 1
            self.sent_bytes += len(blob) + _HEADER.size
        return len(blob)

    # -- receiving ---------------------------------------------------------

    def _recv_exact(self, count: int) -> bytes:
        """Read exactly ``count`` bytes or raise ``ConnectionError`` on EOF."""
        while len(self._recv_buffer) < count:
            chunk = self._sock.recv(max(4096, count - len(self._recv_buffer)))
            if not chunk:
                raise ConnectionError("peer closed the stream mid-message")
            self._recv_buffer += chunk
        out, self._recv_buffer = (
            self._recv_buffer[:count],
            self._recv_buffer[count:],
        )
        return out

    def recv(self, timeout: Optional[float] = None) -> Tuple[int, Any]:
        """Read one ``(type, body)`` message.

        ``timeout`` bounds the wait for the *start* of a message (used by
        request/reply turns); ``socket.timeout`` propagates to the caller.
        """
        self._sock.settimeout(timeout)
        try:
            header = self._recv_exact(_HEADER.size)
            length, mtype = _HEADER.unpack(header)
            if length > MAX_BODY:
                raise ProtocolError(
                    f"frame announces {length} body bytes (corrupt stream?)"
                )
            body = pickle.loads(self._recv_exact(length)) if length else ()
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:  # closed under us mid-recv; the raise stands
                pass
        self.received_messages += 1
        return mtype, body

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
