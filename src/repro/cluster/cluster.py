"""One-call cluster assembly: server + frontend + nodes + coordinator.

:class:`VeriDPCluster` wires the pieces of this package into the shape
the CLI, the tests and the benchmarks all use: an authoritative
:class:`~repro.core.server.VeriDPServer`, a :class:`ClusterFrontend`
with an ingest engine, ``nodes`` verification members and one
:class:`ClusterCoordinator`.  It exposes the daemon-flavoured surface
(``submit`` / ``join`` / ``stats`` / ``stop``) plus the cluster-only
verbs (``kill_node`` / ``add_node`` / ``remove_node`` / ``resync``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .coordinator import ClusterCoordinator
from .frontend import ClusterFrontend, build_ingest

__all__ = ["VeriDPCluster"]


class VeriDPCluster:
    """A whole verification cluster behind one object."""

    def __init__(
        self,
        server,
        nodes: int = 3,
        node_mode: str = "thread",
        engine: str = "auto",
        batch_size: int = 256,
        ingest_batch: Optional[int] = None,
        vector: Optional[bool] = None,
        vnodes: int = 64,
        persist=None,
        observer=None,
    ) -> None:
        self.server = server
        self.frontend = ClusterFrontend(
            batch_size=batch_size,
            persist=persist if persist is not None else server.persist,
            observer=observer,
        )
        self.coordinator = ClusterCoordinator(
            server,
            frontend=self.frontend,
            node_mode=node_mode,
            vector=vector,
            vnodes=vnodes,
        )
        if ingest_batch is None:
            self.ingest = build_ingest(self.frontend, engine=engine)
        else:
            self.ingest = build_ingest(
                self.frontend, engine=engine, ingest_batch=ingest_batch
            )
        self._running = False
        self._initial_nodes = nodes

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "VeriDPCluster":
        if self._running:
            return self
        self.coordinator.start(self._initial_nodes)
        self.ingest.start()
        self._running = True
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self.ingest.stop()
        self.coordinator.stop()

    def __enter__(self) -> "VeriDPCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- ingestion ---------------------------------------------------------

    def listen_udp(self, host: str = "127.0.0.1", port: int = 0):
        return self.ingest.listen_udp(host, port)

    def listen_tcp(self, host: str = "127.0.0.1", port: int = 0):
        return self.ingest.listen_tcp(host, port)

    def submit(self, payload: bytes) -> bool:
        return self.frontend.submit(payload)

    def submit_frame(self, frame) -> int:
        return self.frontend.submit_frame(frame)

    def submit_many(self, payloads) -> int:
        count = 0
        for payload in payloads:
            if self.frontend.submit(payload):
                count += 1
        return count

    # -- orchestration (delegation) ----------------------------------------

    def join(self, timeout: float = 30.0) -> None:
        self.coordinator.join(timeout=timeout)

    def flush(self, timeout: float = 10.0) -> int:
        return self.coordinator.flush(timeout=timeout)

    def resync(self):
        return self.coordinator.resync()

    def add_node(self, node_id: Optional[str] = None) -> str:
        return self.coordinator.add_node(node_id)

    def remove_node(self, node_id: str) -> None:
        self.coordinator.remove_node(node_id)

    def kill_node(self, node_id: str) -> None:
        self.coordinator.kill_node(node_id)

    def check_nodes(self) -> List[str]:
        return self.coordinator.check_nodes()

    def nodes(self) -> List[str]:
        return self.coordinator.members()

    def converged(self) -> bool:
        return self.coordinator.converged()

    def stats(self) -> Dict[str, object]:
        out = self.coordinator.stats()
        out["engine"] = self.ingest.engine
        return out

    def metrics_endpoint(self, host: str = "127.0.0.1", port: int = 0):
        return self.coordinator.metrics_endpoint(host=host, port=port)
