"""Consistent-hash ring with virtual nodes (the cluster's placement law).

Placement must satisfy two properties the plain ``hash % N`` sharding of
the in-process daemon cannot give a *cluster*:

* **membership-local movement** — adding or removing one node may only
  move the keys that land on that node's arc, roughly ``pairs / N`` of
  them, instead of reshuffling almost everything (which would force a
  near-full replica resync on every join/leave),
* **determinism across processes** — the frontend, the coordinator and
  any test harness must compute the same owner for the same key with no
  shared state, so the ring hashes with SHA-1 over stable strings, never
  Python's per-process ``hash()``.

Virtual nodes smooth the arc sizes: each member contributes ``vnodes``
points, so the largest share over the smallest stays within a small
factor even at 2-3 members.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

__all__ = ["HashRing"]


def _point(value: str) -> int:
    """64-bit ring position of a string (stable across processes)."""
    return int.from_bytes(hashlib.sha1(value.encode()).digest()[:8], "big")


class HashRing:
    """Map string keys onto member names, consistently under churn."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []  # sorted (position, member)
        self._keys: List[int] = []  # positions only (bisect view)
        self._members: Dict[str, List[int]] = {}

    # -- membership --------------------------------------------------------

    def add(self, member: str) -> None:
        if member in self._members:
            raise ValueError(f"member {member!r} already on the ring")
        positions = []
        for v in range(self.vnodes):
            position = _point(f"{member}#{v}")
            bisect.insort(self._points, (position, member))
            positions.append(position)
        self._members[member] = positions
        self._keys = [p for p, _ in self._points]

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise KeyError(f"member {member!r} is not on the ring")
        del self._members[member]
        self._points = [(p, m) for p, m in self._points if m != member]
        self._keys = [p for p, _ in self._points]

    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    # -- placement ---------------------------------------------------------

    def owner(self, key: str) -> Optional[str]:
        """The member owning ``key`` (first point clockwise), None if empty."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._keys, _point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def shares(self, sample_keys) -> Dict[str, int]:
        """Owner histogram over ``sample_keys`` (balance diagnostics)."""
        counts: Dict[str, int] = {m: 0 for m in self._members}
        for key in sample_keys:
            owner = self.owner(key)
            if owner is not None:
                counts[owner] += 1
        return counts
