"""Detection-latency experiments — Section 4.5's bound, measured.

The paper's Figure 9 argues the worst-case detection latency under per-flow
sampling is ``T_s + T_a`` (sampling interval plus maximum inter-packet
gap), and that operators should size ``T_s <= tau - T_a`` for a latency
budget ``tau``.  The paper never measures this; this harness does:

* a steady workload of long-lived flows ticks through a network,
* at a known instant, a rule on an active flow's path is corrupted,
* the detection latency is the gap between fault injection and the first
  failed verification at the VeriDP server,
* repeated over many trials and swept over sampling intervals, yielding the
  operator's real trade-off curve: detection latency vs tagging overhead
  (the fraction of packets sampled).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.sampling import FlowSampler, worst_case_detection_latency
from ..core.server import VeriDPServer
from ..dataplane.network import DataPlaneNetwork
from ..dataplane.switch import DataPlaneSwitch
from ..netmodel.rules import FlowRule
from ..topologies.base import Scenario

__all__ = ["LatencyTrialResult", "measure_detection_latency", "sweep_sampling_intervals"]


@dataclass
class LatencyTrialResult:
    """Aggregated detection latencies for one sampling interval."""

    sampling_interval: float
    packet_period: float
    latencies: List[float] = field(default_factory=list)
    undetected: int = 0
    sampling_rate: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Average detection latency over detected trials."""
        return statistics.fmean(self.latencies) if self.latencies else float("inf")

    @property
    def max_latency(self) -> float:
        """Worst observed detection latency."""
        return max(self.latencies) if self.latencies else float("inf")

    @property
    def theoretical_bound(self) -> float:
        """The Section 4.5 worst case: ``T_s + T_a``.

        With a strictly periodic workload the inter-arrival gap equals the
        packet period.
        """
        return worst_case_detection_latency(
            self.sampling_interval, self.packet_period
        )

    def __str__(self) -> str:
        return (
            f"T_s={self.sampling_interval:.2f}s: mean {self.mean_latency:.2f}s, "
            f"max {self.max_latency:.2f}s (bound {self.theoretical_bound:.2f}s), "
            f"sampling rate {100 * self.sampling_rate:.1f}%"
        )


def _fault_on_flow(
    scenario: Scenario,
    net: DataPlaneNetwork,
    flow: Tuple[str, str],
    rng: random.Random,
) -> Tuple[str, FlowRule]:
    """Corrupt a mid-path rule of the given flow; returns (switch, original)."""
    header = scenario.header_between(*flow)
    probe = net.inject_from_host(flow[0], header)
    hop = rng.choice(probe.hops[1:] or probe.hops)
    switch: DataPlaneSwitch = net.switch(hop.switch)
    rule = switch.table.lookup(header, hop.in_port)
    original = rule
    wrong_ports = sorted(switch.ports - {rule.output_port()})
    switch.external_modify_output(rule.rule_id, rng.choice(wrong_ports))
    return hop.switch, original


def measure_detection_latency(
    scenario: Scenario,
    sampling_interval: float,
    trials: int = 10,
    packet_period: float = 0.1,
    num_flows: int = 20,
    seed: int = 0,
) -> LatencyTrialResult:
    """Measure detection latency for one sampling interval.

    Each trial runs the steady workload, injects one mid-path fault at a
    random phase of the sampling cycle, and ticks until detection (bounded
    by twice the theoretical worst case — anything beyond counts as
    undetected, which would falsify the Section 4.5 bound).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = random.Random(seed)
    result = LatencyTrialResult(
        sampling_interval=sampling_interval, packet_period=packet_period
    )

    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    samplers: List[FlowSampler] = []

    def sampler_factory(switch_id: str) -> FlowSampler:
        sampler = FlowSampler(default_interval=sampling_interval)
        samplers.append(sampler)
        return sampler

    net = DataPlaneNetwork(
        scenario.topo,
        scenario.channel,
        report_sink=server.receive_report_bytes,
        sampler_factory=sampler_factory,
    )
    hosts = scenario.topo.hosts()
    flows = [tuple(rng.sample(hosts, 2)) for _ in range(num_flows)]
    bound = worst_case_detection_latency(sampling_interval, packet_period)
    clock = 0.0

    def tick() -> None:
        nonlocal clock
        for src, dst in flows:
            net.inject_from_host(src, scenario.header_between(src, dst), now=clock)
        clock += packet_period

    # Warm the samplers so trials start mid-cycle, not at the all-sampled
    # first packet.
    warmup_ticks = max(int(sampling_interval / packet_period) + 1, 2)
    for _ in range(warmup_ticks):
        tick()
    server.drain_incidents()

    for _ in range(trials):
        # Random phase offset within the sampling cycle.
        for _ in range(rng.randrange(warmup_ticks)):
            tick()
        server.drain_incidents()
        victim_switch, original = _fault_on_flow(
            scenario, net, rng.choice(flows), rng
        )
        server.drain_incidents()  # discard the probe used to find the rule
        fault_time = clock
        detected_at: Optional[float] = None
        while clock - fault_time <= 2 * bound + packet_period:
            tick()
            if server.drain_incidents():
                detected_at = clock
                break
        if detected_at is None:
            result.undetected += 1
        else:
            result.latencies.append(detected_at - fault_time)
        # Heal for the next trial.
        net.switch(victim_switch).install(original)
        server.drain_incidents()

    seen = sum(s.seen_count for s in samplers)
    sampled = sum(s.sampled_count for s in samplers)
    result.sampling_rate = (sampled / seen) if seen else 0.0
    return result


def sweep_sampling_intervals(
    scenario_factory,
    intervals: Sequence[float],
    trials: int = 10,
    packet_period: float = 0.1,
    seed: int = 0,
) -> List[LatencyTrialResult]:
    """The trade-off curve: one latency measurement per sampling interval.

    A fresh scenario per point keeps sampler state independent.
    """
    return [
        measure_detection_latency(
            scenario_factory(),
            sampling_interval=interval,
            trials=trials,
            packet_period=packet_period,
            seed=seed,
        )
        for interval in intervals
    ]
