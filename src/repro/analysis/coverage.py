"""Verification coverage: how much of the configuration has been checked?

VeriDP only validates what sampled traffic exercises — a corrupted rule on
a path no flow currently uses stays invisible (the Table 3 campaigns show
exactly this: faults off the ping paths produce zero failed verifications).
Operators therefore need the complement of the incident log: *which parts
of the path table have actually been verified recently, and which are dark*.

:class:`CoverageTracker` consumes the same verification results the server
produces and reports per-path, per-hop and per-switch coverage, plus the
dark list — the paths a probing round (ATPG-style) should exercise to close
the gap.  This operationalises the paper's implicit sampling/coverage
trade-off and composes with :mod:`repro.baselines.atpg` for active filling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.pathtable import PathEntry, PathTable
from ..core.verifier import VerificationResult
from ..netmodel.hops import Hop
from ..netmodel.topology import PortRef

__all__ = ["CoverageReport", "CoverageTracker"]


@dataclass
class CoverageReport:
    """Snapshot of verification coverage over one path table."""

    total_paths: int
    verified_paths: int
    total_hops: int
    verified_hops: int
    dark_paths: List[Tuple[PortRef, PortRef, PathEntry]] = field(default_factory=list)
    switch_coverage: Dict[str, float] = field(default_factory=dict)

    @property
    def path_coverage(self) -> float:
        """Fraction of path-table entries verified at least once."""
        return self.verified_paths / self.total_paths if self.total_paths else 0.0

    @property
    def hop_coverage(self) -> float:
        """Fraction of distinct hops appearing on some verified path."""
        return self.verified_hops / self.total_hops if self.total_hops else 0.0

    def __str__(self) -> str:
        return (
            f"coverage: {self.verified_paths}/{self.total_paths} paths "
            f"({100 * self.path_coverage:.1f}%), "
            f"{self.verified_hops}/{self.total_hops} hops "
            f"({100 * self.hop_coverage:.1f}%), {len(self.dark_paths)} dark"
        )


class CoverageTracker:
    """Track which path-table entries passing traffic has validated."""

    def __init__(self, table: PathTable) -> None:
        self.table = table
        self._verified_entries: Set[int] = set()  # id() of PathEntry objects
        self._verified_hops: Set[Hop] = set()
        self.observations = 0

    # -- ingestion ---------------------------------------------------------

    def observe(self, result: VerificationResult) -> None:
        """Record one verification outcome.

        Only *passes* mark coverage: a failed verification tells you about
        a fault, not about the configured path working as intended.
        """
        self.observations += 1
        if not result.passed or result.matched_entry is None:
            return
        entry = result.matched_entry
        self._verified_entries.add(id(entry))
        self._verified_hops.update(entry.hops)

    def observe_all(self, results) -> None:
        """Record a batch of verification results."""
        for result in results:
            self.observe(result)

    # -- reporting -----------------------------------------------------------

    def report(self) -> CoverageReport:
        """Aggregate the current coverage picture."""
        all_hops: Set[Hop] = set()
        switch_total: Dict[str, int] = {}
        switch_hit: Dict[str, int] = {}
        total_paths = 0
        verified_paths = 0
        dark: List[Tuple[PortRef, PortRef, PathEntry]] = []
        for inport, outport, entry in self.table.all_entries():
            total_paths += 1
            covered = id(entry) in self._verified_entries
            if covered:
                verified_paths += 1
            else:
                dark.append((inport, outport, entry))
            for hop in entry.hops:
                all_hops.add(hop)
                switch_total[hop.switch] = switch_total.get(hop.switch, 0) + 1
                if hop in self._verified_hops:
                    switch_hit[hop.switch] = switch_hit.get(hop.switch, 0) + 1
        # Deduplicate the per-switch tallies over distinct hops.
        switch_total_d: Dict[str, int] = {}
        switch_hit_d: Dict[str, int] = {}
        for hop in all_hops:
            switch_total_d[hop.switch] = switch_total_d.get(hop.switch, 0) + 1
            if hop in self._verified_hops:
                switch_hit_d[hop.switch] = switch_hit_d.get(hop.switch, 0) + 1
        coverage = {
            switch: switch_hit_d.get(switch, 0) / count
            for switch, count in switch_total_d.items()
        }
        return CoverageReport(
            total_paths=total_paths,
            verified_paths=verified_paths,
            total_hops=len(all_hops),
            verified_hops=len(self._verified_hops & all_hops),
            dark_paths=dark,
            switch_coverage=coverage,
        )

    def dark_switches(self, threshold: float = 0.5) -> List[str]:
        """Switches with less than ``threshold`` of their hops verified."""
        report = self.report()
        return sorted(
            switch
            for switch, fraction in report.switch_coverage.items()
            if fraction < threshold
        )

    def reset(self) -> None:
        """Forget all coverage (e.g. after a configuration change)."""
        self._verified_entries.clear()
        self._verified_hops.clear()
        self.observations = 0
