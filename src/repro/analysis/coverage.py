"""Verification coverage: how much of the configuration has been checked?

VeriDP only validates what sampled traffic exercises — a corrupted rule on
a path no flow currently uses stays invisible (the Table 3 campaigns show
exactly this: faults off the ping paths produce zero failed verifications).
Operators therefore need the complement of the incident log: *which parts
of the path table have actually been verified recently, and which are dark*.

:class:`CoverageTracker` consumes the same verification results the server
produces and reports per-pair, per-path, per-hop and per-switch coverage,
plus the dark list — the paths a probing round should exercise to close the
gap.  The server wires one in on the report path and exposes the numbers as
``veridp_coverage_*`` gauges; :class:`repro.probe.prober.ActiveProber`
drives its closed loop off :attr:`CoverageReport.dark_paths`.

Coverage rides the path table's dirty-pair journal: when incremental rule
updates mutate a pair's entries, that pair's accumulated coverage is
invalidated (the old verifications vouched for paths that no longer exist),
so after a staged flush only the dirty pairs go dark again — which is what
lets the prober re-probe exactly the changed slice of the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.pathtable import PathEntry, PathTable
from ..core.verifier import VerificationResult
from ..netmodel.hops import Hop
from ..netmodel.topology import PortRef

__all__ = ["CoverageReport", "CoverageTracker"]

#: An (inport, outport) edge-port pair — the path table's key.
Pair = Tuple[PortRef, PortRef]


@dataclass
class CoverageReport:
    """Snapshot of verification coverage over one path table."""

    total_paths: int
    verified_paths: int
    total_hops: int
    verified_hops: int
    total_pairs: int = 0
    verified_pairs: int = 0
    dark_paths: List[Tuple[PortRef, PortRef, PathEntry]] = field(default_factory=list)
    dark_pairs: List[Pair] = field(default_factory=list)
    switch_coverage: Dict[str, float] = field(default_factory=dict)

    @property
    def path_coverage(self) -> float:
        """Fraction of path-table entries verified at least once."""
        return self.verified_paths / self.total_paths if self.total_paths else 0.0

    @property
    def pair_coverage(self) -> float:
        """Fraction of (inport, outport) pairs with every entry verified."""
        return self.verified_pairs / self.total_pairs if self.total_pairs else 0.0

    @property
    def hop_coverage(self) -> float:
        """Fraction of distinct hops appearing on some verified path."""
        return self.verified_hops / self.total_hops if self.total_hops else 0.0

    def __str__(self) -> str:
        return (
            f"coverage: {self.verified_paths}/{self.total_paths} paths "
            f"({100 * self.path_coverage:.1f}%), "
            f"{self.verified_pairs}/{self.total_pairs} pairs, "
            f"{self.verified_hops}/{self.total_hops} hops "
            f"({100 * self.hop_coverage:.1f}%), {len(self.dark_paths)} dark"
        )


class CoverageTracker:
    """Track which path-table entries passing traffic has validated."""

    def __init__(self, table: PathTable) -> None:
        self.table = table
        self._verified_entries: Set[int] = set()  # id() of PathEntry objects
        self._verified_by_pair: Dict[Pair, Set[int]] = {}
        self._verified_hops: Set[Hop] = set()
        self.observations = 0
        #: Dirty-journal cursor: coverage recorded before this point has
        #: been reconciled against subsequent table mutations.
        self._token: Optional[Tuple[int, int]] = table.dirty_token()
        self.invalidated_pairs = 0
        self.full_invalidations = 0
        # report() memo: recomputing the O(table) aggregate on every metric
        # scrape would be wasteful; the key changes whenever the table, the
        # observation stream, or an invalidation does.
        self._gen = 0
        self._report_key: Optional[tuple] = None
        self._report_cache: Optional[CoverageReport] = None
        #: Optional ``(inport, outport, entry) -> tenant name`` hook (see
        #: :meth:`repro.slice.registry.SliceRegistry.entry_resolver`);
        #: enables the per-tenant :meth:`dark_paths` filter.
        self.tenant_resolver: Optional[
            Callable[[PortRef, PortRef, PathEntry], Optional[str]]
        ] = None

    # -- ingestion ---------------------------------------------------------

    def observe(self, result: VerificationResult) -> None:
        """Record one verification outcome.

        Only *passes* mark coverage: a failed verification tells you about
        a fault, not about the configured path working as intended.
        """
        self.observations += 1
        if not result.passed or result.matched_entry is None:
            return
        entry = result.matched_entry
        self._verified_entries.add(id(entry))
        if result.report is not None:
            pair = (result.report.inport, result.report.outport)
            self._verified_by_pair.setdefault(pair, set()).add(id(entry))
        self._verified_hops.update(entry.hops)

    def observe_all(self, results) -> None:
        """Record a batch of verification results."""
        for result in results:
            self.observe(result)

    # -- dirty-journal reconciliation ----------------------------------------

    def sync(self) -> Optional[List[Pair]]:
        """Drop coverage for pairs the table mutated since the last sync.

        Incremental updates edit entries in place (same ``id()``), so
        without this a rule change would leave the *old* path's verification
        vouching for the *new* path.  Returns the invalidated pairs, or
        ``None`` when the journal overflowed and everything was dropped.
        """
        token, dirty = self.table.dirty_since(self._token)
        self._token = token
        if dirty is None:
            if self._verified_entries or self.observations:
                self.full_invalidations += 1
                self._gen += 1
            self._verified_entries.clear()
            self._verified_by_pair.clear()
            self._verified_hops.clear()
            return None
        for pair in dirty:
            ids = self._verified_by_pair.pop(pair, None)
            if ids:
                self._verified_entries -= ids
                self.invalidated_pairs += 1
                self._gen += 1
        return dirty

    def retarget(self, table: PathTable) -> None:
        """Point at a rebuilt table, forgetting all accumulated coverage.

        Entry identity is ``id()``-based, so a full rebuild (which replaces
        every entry object) invalidates everything the tracker knows.
        """
        self.table = table
        self._token = table.dirty_token()
        self.reset()

    # -- reporting -----------------------------------------------------------

    def report(self) -> CoverageReport:
        """Aggregate the current coverage picture (memoized per state)."""
        self.sync()
        key = (id(self.table), self.table.version, self.observations, self._gen)
        if self._report_cache is not None and self._report_key == key:
            return self._report_cache
        all_hops: Set[Hop] = set()
        total_paths = 0
        verified_paths = 0
        total_pairs = 0
        verified_pairs = 0
        dark: List[Tuple[PortRef, PortRef, PathEntry]] = []
        dark_pairs: List[Pair] = []
        for inport, outport in self.table.pairs():
            total_pairs += 1
            pair_dark = False
            for entry in self.table.lookup(inport, outport):
                total_paths += 1
                if id(entry) in self._verified_entries:
                    verified_paths += 1
                else:
                    pair_dark = True
                    dark.append((inport, outport, entry))
                for hop in entry.hops:
                    all_hops.add(hop)
            if pair_dark:
                dark_pairs.append((inport, outport))
            else:
                verified_pairs += 1
        # Per-switch tallies over distinct hops.
        switch_total: Dict[str, int] = {}
        switch_hit: Dict[str, int] = {}
        for hop in all_hops:
            switch_total[hop.switch] = switch_total.get(hop.switch, 0) + 1
            if hop in self._verified_hops:
                switch_hit[hop.switch] = switch_hit.get(hop.switch, 0) + 1
        coverage = {
            switch: switch_hit.get(switch, 0) / count
            for switch, count in switch_total.items()
        }
        result = CoverageReport(
            total_paths=total_paths,
            verified_paths=verified_paths,
            total_hops=len(all_hops),
            verified_hops=len(self._verified_hops & all_hops),
            total_pairs=total_pairs,
            verified_pairs=verified_pairs,
            dark_paths=dark,
            dark_pairs=dark_pairs,
            switch_coverage=coverage,
        )
        self._report_key = key
        self._report_cache = result
        return result

    def dark_paths(
        self, tenant: Optional[str] = None
    ) -> List[Tuple[PortRef, PortRef, PathEntry]]:
        """The dark list, optionally filtered to one tenant's slice.

        Without a tenant (or without a :attr:`tenant_resolver`) this is
        the full :attr:`CoverageReport.dark_paths` list.  With both, only
        entries the resolver attributes to ``tenant`` are returned — the
        per-slice probing work list.
        """
        dark = self.report().dark_paths
        if tenant is None or self.tenant_resolver is None:
            return list(dark)
        resolve = self.tenant_resolver
        return [
            (inport, outport, entry)
            for inport, outport, entry in dark
            if resolve(inport, outport, entry) == tenant
        ]

    def dark_switches(self, threshold: float = 0.5) -> List[str]:
        """Switches with less than ``threshold`` of their hops verified."""
        report = self.report()
        return sorted(
            switch
            for switch, fraction in report.switch_coverage.items()
            if fraction < threshold
        )

    def reset(self) -> None:
        """Forget all coverage (e.g. after a configuration change)."""
        self._verified_entries.clear()
        self._verified_by_pair.clear()
        self._verified_hops.clear()
        self.observations = 0
        self._gen += 1
        self._report_key = None
        self._report_cache = None
