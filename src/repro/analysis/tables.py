"""Path-table shape reporting — Table 2 and Figure 6.

Table 2 reports, per topology: number of (inport, outport) entries, number
of paths, average path length, construction time.  Figure 6 plots the
distribution of the number of paths per (inport, outport) pair, which
justifies Algorithm 3's linear scan.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..bdd.headerspace import HeaderSpace
from ..core.pathtable import PathTable, PathTableBuilder, PathTableStats
from ..topologies.base import Scenario

__all__ = [
    "Table2Row",
    "build_and_measure",
    "path_count_distribution",
    "distribution_cdf",
]


@dataclass
class Table2Row:
    """One row of Table 2, plus handles to the built artifacts."""

    setup: str
    stats: PathTableStats
    builder: PathTableBuilder
    table: PathTable

    def as_tuple(self) -> Tuple[str, int, int, float, float]:
        """(setup, #entries, #paths, avg path len, time) — the paper's columns."""
        return (
            self.setup,
            self.stats.num_pairs,
            self.stats.num_paths,
            round(self.stats.avg_path_length, 2),
            round(self.stats.build_time_s, 3),
        )

    def __str__(self) -> str:
        setup, pairs, paths, avg, secs = self.as_tuple()
        return f"{setup:12s} {pairs:>8d} {paths:>8d} {avg:>8.2f} {secs:>8.3f}s"


def build_and_measure(scenario: Scenario, setup: Optional[str] = None) -> Table2Row:
    """Build the path table for a scenario and report its Table 2 row."""
    hs = HeaderSpace()
    builder = PathTableBuilder(scenario.topo, hs)
    table = builder.build()
    return Table2Row(
        setup=setup or scenario.topo.name,
        stats=table.stats(),
        builder=builder,
        table=table,
    )


def path_count_distribution(table: PathTable) -> Dict[int, int]:
    """``{paths_per_pair: number_of_pairs}`` — the Figure 6 histogram."""
    return dict(Counter(table.paths_per_pair()))


def distribution_cdf(distribution: Dict[int, int]) -> List[Tuple[int, float]]:
    """Cumulative fraction of pairs with at most ``k`` paths, sorted by k."""
    total = sum(distribution.values())
    if total == 0:
        return []
    cdf: List[Tuple[int, float]] = []
    running = 0
    for k in sorted(distribution):
        running += distribution[k]
        cdf.append((k, running / total))
    return cdf
