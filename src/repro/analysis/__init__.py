"""Experiment harnesses reproducing the paper's Section 6 evaluation.

* :mod:`repro.analysis.tables`       — Table 2 rows and Figure 6 distributions,
* :mod:`repro.analysis.fnr`          — Figure 12 false-negative sweeps,
* :mod:`repro.analysis.localization` — Table 3 localization campaigns,
* :mod:`repro.analysis.timing`       — Figure 13/14 latency measurements.

Each harness returns plain dataclasses; the ``benchmarks/`` directory turns
them into the paper's tables and figures.
"""

from .coverage import CoverageReport, CoverageTracker
from .fuzz import FaultClassStats, FuzzReport, run_fault_fuzz
from .fnr import FnrResult, measure_fnr, simulate_deviation, sweep_fnr_over_bits
from .localization import (
    CampaignResult,
    MultiFaultResult,
    run_localization_campaign,
    run_multi_fault_campaign,
)
from .monitor import IncidentAggregator, SuspectReport
from .sampling_experiments import (
    LatencyTrialResult,
    measure_detection_latency,
    sweep_sampling_intervals,
)
from .tables import (
    Table2Row,
    build_and_measure,
    distribution_cdf,
    path_count_distribution,
)
from .timing import (
    UpdateTimingResult,
    VerificationTimingResult,
    measure_update_times,
    check_fastpath_parity,
    check_vector_wire_parity,
    measure_verification_time,
    measure_vector_verification_time,
    reports_from_table,
    wire_payloads_from_table,
)

__all__ = [
    "CoverageTracker",
    "CoverageReport",
    "FnrResult",
    "FaultClassStats",
    "FuzzReport",
    "run_fault_fuzz",
    "measure_fnr",
    "sweep_fnr_over_bits",
    "simulate_deviation",
    "CampaignResult",
    "MultiFaultResult",
    "run_multi_fault_campaign",
    "IncidentAggregator",
    "SuspectReport",
    "LatencyTrialResult",
    "measure_detection_latency",
    "sweep_sampling_intervals",
    "run_localization_campaign",
    "Table2Row",
    "build_and_measure",
    "path_count_distribution",
    "distribution_cdf",
    "VerificationTimingResult",
    "check_fastpath_parity",
    "check_vector_wire_parity",
    "measure_verification_time",
    "measure_vector_verification_time",
    "UpdateTimingResult",
    "measure_update_times",
    "reports_from_table",
    "wire_payloads_from_table",
]
