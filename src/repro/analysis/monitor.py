"""Operational incident aggregation.

A VeriDP server in a busy network emits a stream of incidents — one per
failed verification, so a single bad rule produces one incident per sampled
packet crossing it.  Operators need the roll-up: *which switch*, *which
flows*, *since when*.  :class:`IncidentAggregator` turns the stream into
exactly that, with an optional sliding window so stale incidents age out
after a repair.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..core.server import Incident
from ..core.verifier import Verdict
from ..netmodel.topology import PortRef

__all__ = ["IncidentAggregator", "SuspectReport"]


@dataclass
class SuspectReport:
    """The roll-up for one blamed switch."""

    switch_id: str
    incident_count: int
    affected_pairs: int
    first_seen: float
    last_seen: float

    def __str__(self) -> str:
        return (
            f"{self.switch_id}: {self.incident_count} incidents over "
            f"{self.affected_pairs} port pairs "
            f"[t={self.first_seen:.2f}..{self.last_seen:.2f}]"
        )


@dataclass
class _Record:
    now: float
    verdict: Verdict
    pair: Tuple[PortRef, PortRef]
    blamed: Tuple[str, ...]


class IncidentAggregator:
    """Roll up a stream of incidents for the operator console.

    ``window_s`` bounds how far back aggregation looks (``None`` = forever);
    :meth:`prune` (called automatically on ingest) ages records out.
    """

    def __init__(self, window_s: Optional[float] = None) -> None:
        if window_s is not None and window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.window_s = window_s
        self._records: Deque[_Record] = deque()
        self.total_ingested = 0

    # -- ingestion ---------------------------------------------------------

    def ingest(self, incident: Incident, now: float = 0.0) -> None:
        """Add one incident observed at time ``now``."""
        report = incident.verification.report
        self._records.append(
            _Record(
                now=now,
                verdict=incident.verification.verdict,
                pair=(report.inport, report.outport),
                blamed=tuple(incident.blamed_switches),
            )
        )
        self.total_ingested += 1
        self.prune(now)

    def ingest_all(self, incidents: List[Incident], now: float = 0.0) -> None:
        """Add a batch (e.g. ``server.drain_incidents()``)."""
        for incident in incidents:
            self.ingest(incident, now)

    def prune(self, now: float) -> int:
        """Drop records older than the window; returns how many went."""
        if self.window_s is None:
            return 0
        horizon = now - self.window_s
        dropped = 0
        while self._records and self._records[0].now < horizon:
            self._records.popleft()
            dropped += 1
        return dropped

    # -- roll-ups -----------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Incidents currently inside the window."""
        return len(self._records)

    def verdict_counts(self) -> Dict[Verdict, int]:
        """Failures per verdict class."""
        return dict(Counter(r.verdict for r in self._records))

    def blame_tally(self) -> Dict[str, int]:
        """Incidents per blamed switch (multi-blame counts each suspect)."""
        tally: Counter = Counter()
        for record in self._records:
            tally.update(record.blamed)
        return dict(tally)

    def failures_by_pair(self) -> Dict[Tuple[PortRef, PortRef], int]:
        """Incidents per (inport, outport) pair — the affected flows."""
        return dict(Counter(r.pair for r in self._records))

    def top_suspects(self, limit: int = 3) -> List[SuspectReport]:
        """The most-blamed switches with their evidence, ranked."""
        by_switch: Dict[str, List[_Record]] = {}
        for record in self._records:
            for switch_id in record.blamed:
                by_switch.setdefault(switch_id, []).append(record)
        reports = [
            SuspectReport(
                switch_id=switch_id,
                incident_count=len(records),
                affected_pairs=len({r.pair for r in records}),
                first_seen=min(r.now for r in records),
                last_seen=max(r.now for r in records),
            )
            for switch_id, records in by_switch.items()
        ]
        reports.sort(key=lambda s: (-s.incident_count, s.switch_id))
        return reports[:limit]

    def unlocalized_count(self) -> int:
        """Incidents the localizer produced no suspects for."""
        return sum(1 for r in self._records if not r.blamed)

    def summary(self) -> Dict[str, object]:
        """One dict for dashboards/JSON export."""
        suspects = self.top_suspects(limit=5)
        return {
            "active_incidents": self.active_count,
            "total_ingested": self.total_ingested,
            "verdicts": {v.value: c for v, c in self.verdict_counts().items()},
            "top_suspects": [
                {"switch": s.switch_id, "incidents": s.incident_count,
                 "pairs": s.affected_pairs}
                for s in suspects
            ],
            "unlocalized": self.unlocalized_count(),
            "affected_pairs": len(self.failures_by_pair()),
        }

    def render(self) -> str:
        """Human-readable console block."""
        lines = [f"incidents: {self.active_count} active / {self.total_ingested} total"]
        for verdict, count in sorted(
            self.verdict_counts().items(), key=lambda vc: -vc[1]
        ):
            lines.append(f"  {verdict.value}: {count}")
        for suspect in self.top_suspects():
            lines.append(f"  suspect {suspect}")
        if self.unlocalized_count():
            lines.append(f"  unlocalized: {self.unlocalized_count()}")
        return "\n".join(lines)
