"""Fault-class fuzzing: detection rates across the whole §2.2 taxonomy.

The paper evaluates detection on one fault shape (rewired output ports).
This campaign fuzzes *every* modelled fault class — silent install drops,
out-of-band deletes/modifies/insertions, priority-ignoring lookups, and
hardware death — against live traffic, and reports per class:

* how often the fault was even **exercised** (traffic crossed it),
* how often it was **detected** (a failed verification), and
* how often the faulty switch was **blamed**.

It also reports the structurally expected blind spots: a dead switch emits
no report (the paper's §3.3 limitation), and an unexercised fault is
invisible to any passive monitor — the quantified version of the paper's
scoping statements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.server import VeriDPServer
from ..dataplane.faults import (
    DeleteRule,
    Fault,
    IgnorePriorities,
    InjectRule,
    KillSwitch,
    ModifyRuleOutput,
)
from ..dataplane.network import DataPlaneNetwork, DeliveryStatus
from ..netmodel.rules import FlowRule, Forward, Match
from ..topologies.base import Scenario

__all__ = ["FaultClassStats", "FuzzReport", "run_fault_fuzz"]


@dataclass
class FaultClassStats:
    """Aggregated outcomes for one fault class."""

    fault_class: str
    trials: int = 0
    exercised: int = 0  # traffic behaviour actually changed
    detected: int = 0  # at least one failed verification
    blamed_correctly: int = 0
    silent_losses: int = 0  # packets vanished with no report

    @property
    def detection_rate(self) -> float:
        """Detected over *exercised* trials (unexercised faults are
        invisible to any passive monitor by definition)."""
        return self.detected / self.exercised if self.exercised else 0.0

    @property
    def blame_rate(self) -> float:
        """Correct blame over detected trials."""
        return self.blamed_correctly / self.detected if self.detected else 0.0

    def __str__(self) -> str:
        return (
            f"{self.fault_class}: {self.exercised}/{self.trials} exercised, "
            f"detection {100 * self.detection_rate:.0f}%, "
            f"blame {100 * self.blame_rate:.0f}%"
        )


@dataclass
class FuzzReport:
    """All fault classes' stats for one campaign."""

    per_class: Dict[str, FaultClassStats] = field(default_factory=dict)

    def rows(self) -> List[Tuple]:
        """Bench-table rows, sorted by class name."""
        return [
            (
                s.fault_class,
                s.trials,
                s.exercised,
                s.detected,
                f"{100 * s.detection_rate:.0f}%",
                f"{100 * s.blame_rate:.0f}%",
                s.silent_losses,
            )
            for _, s in sorted(self.per_class.items())
        ]


def _pick_used_rule(scenario, net, rng):
    """A (switch, rule, in_port) actually on some flow's path."""
    pairs = scenario.host_pairs()
    for _ in range(20):
        src, dst = rng.choice(pairs)
        header = scenario.header_between(src, dst)
        probe = net.inject_from_host(src, header)
        if len(probe.hops) < 2:
            continue
        hop = rng.choice(probe.hops)
        rule = net.switch(hop.switch).table.lookup(header, hop.in_port)
        if rule is not None:
            return hop.switch, rule
    raise RuntimeError("could not find a used rule; topology too sparse?")


def _make_fault(kind: str, scenario, net, rng) -> Tuple[Fault, str]:
    """Instantiate one fault of the given class on a *used* rule/switch."""
    switch_id, rule = _pick_used_rule(scenario, net, rng)
    if kind == "modify-output":
        ports = sorted(net.switch(switch_id).ports - {rule.output_port()})
        return ModifyRuleOutput(switch_id, rule.rule_id, rng.choice(ports)), switch_id
    if kind == "delete-rule":
        return DeleteRule(switch_id, rule.rule_id), switch_id
    if kind == "inject-shadow":
        ports = sorted(net.switch(switch_id).ports - {rule.output_port()})
        shadow = FlowRule(
            rule.priority + 1000, rule.match, Forward(rng.choice(ports))
        )
        return InjectRule(switch_id, shadow), switch_id
    if kind == "ignore-priority":
        # Give the priority bug something to bite on: a broad low-priority
        # rule underneath the used one.
        ports = sorted(net.switch(switch_id).ports - {rule.output_port()})
        net.switch(switch_id).external_insert(
            FlowRule(1, Match(), Forward(rng.choice(ports)),
                     table_id=rule.table_id)
        )
        return IgnorePriorities(switch_id), switch_id
    if kind == "kill-switch":
        return KillSwitch(switch_id), switch_id
    raise ValueError(kind)


FAULT_KINDS = (
    "modify-output",
    "delete-rule",
    "inject-shadow",
    "ignore-priority",
    "kill-switch",
)


def run_fault_fuzz(
    scenario_factory: Callable[[], Scenario],
    trials_per_class: int = 5,
    seed: int = 0,
) -> FuzzReport:
    """Run the campaign: fresh network per trial, one fault, all-pairs traffic."""
    if trials_per_class <= 0:
        raise ValueError("trials_per_class must be positive")
    rng = random.Random(seed)
    report = FuzzReport()
    for kind in FAULT_KINDS:
        stats = FaultClassStats(fault_class=kind, trials=trials_per_class)
        report.per_class[kind] = stats
        for _ in range(trials_per_class):
            scenario = scenario_factory()
            server = VeriDPServer(scenario.topo, scenario.channel)
            net = DataPlaneNetwork(
                scenario.topo, scenario.channel,
                report_sink=server.receive_report_bytes,
            )
            baseline = {}
            for src, dst in scenario.host_pairs():
                result = net.inject_from_host(src, scenario.header_between(src, dst))
                baseline[(src, dst)] = tuple(result.hops)
            server.drain_incidents()

            fault, faulty_switch = _make_fault(kind, scenario, net, rng)
            server.drain_incidents()  # discard rule-picking probes
            fault.apply(net)

            exercised = False
            for src, dst in scenario.host_pairs():
                result = net.inject_from_host(src, scenario.header_between(src, dst))
                if tuple(result.hops) != baseline[(src, dst)]:
                    exercised = True
                if result.status == DeliveryStatus.LOST:
                    exercised = True
                    stats.silent_losses += 1
            incidents = server.drain_incidents()
            if exercised:
                stats.exercised += 1
                if incidents:
                    stats.detected += 1
                    if any(faulty_switch in i.blamed_switches for i in incidents):
                        stats.blamed_correctly += 1
    return report
