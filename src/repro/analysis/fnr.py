"""False-negative-rate measurement — the Figure 12 experiment.

Methodology (Section 6.3, "Detection accuracy"): select paths from the path
table, generate one packet per path, pick a random switch on its forwarding
path and divert the packet to a different output port; downstream the packet
follows the (otherwise healthy) configuration.  With

* ``n``  — diverted packets in total,
* ``n1`` — those that still arrive at the original destination port,
* ``n2`` — those that arrive there *and* carry a tag equal to the path
  table's (i.e. the fault is missed),

the paper defines the **absolute** false-negative rate ``n2/n`` and the
**relative** rate ``n2/n1``.  Detection has *no false positives* by
construction, so these two rates fully characterise accuracy.

The simulation is symbolic: the correct path comes from the path table, the
post-deviation trajectory from the control-plane forwarding function
(``expected_path``), which is exactly what a healthy data plane would do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.bloom import BloomTagScheme
from ..core.pathtable import PathEntry, PathTable, PathTableBuilder
from ..netmodel.hops import Hop
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef

__all__ = ["FnrResult", "measure_fnr", "sweep_fnr_over_bits", "simulate_deviation"]


@dataclass
class FnrResult:
    """One Figure 12 data point."""

    bits: int
    trials: int  # n
    arrived: int  # n1
    missed: int  # n2

    @property
    def absolute_fnr(self) -> float:
        """``n2 / n`` — missed faults over all injected faults."""
        return self.missed / self.trials if self.trials else 0.0

    @property
    def relative_fnr(self) -> float:
        """``n2 / n1`` — missed faults over faults that kept the exit port."""
        return self.missed / self.arrived if self.arrived else 0.0

    def __str__(self) -> str:
        return (
            f"m={self.bits}: n={self.trials} n1={self.arrived} n2={self.missed} "
            f"abs={self.absolute_fnr:.4f} rel={self.relative_fnr:.4f}"
        )


def simulate_deviation(
    builder: PathTableBuilder,
    entry_hops: Sequence[Hop],
    header: Dict[str, int],
    deviate_at: int,
    wrong_port: int,
) -> List[Hop]:
    """The real path of a packet diverted at hop ``deviate_at``.

    The prefix up to the deviation follows the correct path; the deviating
    switch outputs to ``wrong_port``; from there the packet follows the
    control-plane configuration of the downstream switches.
    """
    topo = builder.topo
    hops: List[Hop] = list(entry_hops[:deviate_at])
    bad = entry_hops[deviate_at]
    first = Hop(bad.in_port, bad.switch, wrong_port)
    hops.append(first)
    if wrong_port == DROP_PORT:
        return hops
    egress = PortRef(bad.switch, wrong_port)
    if topo.is_edge_port(egress):
        return hops
    peer = topo.link(egress)
    if peer is None:
        return hops
    remaining = builder.max_path_length - len(hops)
    hops.extend(builder.expected_path(peer, header)[: max(remaining, 0)])
    return hops


def measure_fnr(
    builder: PathTableBuilder,
    table: PathTable,
    bits: int,
    trials: int,
    rng: Optional[random.Random] = None,
    hashes: int = 3,
) -> FnrResult:
    """Run the deviation experiment for one Bloom width."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = rng or random.Random(0)
    scheme = BloomTagScheme(bits=bits, hashes=hashes)
    # Only deliverable paths make sense: a packet on a drop path has no
    # destination port to (wrongly) arrive at.
    candidates: List[Tuple[PortRef, PortRef, PathEntry]] = [
        (inport, outport, entry)
        for inport, outport, entry in table.all_entries()
        if outport.port != DROP_PORT
    ]
    if not candidates:
        raise ValueError("path table has no deliverable paths to test")

    arrived = 0
    missed = 0
    hs = builder.hs
    for _ in range(trials):
        inport, outport, entry = rng.choice(candidates)
        header = hs.sample_header(entry.headers)
        if header is None:  # defensive: table entries are non-empty
            continue
        deviate_at = rng.randrange(len(entry.hops))
        victim = entry.hops[deviate_at]
        ports = [
            p
            for p in builder.topo.ports_of(victim.switch)
            if p != victim.out_port
        ] + ([DROP_PORT] if victim.out_port != DROP_PORT else [])
        wrong_port = rng.choice(ports)
        real = simulate_deviation(builder, entry.hops, header, deviate_at, wrong_port)
        if not real:
            continue
        last = real[-1]
        if last.switch == outport.switch and last.out_port == outport.port:
            arrived += 1
            if scheme.tag_of_path(real) == scheme.tag_of_path(entry.hops):
                missed += 1
    return FnrResult(bits=bits, trials=trials, arrived=arrived, missed=missed)


def sweep_fnr_over_bits(
    builder: PathTableBuilder,
    table: PathTable,
    bit_widths: Sequence[int] = (8, 16, 24, 32, 48, 64),
    trials: int = 2000,
    seed: int = 0,
) -> List[FnrResult]:
    """The full Figure 12 sweep: FNR for each Bloom-filter width.

    The same RNG seed yields the same fault sample across widths so the
    curves differ only by tag width, as in the paper's figure.
    """
    return [
        measure_fnr(builder, table, bits, trials, rng=random.Random(seed))
        for bits in bit_widths
    ]
