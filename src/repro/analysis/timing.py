"""Timing harnesses — Figures 13 and 14.

* :func:`measure_verification_time` — generate one test packet per path in
  the path table, collect its tag report, verify each report many times and
  average (the paper repeats each verification 10^4 times; the repeat count
  is a knob here).
* :func:`measure_update_times` — populate all but one switch, then install
  the last switch's prefix rules one-by-one through the incremental updater,
  recording each update's wall time (Figure 14's per-rule series).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.incremental import IncrementalPathTable, LpmProvider
from ..core.pathtable import PathTable, PathTableBuilder
from ..core.reports import TagReport
from ..core.verifier import Verifier
from ..netmodel.packet import Header
from ..netmodel.rules import DROP_PORT
from ..topologies.base import Scenario

__all__ = [
    "VerificationTimingResult",
    "measure_verification_time",
    "measure_vector_verification_time",
    "check_fastpath_parity",
    "check_vector_wire_parity",
    "wire_payloads_from_table",
    "UpdateTimingResult",
    "measure_update_times",
]


@dataclass
class VerificationTimingResult:
    """Per-report verification latency statistics (Figure 13)."""

    label: str
    reports: int
    repeats: int
    mean_us: float
    median_us: float
    p99_us: float
    throughput_per_s: float

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.reports} reports x {self.repeats} repeats, "
            f"mean {self.mean_us:.2f} us, median {self.median_us:.2f} us, "
            f"p99 {self.p99_us:.2f} us, {self.throughput_per_s:,.0f} verifs/s"
        )


def reports_from_table(
    builder: PathTableBuilder, table: PathTable, limit: Optional[int] = None
) -> List[TagReport]:
    """One well-formed tag report per deliverable path in the table.

    This mirrors the paper's Figure 13 setup: "for each topology, we
    generate a test packet for each path in the path table ... and collect
    the tag reports".
    """
    hs = builder.hs
    reports: List[TagReport] = []
    for inport, outport, entry in table.all_entries():
        header = hs.sample_header(entry.headers)
        if header is None:
            continue
        reports.append(
            TagReport(
                inport=inport,
                outport=outport,
                header=Header(**header),
                tag=entry.tag,
            )
        )
        if limit is not None and len(reports) >= limit:
            break
    return reports


def measure_verification_time(
    builder: PathTableBuilder,
    table: PathTable,
    label: str,
    repeats: int = 100,
    report_limit: Optional[int] = None,
    fast_path: bool = True,
    flow_cache: bool = True,
) -> VerificationTimingResult:
    """Average per-report verification latency over the whole table.

    ``fast_path=False`` times the paper-literal recursive-BDD scan (the
    reference the fast path is checked against); ``flow_cache=False`` times
    the fast path with caching disabled, isolating the compiled-matcher
    contribution.  Statistics are routed through
    :meth:`Verifier.verify_batch`, so the per-verification cost excludes
    per-report clock reads and result allocation.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    reports = reports_from_table(builder, table, limit=report_limit)
    if not reports:
        raise ValueError("path table produced no reports to verify")
    if fast_path:
        table.compile_matchers(builder.hs)
    verifier = Verifier(
        table,
        builder.hs,
        fast_path=fast_path,
        flow_cache_size=8192 if flow_cache else 0,
    )
    per_report_us: List[float] = []
    for report in reports:
        batch = verifier.verify_batch([report] * repeats)
        per_report_us.append(batch.elapsed_s / repeats * 1e6)
    mean_us = statistics.fmean(per_report_us)
    ranked = sorted(per_report_us)
    return VerificationTimingResult(
        label=label,
        reports=len(reports),
        repeats=repeats,
        mean_us=mean_us,
        median_us=ranked[len(ranked) // 2],
        p99_us=ranked[min(len(ranked) - 1, int(0.99 * len(ranked)))],
        throughput_per_s=1e6 / mean_us if mean_us else 0.0,
    )


def wire_payloads_from_table(
    builder: PathTableBuilder, table: PathTable, tamper: bool = True
):
    """Wire report payloads for every table path, plus a codec to decode.

    With ``tamper=True`` the healthy payloads are followed by mutated
    copies — flipped tags, swapped port pairs, rewritten header bytes — so
    verification sweeps exercise every verdict class, not just PASS.
    """
    from ..core.reports import PortCodec, pack_report

    codec = PortCodec()
    for inport, outport in table.pairs():
        codec.register(inport.switch)
        codec.register(outport.switch)
    reports = reports_from_table(builder, table)
    payloads = [pack_report(report, codec) for report in reports]
    if tamper:
        for payload in list(payloads):
            bad_tag = bytearray(payload)
            bad_tag[13] ^= 0x5A  # last tag byte: guaranteed tag mismatch
            payloads.append(bytes(bad_tag))
            bad_pair = bytearray(payload)
            bad_pair[2:4], bad_pair[4:6] = payload[4:6], payload[2:4]
            payloads.append(bytes(bad_pair))
            bad_header = bytearray(payload)
            bad_header[14:18] = b"\xde\xad\xbe\xef"  # reroute src_ip
            payloads.append(bytes(bad_header))
    return payloads, codec


def measure_vector_verification_time(
    builder: PathTableBuilder,
    table: PathTable,
    label: str,
    batch_rows: int = 32768,
    repeats: int = 5,
) -> VerificationTimingResult:
    """Wire-level vector-kernel throughput (the Figure 13 ``vector`` row).

    Replays the fig13 report set as wire payloads through a single shard
    replica compiled into the :class:`~repro.core.vector.WireBatchVerifier`
    — the exact code path a sharded-daemon worker runs per dispatch batch.
    One warm-up batch pays kernel compilation; each repeat then verifies a
    ``batch_rows``-payload batch and the statistics are per-report times
    across repeats.
    """
    from ..core import vector as vec
    from ..core.daemon import build_shard_specs, wire_packing

    if not vec.HAVE_NUMPY:
        raise RuntimeError("the vector timing harness requires numpy")
    if batch_rows <= 0 or repeats <= 0:
        raise ValueError("batch_rows and repeats must be positive")
    hs = builder.hs
    table.compile_matchers(hs)
    payloads, codec = wire_payloads_from_table(builder, table, tamper=False)
    if not payloads:
        raise ValueError("path table produced no reports to verify")
    pairs = build_shard_specs(table, hs, codec, 1)[0]
    wirev = vec.WireBatchVerifier(pairs, wire_packing(hs.layout))
    batch = (payloads * (batch_rows // len(payloads) + 1))[:batch_rows]
    frame = b"".join(batch)  # daemon dispatch ships one concatenated frame
    wirev.verify_frame(frame)  # warm-up: compiles every pair kernel
    per_report_us: List[float] = []
    import time as _time

    for _ in range(repeats):
        started = _time.perf_counter()
        wirev.verify_frame(frame)
        per_report_us.append((_time.perf_counter() - started) / batch_rows * 1e6)
    mean_us = statistics.fmean(per_report_us)
    ranked = sorted(per_report_us)
    return VerificationTimingResult(
        label=label,
        reports=len(payloads),
        repeats=repeats,
        mean_us=mean_us,
        median_us=ranked[len(ranked) // 2],
        p99_us=ranked[min(len(ranked) - 1, int(0.99 * len(ranked)))],
        throughput_per_s=1e6 / mean_us if mean_us else 0.0,
    )


def check_vector_wire_parity(
    builder: PathTableBuilder,
    table: PathTable,
    payloads: Optional[Sequence[bytes]] = None,
) -> List[Tuple[bytes, str, str]]:
    """Compare the wire vector kernel against ``_verify_wire`` per payload.

    Returns mismatches as ``(payload, vector_verdict, scalar_verdict)``;
    an empty list certifies verdict parity on this payload set (tampered
    and malformed payloads included when the default set is used).
    """
    from ..core import vector as vec
    from ..core.daemon import _verify_wire, build_shard_specs, wire_packing

    if not vec.HAVE_NUMPY:
        return []
    hs = builder.hs
    table.compile_matchers(hs)
    if payloads is None:
        payloads, codec = wire_payloads_from_table(builder, table, tamper=True)
        payloads = list(payloads)
        payloads.append(payloads[0][:11])  # truncated
        bad_version = bytearray(payloads[0])
        bad_version[0] = 99
        payloads.append(bytes(bad_version))
    else:
        _, codec = wire_payloads_from_table(builder, table, tamper=False)
    pairs = build_shard_specs(table, hs, codec, 1)[0]
    packing = wire_packing(hs.layout)
    wirev = vec.WireBatchVerifier(pairs, packing)
    codes = wirev.verify(list(payloads)).tolist()
    sized = [p for p in payloads if len(p) == wirev.report_size]
    if sized:
        frame_codes = wirev.verify_frame(b"".join(sized)).tolist()
        list_codes = wirev.verify(sized).tolist()
        if frame_codes != list_codes:
            for payload, fcode, lcode in zip(sized, frame_codes, list_codes):
                if fcode != lcode:
                    mismatch = (payload, f"frame-code-{fcode}", f"list-code-{lcode}")
                    return [mismatch]
    value_of = {
        vec.VPASS: "pass",
        vec.VMISMATCH: "fail-tag-mismatch",
        vec.VNOPATH: "fail-no-path",
        vec.VUNKNOWN: "fail-unknown-pair",
        vec.VMALFORMED: "malformed",
    }
    mismatches: List[Tuple[bytes, str, str]] = []
    for payload, code in zip(payloads, codes):
        scalar = _verify_wire(pairs, packing, payload)
        scalar_value = "malformed" if scalar is None else scalar
        if code == vec.VSCALAR:
            continue  # the kernel defers to the scalar path: parity by construction
        vector_value = value_of.get(code, f"code-{code}")
        if vector_value != scalar_value:
            mismatches.append((payload, vector_value, scalar_value))
    return mismatches


def check_fastpath_parity(
    builder: PathTableBuilder,
    table: PathTable,
    reports: Sequence[TagReport],
) -> List[Tuple[TagReport, str, str]]:
    """Compare fast-path and slow-path verdicts report by report.

    Returns the mismatches as ``(report, fast_verdict, slow_verdict)``
    tuples — an empty list certifies that the compiled-matcher fast path is
    verdict-identical to the recursive-BDD reference on this report set.
    """
    fast = Verifier(table, builder.hs, fast_path=True)
    slow = Verifier(table, builder.hs, fast_path=False)
    mismatches: List[Tuple[TagReport, str, str]] = []
    for report in reports:
        fast_result = fast.verify(report)
        slow_result = slow.verify(report)
        if (
            fast_result.verdict is not slow_result.verdict
            or fast_result.matched_entry is not slow_result.matched_entry
        ):
            mismatches.append(
                (report, fast_result.verdict.value, slow_result.verdict.value)
            )
    return mismatches


@dataclass
class UpdateTimingResult:
    """Per-rule incremental update times (Figure 14)."""

    label: str
    times_ms: List[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        """Average update time."""
        return statistics.fmean(self.times_ms) if self.times_ms else 0.0

    @property
    def max_ms(self) -> float:
        """Worst-case update time."""
        return max(self.times_ms) if self.times_ms else 0.0

    def fraction_under(self, threshold_ms: float) -> float:
        """Fraction of updates faster than ``threshold_ms`` (paper: 10 ms)."""
        if not self.times_ms:
            return 0.0
        return sum(t < threshold_ms for t in self.times_ms) / len(self.times_ms)

    def __str__(self) -> str:
        return (
            f"{self.label}: {len(self.times_ms)} updates, mean "
            f"{self.mean_ms:.2f} ms, max {self.max_ms:.2f} ms, "
            f"{100 * self.fraction_under(10.0):.1f}% under 10 ms"
        )


def measure_update_times(
    scenario: Scenario,
    ruleset: Dict[str, List[Tuple[str, int]]],
    target_switch: str,
    label: Optional[str] = None,
) -> Tuple[UpdateTimingResult, IncrementalPathTable]:
    """The Figure 14 protocol on an LPM scenario.

    Rules of every switch except ``target_switch`` are installed first (and
    folded into the initial path-table build); then the target's rules are
    added one at a time through the incremental updater, timing each.
    Returns the timing series and the live incremental table (so callers can
    cross-check it against a full rebuild).
    """
    if target_switch not in ruleset:
        raise KeyError(f"{target_switch!r} has no rules in the ruleset")
    hs_topo = scenario.topo
    from ..bdd.headerspace import HeaderSpace

    hs = HeaderSpace()
    provider = LpmProvider(hs_topo, hs)
    for switch_id, rules in ruleset.items():
        if switch_id == target_switch:
            continue
        for prefix, out_port in rules:
            provider.add_rule(switch_id, prefix, out_port)
    inc = IncrementalPathTable(hs_topo, hs, provider=provider)

    result = UpdateTimingResult(label=label or f"{hs_topo.name}/{target_switch}")
    for prefix, out_port in ruleset[target_switch]:
        elapsed = inc.add_rule(target_switch, prefix, out_port)
        result.times_ms.append(elapsed * 1e3)
    return result, inc
