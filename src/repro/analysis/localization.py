"""Localization-accuracy campaigns — the Table 3 experiment.

Methodology (Section 6.3, "Localization accuracy"): per trial, pick a random
forwarding rule on a random switch and rewrite its output port; let every
host ping every other host; verify all tag reports; for every *failed*
verification run ``PathInfer`` and check whether the packet's actual path is
among the recovered candidates.  The localization probability is
``recovered / failed`` aggregated over trials — the paper reports 99.2% for
fat tree k=4 and 96.6% for k=6.

The campaign also tracks *blame accuracy* (is the genuinely faulty switch
among the blamed ones?), which the paper's headline "localize faulty
switches with a probability as high as 96%" refers to, and supports the
strawman localizer for the ablation benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Type

from ..core.localization import PathInferLocalizer, StrawmanLocalizer
from ..core.server import VeriDPServer
from ..dataplane.faults import random_misforward_fault
from ..dataplane.network import DataPlaneNetwork
from ..netmodel.rules import FlowRule
from ..topologies.base import Scenario

__all__ = ["CampaignResult", "run_localization_campaign"]


@dataclass
class CampaignResult:
    """Aggregated Table 3 row."""

    label: str
    trials: int
    failed_verifications: int = 0
    recovered_paths: int = 0
    correct_blames: int = 0
    faults_exercised: int = 0

    @property
    def localization_probability(self) -> float:
        """``# recovered paths / # failed verifications`` (Table 3's metric)."""
        if self.failed_verifications == 0:
            return 0.0
        return self.recovered_paths / self.failed_verifications

    @property
    def blame_accuracy(self) -> float:
        """Fraction of failures where the truly faulty switch was blamed."""
        if self.failed_verifications == 0:
            return 0.0
        return self.correct_blames / self.failed_verifications

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.failed_verifications} failed verifs, "
            f"{self.recovered_paths} recovered "
            f"({100 * self.localization_probability:.1f}%), "
            f"blame accuracy {100 * self.blame_accuracy:.1f}%"
        )


def run_localization_campaign(
    scenario: Scenario,
    trials: int = 10,
    seed: int = 0,
    label: Optional[str] = None,
    use_strawman: bool = False,
    pair_limit: Optional[int] = None,
) -> CampaignResult:
    """Run the Table 3 campaign on an already-built scenario.

    Each trial injects one random mis-forwarding fault, runs the all-pairs
    ping workload, localizes every verification failure, then restores the
    rule.  ``pair_limit`` caps the pings per trial (None = all pairs).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = random.Random(seed)
    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    localizer_obj = (
        StrawmanLocalizer(server.builder, server.scheme)
        if use_strawman
        else PathInferLocalizer(server.builder, server.scheme, scenario.topo)
    )
    result = CampaignResult(
        label=label or scenario.topo.name, trials=trials
    )
    pairs = scenario.host_pairs()

    for _ in range(trials):
        fault = random_misforward_fault(net, rng)
        if fault is None:
            continue
        result.faults_exercised += 1
        original: FlowRule = scenario.topo.switch(fault.switch_id).flow_table.get(
            fault.rule_id
        )
        trial_pairs = pairs
        if pair_limit is not None and pair_limit < len(pairs):
            trial_pairs = rng.sample(pairs, pair_limit)
        for src, dst in trial_pairs:
            delivery = net.inject_from_host(
                src, scenario.header_between(src, dst)
            )
            for report in delivery.reports:
                verification = server.verifier.verify(report)
                if verification.passed:
                    continue
                result.failed_verifications += 1
                localization = localizer_obj.localize(report)
                recovered = localization.contains_path(delivery.hops) or (
                    report.ttl_expired
                    and localization.contains_prefix_of(delivery.hops)
                )
                if recovered:
                    result.recovered_paths += 1
                if fault.switch_id in localization.blamed_switches():
                    result.correct_blames += 1
        # Restore the data plane for the next trial.
        net.switch(fault.switch_id).install(original)
    return result


@dataclass
class MultiFaultResult:
    """Localization quality as simultaneous faults accumulate."""

    num_faults: int
    trials: int
    failed_verifications: int = 0
    recovered_paths: int = 0
    any_fault_blamed: int = 0

    @property
    def localization_probability(self) -> float:
        """Recovered real paths over failed verifications."""
        if self.failed_verifications == 0:
            return 0.0
        return self.recovered_paths / self.failed_verifications

    @property
    def blame_hit_rate(self) -> float:
        """How often at least one genuinely faulty switch is blamed."""
        if self.failed_verifications == 0:
            return 0.0
        return self.any_fault_blamed / self.failed_verifications

    def __str__(self) -> str:
        return (
            f"{self.num_faults} faults: {self.failed_verifications} failures, "
            f"recovery {100 * self.localization_probability:.1f}%, "
            f"blame hits {100 * self.blame_hit_rate:.1f}%"
        )


def run_multi_fault_campaign(
    scenario: Scenario,
    num_faults: int,
    trials: int = 5,
    seed: int = 0,
) -> MultiFaultResult:
    """Algorithm 4 under ``num_faults`` *simultaneous* mis-forwardings.

    The paper's localization leans on "most switches in the network are
    functioning well except some faulty ones": PathInfer chases downstream
    flow tables assuming they are healthy.  With several concurrent faults
    that assumption erodes — this campaign measures how gracefully.
    Faults are placed on distinct switches per trial.
    """
    if num_faults <= 0 or trials <= 0:
        raise ValueError("num_faults and trials must be positive")
    rng = random.Random(seed)
    server = VeriDPServer(scenario.topo, scenario.channel, localize_failures=False)
    net = DataPlaneNetwork(scenario.topo, scenario.channel)
    localizer = PathInferLocalizer(server.builder, server.scheme, scenario.topo)
    result = MultiFaultResult(num_faults=num_faults, trials=trials)
    pairs = scenario.host_pairs()

    for _ in range(trials):
        originals = []
        faulty_switches = set()
        attempts = 0
        while len(originals) < num_faults and attempts < 50 * num_faults:
            attempts += 1
            fault = random_misforward_fault(
                net,
                rng,
                switch_ids=[
                    s for s in sorted(net.switches) if s not in faulty_switches
                ],
            )
            if fault is None:
                break
            originals.append(
                (fault.switch_id,
                 scenario.topo.switch(fault.switch_id).flow_table.get(fault.rule_id))
            )
            faulty_switches.add(fault.switch_id)
        for src, dst in pairs:
            delivery = net.inject_from_host(src, scenario.header_between(src, dst))
            for report in delivery.reports:
                verification = server.verifier.verify(report)
                if verification.passed:
                    continue
                result.failed_verifications += 1
                localization = localizer.localize(report)
                recovered = localization.contains_path(delivery.hops) or (
                    report.ttl_expired
                    and localization.contains_prefix_of(delivery.hops)
                )
                if recovered:
                    result.recovered_paths += 1
                if faulty_switches & set(localization.blamed_switches()):
                    result.any_fault_blamed += 1
        for switch_id, original in originals:
            net.switch(switch_id).install(original)
    return result
