"""Traffic workload generators.

The sampling analysis of Section 4.5 is parameterised by flow behaviour:
the maximum inter-packet gap ``T_a`` drives the sampling interval budget.
This module generates deterministic packet-arrival schedules for the three
classic shapes — constant bit-rate, Poisson, and on/off bursts — so the
detection-latency experiments and examples can run against realistic
arrival processes instead of a fixed tick grid.

A workload is an iterable of :class:`PacketEvent` (time-sorted across all
flows); ``T_a`` per flow is computable from the schedule and feeds straight
into :func:`repro.core.sampling.sampling_interval_for`.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..netmodel.packet import Header
from ..topologies.base import Scenario

__all__ = [
    "PacketEvent",
    "FlowSpec",
    "cbr_arrivals",
    "poisson_arrivals",
    "onoff_arrivals",
    "merge_flows",
    "max_inter_arrival",
    "scenario_workload",
]


@dataclass(frozen=True)
class PacketEvent:
    """One packet arrival: when, whose flow, which header."""

    time: float
    src_host: str
    dst_host: str
    header: Header

    def __lt__(self, other: "PacketEvent") -> bool:
        return self.time < other.time


@dataclass(frozen=True)
class FlowSpec:
    """A flow's identity plus its arrival-process parameters.

    ``kind`` is ``"cbr"``, ``"poisson"`` or ``"onoff"``; the ``rate`` is in
    packets per second.  On/off flows burst at ``rate`` for ``on_s`` then go
    silent for ``off_s``.
    """

    src_host: str
    dst_host: str
    kind: str = "cbr"
    rate: float = 10.0
    on_s: float = 1.0
    off_s: float = 1.0
    src_port: int = 10000
    dst_port: int = 80

    def __post_init__(self) -> None:
        if self.kind not in ("cbr", "poisson", "onoff"):
            raise ValueError(f"unknown flow kind {self.kind!r}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.kind == "onoff" and (self.on_s <= 0 or self.off_s < 0):
            raise ValueError("onoff needs positive on_s and non-negative off_s")


def cbr_arrivals(rate: float, duration: float, start: float = 0.0) -> List[float]:
    """Constant bit-rate arrivals: strictly periodic at ``1/rate``."""
    _check(rate, duration)
    period = 1.0 / rate
    count = int(duration / period)
    return [start + (i + 1) * period for i in range(count)]


def poisson_arrivals(
    rate: float, duration: float, rng: random.Random, start: float = 0.0
) -> List[float]:
    """Poisson arrivals: exponential gaps with mean ``1/rate``."""
    _check(rate, duration)
    times: List[float] = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t - start > duration:
            return times
        times.append(t)


def onoff_arrivals(
    rate: float,
    duration: float,
    on_s: float,
    off_s: float,
    start: float = 0.0,
) -> List[float]:
    """Deterministic on/off bursts: CBR at ``rate`` during on-periods."""
    _check(rate, duration)
    if on_s <= 0 or off_s < 0:
        raise ValueError("onoff needs positive on_s and non-negative off_s")
    times: List[float] = []
    period = 1.0 / rate
    cycle_start = start
    while cycle_start - start < duration:
        t = cycle_start
        while t + period - cycle_start <= on_s:
            t += period
            if t - start > duration:
                return times
            times.append(t)
        cycle_start += on_s + off_s
    return times


def _check(rate: float, duration: float) -> None:
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")


def merge_flows(
    schedules: Sequence[Tuple[FlowSpec, Sequence[float]]],
    headers: Dict[Tuple[str, str], Header],
) -> List[PacketEvent]:
    """Time-merge per-flow schedules into one event list."""
    events: List[PacketEvent] = []
    for spec, times in schedules:
        header = headers[(spec.src_host, spec.dst_host)]
        events.extend(
            PacketEvent(t, spec.src_host, spec.dst_host, header) for t in times
        )
    events.sort(key=lambda e: (e.time, e.src_host, e.dst_host))
    return events


def max_inter_arrival(times: Sequence[float]) -> float:
    """The flow's ``T_a`` — the largest gap between consecutive packets."""
    if len(times) < 2:
        return 0.0
    ordered = sorted(times)
    return max(b - a for a, b in zip(ordered, ordered[1:]))


def scenario_workload(
    scenario: Scenario,
    specs: Sequence[FlowSpec],
    duration: float,
    seed: int = 0,
) -> Tuple[List[PacketEvent], Dict[Tuple[str, str], float]]:
    """Build a full workload for a scenario.

    Returns the merged event list and the per-flow measured ``T_a`` map —
    exactly the inputs the Section 4.5 interval-sizing rule needs.
    """
    rng = random.Random(seed)
    schedules: List[Tuple[FlowSpec, Sequence[float]]] = []
    headers: Dict[Tuple[str, str], Header] = {}
    gaps: Dict[Tuple[str, str], float] = {}
    for spec in specs:
        if spec.kind == "cbr":
            times = cbr_arrivals(spec.rate, duration)
        elif spec.kind == "poisson":
            times = poisson_arrivals(spec.rate, duration, rng)
        else:
            times = onoff_arrivals(spec.rate, duration, spec.on_s, spec.off_s)
        key = (spec.src_host, spec.dst_host)
        headers[key] = scenario.header_between(
            spec.src_host, spec.dst_host,
            src_port=spec.src_port, dst_port=spec.dst_port,
        )
        gaps[key] = max_inter_arrival(times)
        schedules.append((spec, times))
    return merge_flows(schedules, headers), gaps
