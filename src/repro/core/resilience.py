"""Resilience primitives for the monitoring plane itself.

VeriDP's detection-latency guarantee (Section 4.5) silently assumes tag
reports survive the trip from switch to verifier and that the verifier
stays up.  SDNsec-style accountability argues the monitoring plane must
tolerate its own faults; this module supplies the building blocks the
daemons in :mod:`repro.core.daemon` compose:

* :class:`PolicyQueue` — a bounded report queue with an explicit overflow
  policy (``block`` / ``drop-oldest`` / ``drop-new``) and per-policy drop
  counters, replacing silent loss with accounted loss,
* :class:`DeadLetterQueue` — bounded retry-then-quarantine storage for
  payloads that fail decoding or crash verification, with structured
  :class:`DeadLetter` error records,
* :class:`RestartBackoff` — bounded exponential backoff schedule for
  worker restarts,
* :class:`WorkerSupervisor` — a polling thread that detects dead or
  wedged workers (exitcode + heartbeat age) and asks the owner to restart
  them, under a restart budget with an exhaustion callback.

Everything here is transport- and daemon-agnostic: the primitives hold no
references to sockets, processes, or path tables, so they are unit-testable
with fakes and reusable by future ingestion paths.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from .reports import Frame, REPORT_SIZE

__all__ = [
    "OverflowPolicy",
    "PolicyQueue",
    "TenantQuotaQueue",
    "drop_stat_aliases",
    "QueueStopped",
    "DeadLetter",
    "DeadLetterQueue",
    "RestartBackoff",
    "WorkerProbe",
    "WorkerSupervisor",
]


class OverflowPolicy(str, enum.Enum):
    """What a bounded ingestion queue does when it is full.

    * ``BLOCK`` — the producer waits (optionally up to a timeout) for a
      consumer to make room; loss-free but transfers pressure upstream,
    * ``DROP_OLDEST`` — evict the oldest queued payload to admit the new
      one; keeps the stream fresh under overload (newest-wins),
    * ``DROP_NEW`` — reject the new payload; keeps the oldest work
      (oldest-wins), mirroring plain UDP tail drop.
    """

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    DROP_NEW = "drop-new"

    @classmethod
    def coerce(cls, value: "OverflowPolicy | str") -> "OverflowPolicy":
        """Accept either the enum or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown overflow policy {value!r} (expected one of: {names})"
            ) from None


class QueueStopped(Exception):
    """Raised by :meth:`PolicyQueue.get` after :meth:`PolicyQueue.close`."""


class PolicyQueue:
    """A bounded FIFO with explicit overflow policy and drop accounting.

    Unlike :class:`queue.Queue`, a full queue never loses work silently:
    every admission decision increments a counter (``dropped_new``,
    ``dropped_oldest``, ``block_timeouts``) surfaced via :meth:`stats`.
    ``task_done``/``join`` semantics match the stdlib queue so daemon
    workers can drain it the same way.

    The queue is *report-weighted*: a queued item is either one payload
    (weight 1) or a :class:`~repro.core.reports.Frame` of ``frame.count``
    reports, and ``maxsize``, ``qsize`` and every drop counter are measured
    in reports, not items.  Overflow policies act at report granularity —
    a frame that does not fully fit is split (``DROP_NEW``/``BLOCK`` admit
    the fitting prefix, ``DROP_OLDEST`` evicts queued reports one at a
    time) so drop accounting stays exact per report.
    """

    def __init__(
        self,
        maxsize: int,
        policy: "OverflowPolicy | str" = OverflowPolicy.DROP_NEW,
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.policy = OverflowPolicy.coerce(policy)
        self._items: Deque[object] = deque()
        self._size = 0  # queued *reports* (frames weigh frame.count)
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._not_full = threading.Condition(self._mutex)
        self._all_done = threading.Condition(self._mutex)
        self._unfinished = 0
        self._closed = False
        self.puts = 0  # non-forced submitted reports: the queue's ledger
        self.dropped_new = 0
        self.dropped_oldest = 0
        self.block_timeouts = 0

    def __len__(self) -> int:
        with self._mutex:
            return self._size

    def qsize(self) -> int:
        """Approximate number of queued reports (frames weigh their rows)."""
        return len(self)

    @staticmethod
    def _weight(item: object) -> int:
        return item.count if isinstance(item, Frame) else 1

    # -- producer side ----------------------------------------------------

    def put(
        self,
        item: object,
        timeout: Optional[float] = None,
        force: bool = False,
    ) -> bool:
        """Admit ``item`` under the configured policy; True if fully admitted.

        ``force=True`` bypasses the bound entirely (used for control
        sentinels such as stop tokens, which must never be dropped).
        """
        with self._mutex:
            if force:
                # Control sentinels (stop tokens) are not workload; they stay
                # out of the submitted ledger.
                self._admit(item, self._weight(item))
                return True
            weight = self._weight(item)
            return self._put_one_locked(item, timeout) == weight

    def put_many(
        self,
        items: Iterable[object],
        timeout: Optional[float] = None,
    ) -> int:
        """Admit a batch under one lock acquisition; returns admitted reports.

        Each item is admitted under the same per-item policy semantics as
        :meth:`put`; the batch shape only changes the locking cost (one
        mutex round-trip and one consumer wakeup per call instead of one
        per report).
        """
        admitted = 0
        with self._mutex:
            for item in items:
                admitted += self._put_one_locked(item, timeout)
        return admitted

    def put_frame(
        self,
        frame: Frame,
        timeout: Optional[float] = None,
        tenants: Optional[Sequence[Optional[str]]] = None,
    ) -> int:
        """Admit a frame's reports in bulk; returns how many were admitted.

        ``tenants`` is accepted for interface parity with
        :class:`TenantQuotaQueue` and ignored here.
        """
        with self._mutex:
            return self._put_one_locked(frame, timeout)

    def _put_one_locked(self, item: object, timeout: Optional[float]) -> int:
        """Ledger + policy admission for one item; returns admitted reports."""
        weight = self._weight(item)
        self.puts += weight
        return self._policy_put(item, weight, timeout)

    def _policy_put(
        self, item: object, weight: int, timeout: Optional[float]
    ) -> int:
        """Admit up to ``weight`` reports of ``item`` under the overflow
        policy (mutex held); every refused/evicted report is counted."""
        if weight == 0:
            return 0
        room = self.maxsize - self._size
        if weight <= room:
            self._admit(item, weight)
            return weight
        is_frame = isinstance(item, Frame)
        if self.policy is OverflowPolicy.DROP_NEW:
            admitted = 0
            if room > 0 and is_frame:
                self._admit(item.split(room), room)
                admitted = room
            self.dropped_new += weight - admitted
            if is_frame:
                self._on_refused_rows(item, item.start, item.stop)
            else:
                self._on_refused_item(item)
            return admitted
        if self.policy is OverflowPolicy.DROP_OLDEST:
            # Evict queued reports one at a time (each one counted) until
            # the new item fits; a frame wider than the whole queue also
            # sheds its own oldest rows (newest-wins at report granularity).
            target = self.maxsize - min(weight, self.maxsize)
            while self._size > target and self._items:
                self._evict_oldest()
            if weight > self.maxsize:
                excess = weight - self.maxsize
                self.dropped_oldest += excess
                if is_frame:
                    self._on_refused_rows(item, item.start, item.start + excess)
                    item.start += excess
                weight = self.maxsize
            self._admit(item, weight)
            return weight
        # BLOCK: admit what fits now, wait for room for the rest (bounded
        # by timeout when given); a timeout counts every unadmitted report.
        admitted = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            room = self.maxsize - self._size
            remaining_w = self._weight(item) if is_frame else weight - admitted
            if remaining_w <= room:
                self._admit(item, remaining_w)
                return admitted + remaining_w
            if room > 0 and is_frame:
                self._admit(item.split(room), room)
                admitted += room
            remaining_t = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining_t is not None and remaining_t <= 0:
                # A scalar can never be partially admitted, so the window
                # weight is the full unadmitted remainder in both cases.
                rest = self._weight(item) if is_frame else weight
                self.block_timeouts += rest
                if is_frame:
                    self._on_refused_rows(item, item.start, item.stop)
                else:
                    self._on_refused_item(item)
                return admitted
            self._not_full.wait(remaining_t)

    def _admit(self, item: object, weight: int) -> None:
        self._items.append(item)
        self._size += weight
        self._unfinished += weight
        self._not_empty.notify()

    def _evict_oldest(self) -> None:
        """Evict one queued *report* (a scalar item or one frame row) to
        make room — DROP_OLDEST machinery; counts and settles it."""
        item = self._items[0]
        if isinstance(item, Frame) and item.count > 1:
            self._on_evicted(item, item.start)
            item.start += 1
        else:
            self._items.popleft()
            if isinstance(item, Frame):
                self._on_evicted(item, item.start)
            else:
                self._on_evicted(item, None)
        self._size -= 1
        self.dropped_oldest += 1
        # The evicted report will never be processed; settle its join()
        # obligation here.
        self._mark_done(1)

    # Attribution hooks (no-ops here; TenantQuotaQueue releases per-tenant
    # occupancy and counts per-tenant drops through them).

    def _on_evicted(self, item: object, row: Optional[int]) -> None:
        pass

    def _on_refused_rows(self, frame: Frame, lo: int, hi: int) -> None:
        pass

    def _on_refused_item(self, item: object) -> None:
        pass

    # -- consumer side ----------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> object:
        """Pop the oldest item, blocking until one arrives.

        Raises :class:`QueueStopped` if the queue was closed and drained.
        """
        with self._mutex:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._closed:
                    raise QueueStopped
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("queue.get timed out")
                self._not_empty.wait(remaining)
            return self._pop_locked()

    def get_nowait(self) -> object:
        """Pop without blocking; raises ``IndexError`` when empty."""
        with self._mutex:
            if not self._items:
                raise IndexError("queue is empty")
            return self._pop_locked()

    def get_many(
        self, max_reports: int, timeout: Optional[float] = None
    ) -> List[object]:
        """Pop up to ``max_reports`` queued reports as a list of items.

        Blocks (like :meth:`get`) only for the first item; the rest are
        drained without waiting.  The first item is returned even if it
        alone exceeds ``max_reports`` — a frame is never split on the
        consumer side.  One lock acquisition replaces the get +
        get_nowait-drain loop per batch.
        """
        if max_reports <= 0:
            raise ValueError(f"max_reports must be positive, got {max_reports}")
        with self._mutex:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._closed:
                    raise QueueStopped
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("queue.get_many timed out")
                self._not_empty.wait(remaining)
            out: List[object] = []
            total = 0
            while self._items:
                weight = self._weight(self._items[0])
                if out and total + weight > max_reports:
                    break
                out.append(self._pop_locked(notify=False))
                total += weight
                if total >= max_reports:
                    break
            if total > 1:
                self._not_full.notify_all()
            else:
                self._not_full.notify()
            return out

    def _pop_locked(self, notify: bool = True) -> object:
        item = self._items.popleft()
        weight = self._weight(item)
        self._size -= weight
        if notify:
            if weight > 1:
                self._not_full.notify_all()
            else:
                self._not_full.notify()
        return item

    def task_done(self, reports: int = 1) -> None:
        """Signal that ``reports`` previously-gotten reports are processed.

        Frame consumers settle a whole frame with ``task_done(frame.count)``.
        """
        with self._mutex:
            self._mark_done(reports)

    def _mark_done(self, reports: int = 1) -> None:
        if self._unfinished < reports:
            raise ValueError("task_done() called too many times")
        self._unfinished -= reports
        if self._unfinished == 0:
            self._all_done.notify_all()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted item was processed; True on success."""
        with self._mutex:
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._unfinished:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._all_done.wait(remaining)
            return True

    def close(self) -> None:
        """Wake blocked consumers; subsequent empty gets raise QueueStopped."""
        with self._mutex:
            self._closed = True
            self._not_empty.notify_all()

    def stats(self) -> Dict[str, int]:
        """Admission counters for :meth:`VeriDPDaemon.stats` consumption.

        Canonical drop keys (shared with the daemons' ``stats()`` and the
        ``veridp_queue_dropped_total`` metric family — see DESIGN.md §8):
        ``dropped_new`` (refused at the door), ``dropped_oldest``
        (evicted to admit newer), ``block_timeouts`` (blocking put timed
        out), and ``dropped`` — the total across all three.
        """
        with self._mutex:
            return {
                "queued": self._size,
                "puts": self.puts,
                "dropped_new": self.dropped_new,
                "dropped_oldest": self.dropped_oldest,
                "block_timeouts": self.block_timeouts,
                "dropped": (
                    self.dropped_new + self.dropped_oldest + self.block_timeouts
                ),
            }


def drop_stat_aliases(stats: Dict[str, int]) -> Dict[str, int]:
    """THE compatibility shim for the drop-key spellings (DESIGN.md §8).

    Canonical keys are ``dropped_new`` / ``dropped_oldest`` /
    ``block_timeouts``; this fills any that are absent with 0, derives
    ``dropped`` (their total) and the deprecated ``dropped_full_queue``
    alias (= ``dropped_new + block_timeouts``, its historical meaning).
    Every ``stats()`` surface routes through here instead of hand-rolling
    the alias, so retiring ``dropped_full_queue`` one day is one deletion.
    Mutates and returns ``stats``.
    """
    new = stats.setdefault("dropped_new", 0)
    oldest = stats.setdefault("dropped_oldest", 0)
    timeouts = stats.setdefault("block_timeouts", 0)
    stats["dropped"] = new + oldest + timeouts
    stats["dropped_full_queue"] = new + timeouts
    return stats


class _TenantItem:
    """A queued payload stamped with the tenant it was attributed to."""

    __slots__ = ("tenant", "payload")

    def __init__(self, tenant: Optional[str], payload: object) -> None:
        self.tenant = tenant
        self.payload = payload


class TenantQuotaQueue(PolicyQueue):
    """A :class:`PolicyQueue` with per-tenant occupancy quotas.

    One noisy tenant flooding the ingest queue must degrade only itself:
    each admitted item is attributed to a tenant (``classify(item)``,
    ``None`` for unattributed traffic) and every tenant's share of the
    queue is capped at ``ceil(share * maxsize)``.  A tenant at its cap is
    refused admission *regardless of the global policy* — even ``BLOCK``
    never lets an over-quota tenant stall the others — and the refusal is
    counted against that tenant (:attr:`tenant_dropped`) as well as in the
    global ``dropped_new`` ledger.

    Consumers are oblivious: :meth:`get` unstamps the payload (releasing
    the tenant's occupancy slot), and the stdlib-style ``task_done`` /
    ``join`` / ``close`` semantics are inherited unchanged.  Force-puts
    (stop sentinels) bypass attribution entirely, exactly as they bypass
    the bound.
    """

    def __init__(
        self,
        maxsize: int,
        policy: "OverflowPolicy | str" = OverflowPolicy.DROP_NEW,
        classify: Optional[Callable[[object], Optional[str]]] = None,
        shares: Optional[Dict[str, float]] = None,
        default_share: float = 1.0,
    ) -> None:
        super().__init__(maxsize, policy)
        self._classify = classify or (lambda item: None)
        if not 0 < default_share <= 1:
            raise ValueError(
                f"default_share must be in (0, 1], got {default_share}"
            )
        for tenant, share in (shares or {}).items():
            if not 0 < share <= 1:
                raise ValueError(
                    f"tenant {tenant!r}: share must be in (0, 1], got {share}"
                )
        self._caps: Dict[str, int] = {
            tenant: max(1, int(share * maxsize))
            for tenant, share in (shares or {}).items()
        }
        self._default_cap = max(1, int(default_share * maxsize))
        self._occupancy: Dict[Optional[str], int] = {}
        self.tenant_puts: Dict[Optional[str], int] = {}
        self.tenant_dropped: Dict[Optional[str], int] = {}

    def cap_of(self, tenant: Optional[str]) -> int:
        """The occupancy cap (in queue slots) for one tenant."""
        if tenant is None:
            return self._default_cap
        return self._caps.get(tenant, self._default_cap)

    def _put_one_locked(self, item: object, timeout: Optional[float]) -> int:
        if isinstance(item, Frame):
            return self._put_frame_locked(item, timeout)
        self.puts += 1
        return self._put_scalar_locked(item, timeout)

    def _put_scalar_locked(self, item: object, timeout: Optional[float]) -> int:
        """Scalar admission under both the global bound and the tenant quota
        (mutex held); returns 1 when admitted, 0 when refused."""
        tenant = self._classify(item)
        self.tenant_puts[tenant] = self.tenant_puts.get(tenant, 0) + 1
        if self._occupancy.get(tenant, 0) >= self.cap_of(tenant):
            self._drop(tenant, new=True)
            return 0
        if self._size < self.maxsize:
            self._admit_stamped(tenant, item)
            return 1
        if self.policy is OverflowPolicy.DROP_NEW:
            self._drop(tenant, new=True)
            return 0
        if self.policy is OverflowPolicy.DROP_OLDEST:
            self._evict_oldest()
            self._admit_stamped(tenant, item)
            return 1
        # BLOCK: the *global* bound may be waited out (the tenant is
        # under quota here, so the wait is legitimate backpressure).
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._size >= self.maxsize:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                self.block_timeouts += 1
                self.tenant_dropped[tenant] = (
                    self.tenant_dropped.get(tenant, 0) + 1
                )
                return 0
            self._not_full.wait(remaining)
        self._admit_stamped(tenant, item)
        return 1

    def put_frame(
        self,
        frame: Frame,
        timeout: Optional[float] = None,
        tenants: Optional[Sequence[Optional[str]]] = None,
    ) -> int:
        """Admit a frame with quota charges applied in bulk, counted per row.

        ``tenants`` gives the per-row attribution for the frame's current
        window (``frame.count`` entries); omitted rows are unattributed.
        When every tenant in the frame fits under its cap the whole frame
        is admitted (or split) as one item — one occupancy bump per tenant
        instead of one per report.  Only when some tenant is at its cap
        does admission fall back to row-at-a-time so refusals are charged
        to exactly the over-quota rows, like the scalar path.
        """
        frame.tenants = self._stamp_rows(frame, tenants)
        with self._mutex:
            return self._put_frame_locked(frame, timeout)

    @staticmethod
    def _stamp_rows(
        frame: Frame, tenants: Optional[Sequence[Optional[str]]]
    ) -> Tuple[Optional[str], ...]:
        """Build the absolute per-row tenant tuple for ``frame.data``."""
        nrows = len(frame.data) // REPORT_SIZE
        if tenants is None:
            if frame.tenants is not None:
                return frame.tenants
            return (None,) * nrows
        window = tuple(tenants)
        if len(window) != frame.count:
            raise ValueError(
                f"{len(window)} tenant stamps for a {frame.count}-row frame"
            )
        return (
            (None,) * frame.start + window + (None,) * (nrows - frame.stop)
        )

    def _put_frame_locked(self, frame: Frame, timeout: Optional[float]) -> int:
        weight = frame.count
        self.puts += weight
        if weight == 0:
            return 0
        if frame.tenants is None:
            frame.tenants = self._stamp_rows(frame, None)
        window = frame.tenants[frame.start : frame.stop]
        counts: Dict[Optional[str], int] = {}
        for tenant in window:
            counts[tenant] = counts.get(tenant, 0) + 1
        for tenant, n in counts.items():
            self.tenant_puts[tenant] = self.tenant_puts.get(tenant, 0) + n
        over_quota = any(
            self._occupancy.get(tenant, 0) + n > self.cap_of(tenant)
            for tenant, n in counts.items()
        )
        if not over_quota:
            # Bulk path: reserve every row's occupancy up front; the
            # refusal/eviction hooks release whatever the policy sheds.
            for tenant, n in counts.items():
                self._occupancy[tenant] = self._occupancy.get(tenant, 0) + n
            return self._policy_put(frame, weight, timeout)
        # Contended path: some tenant is at its cap, so rows are admitted
        # individually — refusals land on exactly the over-quota rows and
        # every counter stays per report, matching the scalar path.
        admitted = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        for i, tenant in enumerate(window):
            if self._occupancy.get(tenant, 0) >= self.cap_of(tenant):
                self._drop(tenant, new=True)
                continue
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            item = _TenantItem(tenant, frame.row(i))
            self._occupancy[tenant] = self._occupancy.get(tenant, 0) + 1
            admitted += self._policy_put(item, 1, remaining)
        return admitted

    def _drop(self, tenant: Optional[str], new: bool) -> None:
        if new:
            self.dropped_new += 1
        self.tenant_dropped[tenant] = self.tenant_dropped.get(tenant, 0) + 1

    def _admit_stamped(self, tenant: Optional[str], payload: object) -> None:
        self._occupancy[tenant] = self._occupancy.get(tenant, 0) + 1
        self._admit(_TenantItem(tenant, payload), 1)

    # -- attribution hooks (called by the base policy machinery) -----------

    def _on_evicted(self, item: object, row: Optional[int]) -> None:
        if isinstance(item, Frame):
            tenant = item.tenants[row] if item.tenants is not None else None
        elif isinstance(item, _TenantItem):
            tenant = item.tenant
        else:
            return  # force-put sentinel, never attributed
        self._occupancy[tenant] = self._occupancy.get(tenant, 0) - 1
        self.tenant_dropped[tenant] = self.tenant_dropped.get(tenant, 0) + 1

    def _on_refused_rows(self, frame: Frame, lo: int, hi: int) -> None:
        # Rows refused at admission had their occupancy reserved by the
        # bulk path; release it and charge the drop to each row's tenant.
        for i in range(lo, hi):
            tenant = frame.tenants[i] if frame.tenants is not None else None
            self._occupancy[tenant] = self._occupancy.get(tenant, 0) - 1
            self.tenant_dropped[tenant] = self.tenant_dropped.get(tenant, 0) + 1

    def _on_refused_item(self, item: object) -> None:
        if isinstance(item, _TenantItem):
            self._occupancy[item.tenant] = self._occupancy.get(item.tenant, 0) - 1
            self.tenant_dropped[item.tenant] = (
                self.tenant_dropped.get(item.tenant, 0) + 1
            )

    def _unstamp(self, item: object) -> object:
        if isinstance(item, _TenantItem):
            with self._mutex:
                self._occupancy[item.tenant] -= 1
            return item.payload
        if isinstance(item, Frame) and item.tenants is not None:
            with self._mutex:
                for i in range(item.start, item.stop):
                    self._occupancy[item.tenants[i]] -= 1
            return item
        return item  # force-put sentinel, never stamped

    def get(self, timeout: Optional[float] = None) -> object:
        return self._unstamp(super().get(timeout))

    def get_nowait(self) -> object:
        return self._unstamp(super().get_nowait())

    def get_many(
        self, max_reports: int, timeout: Optional[float] = None
    ) -> List[object]:
        return [
            self._unstamp(item)
            for item in super().get_many(max_reports, timeout)
        ]

    def stats(self) -> Dict[str, object]:
        """Global admission counters plus the per-tenant breakdown."""
        out: Dict[str, object] = super().stats()
        with self._mutex:
            tenants = sorted(
                set(self.tenant_puts)
                | set(self.tenant_dropped)
                | set(self._occupancy),
                key=lambda t: (t is None, t),
            )
            out["tenants"] = {
                (tenant if tenant is not None else ""): {
                    "queued": self._occupancy.get(tenant, 0),
                    "cap": self.cap_of(tenant),
                    "puts": self.tenant_puts.get(tenant, 0),
                    "dropped": self.tenant_dropped.get(tenant, 0),
                }
                for tenant in tenants
            }
        return out


# ---------------------------------------------------------------------------
# dead-lettering
# ---------------------------------------------------------------------------


@dataclass
class DeadLetter:
    """Structured record of one payload the pipeline could not process."""

    payload: bytes
    stage: str  # "decode" | "verify" | ...
    error_type: str
    error: str
    attempts: int = 1
    quarantined: bool = False

    def describe(self) -> str:
        state = "quarantined" if self.quarantined else "pending"
        return (
            f"[{state}] {self.stage} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.error} ({len(self.payload)}B payload)"
        )


class DeadLetterQueue:
    """Bounded retry-then-quarantine storage for failed payloads.

    A payload that fails decoding or crashes verification lands here as a
    :class:`DeadLetter` instead of killing a worker or vanishing into a
    bare counter.  :meth:`retry` re-runs a handler over the pending set;
    records that keep failing past ``max_attempts`` move to the quarantine
    ring, whose eviction is counted (``evicted``) so accounting stays
    closed even when the operator never drains it.
    """

    def __init__(self, capacity: int = 1024, max_attempts: int = 3) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        self.capacity = capacity
        self.max_attempts = max_attempts
        self._pending: Deque[DeadLetter] = deque()
        self._quarantined: Deque[DeadLetter] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total = 0
        self.recovered = 0
        self.evicted = 0

    def add(self, payload: bytes, stage: str, error: BaseException) -> DeadLetter:
        """Record one failed payload (evicting the oldest pending if full)."""
        letter = DeadLetter(
            payload=payload,
            stage=stage,
            error_type=type(error).__name__,
            error=str(error),
        )
        with self._lock:
            self.total += 1
            if len(self._pending) >= self.capacity:
                self._quarantine(self._pending.popleft())
            self._pending.append(letter)
        return letter

    def _quarantine(self, letter: DeadLetter) -> None:
        letter.quarantined = True
        if len(self._quarantined) == self._quarantined.maxlen:
            self.evicted += 1
        self._quarantined.append(letter)

    def retry(
        self, handler: Callable[[bytes], None]
    ) -> Tuple[int, int]:
        """Re-run ``handler`` over pending letters.

        ``handler`` raising keeps (or, past ``max_attempts``, quarantines)
        the letter; returning normally recovers it.  Returns
        ``(recovered, quarantined_now)``.
        """
        with self._lock:
            batch = list(self._pending)
            self._pending.clear()
        recovered = 0
        quarantined = 0
        survivors: List[DeadLetter] = []
        for letter in batch:
            try:
                handler(letter.payload)
            except BaseException as exc:
                letter.attempts += 1
                letter.error_type = type(exc).__name__
                letter.error = str(exc)
                if letter.attempts >= self.max_attempts:
                    quarantined += 1
                    with self._lock:
                        self._quarantine(letter)
                else:
                    survivors.append(letter)
            else:
                recovered += 1
        with self._lock:
            self.recovered += recovered
            # Preserve FIFO order ahead of anything added mid-retry.
            self._pending.extendleft(reversed(survivors))
        return recovered, quarantined

    def drain_quarantined(self) -> List[DeadLetter]:
        """Return and clear the quarantine ring (operator interface)."""
        with self._lock:
            letters = list(self._quarantined)
            self._quarantined.clear()
            return letters

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def quarantined(self) -> int:
        with self._lock:
            return len(self._quarantined)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "dead_lettered": self.total,
                "dead_letter_pending": len(self._pending),
                "dead_letter_quarantined": len(self._quarantined),
                "dead_letter_recovered": self.recovered,
                "dead_letter_evicted": self.evicted,
            }


# ---------------------------------------------------------------------------
# restart scheduling and supervision
# ---------------------------------------------------------------------------


class RestartBackoff:
    """Bounded exponential backoff: ``base * factor**n`` capped at ``cap``.

    One instance per supervised worker; :meth:`reset` after a worker
    survives ``healthy_after`` seconds so an old crash streak does not
    penalise a now-stable worker forever.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 2.0,
        healthy_after: float = 30.0,
    ) -> None:
        if base <= 0 or factor < 1.0 or cap < base:
            raise ValueError(
                f"invalid backoff schedule (base={base}, factor={factor}, cap={cap})"
            )
        self.base = base
        self.factor = factor
        self.cap = cap
        self.healthy_after = healthy_after
        self.failures = 0
        self._last_restart = 0.0

    def next_delay(self, now: Optional[float] = None) -> float:
        """Delay to wait before the next restart attempt (and record it)."""
        now = time.monotonic() if now is None else now
        if (
            self.failures
            and self._last_restart
            and now - self._last_restart >= self.healthy_after
        ):
            self.failures = 0
        delay = min(self.cap, self.base * (self.factor ** self.failures))
        self.failures += 1
        self._last_restart = now
        return delay

    def reset(self) -> None:
        self.failures = 0
        self._last_restart = 0.0


@dataclass
class WorkerProbe:
    """One worker's health snapshot, as seen by the supervisor."""

    worker_id: int
    alive: bool
    heartbeat_age: float = 0.0


class WorkerSupervisor:
    """Detect dead or wedged workers and restart them, under a budget.

    The supervisor owns *policy* (poll cadence, backoff, budget) and leaves
    *mechanism* to callbacks so it can supervise OS processes, threads, or
    fakes in tests:

    * ``probe()`` -> sequence of :class:`WorkerProbe` (alive + heartbeat age),
    * ``restart(worker_id)`` — tear down and relaunch one worker,
    * ``on_budget_exhausted()`` — called once when crash restarts exceed
      ``restart_budget``; the owner degrades (e.g. falls back to a
      single-process daemon) and the supervisor stops.

    A worker is considered wedged when its heartbeat age exceeds
    ``heartbeat_timeout`` even though the process is alive; wedged workers
    are restarted exactly like dead ones.
    """

    def __init__(
        self,
        probe: Callable[[], Sequence[WorkerProbe]],
        restart: Callable[[int], None],
        restart_budget: int = 3,
        poll_interval: float = 0.05,
        heartbeat_timeout: float = 10.0,
        backoff: Optional[RestartBackoff] = None,
        on_budget_exhausted: Optional[Callable[[], None]] = None,
    ) -> None:
        if restart_budget < 0:
            raise ValueError(f"restart_budget must be >= 0, got {restart_budget}")
        self._probe = probe
        self._restart = restart
        self.restart_budget = restart_budget
        self.poll_interval = poll_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._backoffs: Dict[int, RestartBackoff] = {}
        self._backoff_proto = backoff or RestartBackoff()
        self._on_budget_exhausted = on_budget_exhausted
        self._thread: Optional[threading.Thread] = None
        self._wake = threading.Event()
        self._running = False
        self._lock = threading.Lock()
        self.restarts = 0
        self.wedged_restarts = 0
        self.exhausted = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._wake.clear()
        self._thread = threading.Thread(
            target=self._loop, name="veridp-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._running = False
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._running

    # -- supervision loop -------------------------------------------------

    def _loop(self) -> None:
        while self._running:
            try:
                self.check_once()
            except Exception:  # pragma: no cover - supervision must survive
                pass
            self._wake.wait(self.poll_interval)
            self._wake.clear()

    def check_once(self) -> int:
        """One supervision pass; returns how many workers were restarted.

        Exposed so tests (and the sharded daemon's ``join`` loop) can drive
        supervision synchronously without racing the poll thread.
        """
        restarted = 0
        with self._lock:
            if self.exhausted:
                return 0
            for probe in self._probe():
                wedged = (
                    probe.alive
                    and probe.heartbeat_age > self.heartbeat_timeout > 0
                )
                if probe.alive and not wedged:
                    continue
                if self.restarts >= self.restart_budget:
                    self.exhausted = True
                    self._running = False
                    if self._on_budget_exhausted is not None:
                        self._on_budget_exhausted()
                    return restarted
                backoff = self._backoffs.setdefault(
                    probe.worker_id,
                    RestartBackoff(
                        base=self._backoff_proto.base,
                        factor=self._backoff_proto.factor,
                        cap=self._backoff_proto.cap,
                        healthy_after=self._backoff_proto.healthy_after,
                    ),
                )
                delay = backoff.next_delay()
                if delay > 0:
                    time.sleep(delay)
                self._restart(probe.worker_id)
                self.restarts += 1
                if wedged:
                    self.wedged_restarts += 1
                restarted += 1
        return restarted

    def stats(self) -> Dict[str, int]:
        return {
            "restarts": self.restarts,
            "wedged_restarts": self.wedged_restarts,
            "restart_budget": self.restart_budget,
            "budget_exhausted": int(self.exhausted),
        }
