"""The VeriDP server (Section 3.4): intercept, verify, localize.

The server sits beside the controller.  It

* subscribes to the OpenFlow :class:`~repro.controlplane.messages.Channel`
  and keeps its path table synchronised with the rule stream (lazy full
  rebuild by default; callers doing LPM-only workloads can use
  :class:`~repro.core.incremental.IncrementalPathTable` directly),
* receives tag reports — as wire bytes on :meth:`receive_report_bytes` or
  as objects on :meth:`receive_report` — verifies them with Algorithm 3,
* on failure runs Algorithm 4 to recover the real path and blame switches,
* keeps an inconsistency log operators can drain.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd.headerspace import HeaderSpace
from ..controlplane.messages import Channel, FlowMod
from ..netmodel.topology import Topology
from ..obs import Observability
from .bloom import BloomTagScheme
from .localization import LocalizationResult, PathInferLocalizer
from .pathtable import BUILD_STATS, PathTable, PathTableBuilder, SnapshotProvider
from .reports import PortCodec, ReportDecodeError, TagReport, unpack_report
from .verifier import VerificationResult, Verdict, Verifier

__all__ = ["VeriDPServer", "Incident"]


@dataclass
class Incident:
    """One detected inconsistency: the failed verification + localization."""

    verification: VerificationResult
    localization: Optional[LocalizationResult] = None

    @property
    def blamed_switches(self) -> List[str]:
        """Switches Algorithm 4 holds responsible (may be empty)."""
        if self.localization is None:
            return []
        return self.localization.blamed_switches()

    def __str__(self) -> str:
        blame = ", ".join(self.blamed_switches) or "unlocalized"
        return f"INCONSISTENCY {self.verification} | blamed: {blame}"


class VeriDPServer:
    """The monitoring endpoint of the system."""

    def __init__(
        self,
        topo: Topology,
        channel: Optional[Channel] = None,
        hs: Optional[HeaderSpace] = None,
        scheme: Optional[BloomTagScheme] = None,
        codec: Optional[PortCodec] = None,
        localize_failures: bool = True,
        max_path_length: Optional[int] = None,
        fast_path: bool = True,
        obs: Optional[Observability] = None,
        state_dir: Optional[str] = None,
        fsync: str = "interval",
        snapshot_every: Optional[int] = None,
        snapshot_retain: int = 3,
        build_workers: Optional[int] = None,
        coalesce_ms: float = 0.0,
        incremental: bool = False,
        slices=None,
    ) -> None:
        self.topo = topo
        self.obs = obs or Observability()
        self.scheme = scheme or BloomTagScheme()
        self.codec = codec or PortCodec(sorted(topo.switches))
        self.localize_failures = localize_failures
        self.fast_path = fast_path
        self.persist = None
        self.updater = None
        self.boot_source: Optional[str] = None
        self.snapshot_every = snapshot_every
        self._rules_since_snapshot = 0
        #: ``> 0`` enables the coalescing window (durable mode): rule
        #: updates are WAL-logged and staged immediately, but the path
        #: table recomputes once per window instead of once per event.
        self.coalesce_ms = coalesce_ms
        self.build_workers = build_workers
        self._flush_deadline: Optional[float] = None
        self.update_flushes = 0
        self.update_flush_events = 0
        if state_dir is not None:
            # Durable mode: the snapshot owns the BDD node table, so the
            # HeaderSpace must be ours to create.
            if hs is not None:
                raise ValueError(
                    "state_dir manages its own HeaderSpace; do not pass hs"
                )
            from ..persist.recovery import PersistentState

            self.persist = PersistentState(
                state_dir,
                fsync=fsync,
                retain=snapshot_retain,
                obs=self.obs,
            )
            boot = self.persist.boot(
                topo,
                scheme=self.scheme,
                max_path_length=max_path_length,
                build_workers=build_workers,
            )
            self.hs = boot.hs
            self.updater = boot.updater
            self._provider = boot.updater.provider
            self.builder = boot.updater.builder
            self.table: PathTable = boot.updater.table
            self.state_version = boot.state_version
            self.boot_source = boot.source
        elif incremental:
            # Incremental (non-durable) mode: rule changes flow through
            # apply_rule_update/apply_rule_delete into an in-memory
            # IncrementalPathTable — the durable update path minus the WAL.
            # This is what the state fuzzer drives: the staged/coalesced
            # update machinery with no filesystem dependency.
            from .incremental import IncrementalPathTable

            self.hs = hs or HeaderSpace()
            self.updater = IncrementalPathTable(
                topo,
                self.hs,
                scheme=self.scheme,
                max_path_length=max_path_length,
                build_workers=build_workers,
            )
            self._provider = self.updater.provider
            self.builder = self.updater.builder
            self.table = self.updater.table
            self.state_version = 0
        else:
            self.hs = hs or HeaderSpace()
            self._provider = SnapshotProvider(topo, self.hs)
            self.builder = PathTableBuilder(
                topo,
                self.hs,
                scheme=self.scheme,
                provider=self._provider,
                max_path_length=max_path_length,
            )
            self.table = self.builder.build(workers=build_workers)
            self.state_version = 0
        if fast_path:
            self.table.compile_matchers(self.hs)
        self.verifier = Verifier(self.table, self.hs, fast_path=fast_path)
        # Runtime import: repro.analysis pulls this module in at package
        # init, so a top-level import would be circular.
        from ..analysis.coverage import CoverageTracker

        #: Coverage over the live table, fed by every verification on the
        #: direct report path; the active prober closes its dark list.
        self.coverage = CoverageTracker(self.table)
        self.localizer = PathInferLocalizer(self.builder, self.scheme, topo)
        self.incidents: List[Incident] = []
        self.incidents_total = 0  # survives drain_incidents(), unlike len()
        self.decode_errors = 0
        self.localization_errors = 0
        self.localizations = 0
        self._dirty = False
        # A persistent fault produces one identical failing report per
        # sampled packet; running Algorithm 4 once per *distinct* failure is
        # enough.  Bounded FIFO cache, invalidated on configuration change.
        self._localization_cache: "OrderedDict[tuple, LocalizationResult]" = (
            OrderedDict()
        )
        self.localization_cache_hits = 0
        self.localization_cache_max = 4096
        # -- multi-tenant slicing (repro.slice) -----------------------------
        #: The :class:`~repro.slice.registry.SliceRegistry`, when sliced.
        self.slices = None
        #: tenant name -> :class:`~repro.slice.views.TenantPathTable`.
        self.tenant_views: Dict[str, object] = {}
        #: The :class:`~repro.slice.isolation.IsolationVerifier`, when sliced.
        self.isolation = None
        self.isolation_incidents: List[object] = []
        self.isolation_incidents_total = 0
        #: Per-tenant report attribution counts ("" = unattributed).
        self.tenant_reports: Dict[str, int] = {}
        self._tenant_cov_cache: Optional[tuple] = None
        if slices is not None:
            self.set_slices(slices)
        self._register_metrics()
        if channel is not None:
            channel.subscribe(self._on_message)

    # -- multi-tenant slicing -------------------------------------------------

    def set_slices(self, registry):
        """Configure (or reconfigure) the tenant slice layer.

        Builds one journal-synced :class:`~repro.slice.views.TenantPathTable`
        per tenant over the live table, wires the coverage tracker's tenant
        resolver, and runs a full cross-tenant isolation sweep — whose
        incidents are logged and returned.  Safe to call again after tenant
        churn (the fuzz campaign's add/remove rounds do exactly that).
        """
        from ..slice.isolation import IsolationVerifier
        from ..slice.views import TenantPathTable

        if registry.hs is not self.hs:
            raise ValueError(
                "slice registry must be compiled on the server's HeaderSpace "
                "(footprints share the node store)"
            )
        self.slices = registry
        self.tenant_views = {
            tenant.name: TenantPathTable(self.table, self.hs, tenant)
            for tenant in registry
        }
        self.coverage.tenant_resolver = registry.entry_resolver()
        self._tenant_cov_cache = None
        self.isolation = IsolationVerifier(
            registry,
            self.table,
            self.hs,
            provider=self._provider,
            updater=self.updater,
        )
        incidents = self.isolation.check_full()
        self._log_isolation(incidents)
        return incidents

    def _log_isolation(self, incidents) -> None:
        if incidents:
            self.isolation_incidents.extend(incidents)
            self.isolation_incidents_total += len(incidents)

    def _recheck_isolation(self):
        """Incremental isolation re-proof + tenant-view resync after churn."""
        if self.isolation is None:
            return []
        incidents = self.isolation.recheck()
        self._log_isolation(incidents)
        for view in self.tenant_views.values():
            view.sync()
        return incidents

    def drain_isolation_incidents(self):
        """Return and clear the cross-tenant isolation incident log."""
        incidents = self.isolation_incidents
        self.isolation_incidents = []
        return incidents

    def _register_metrics(self) -> None:
        """Expose server state on the shared registry, at zero hot-path cost.

        Everything here is a *callback* instrument: the verifier/localizer
        keep their plain-int counters on the hot path and the registry
        reads them at collection time.  A daemon that wraps this server
        re-registers ``veridp_verifications_total`` with its merged
        worker view (latest owner wins — see :mod:`repro.obs.metrics`).
        """
        reg = self.obs.registry
        reg.counter(
            "veridp_verifications_total",
            "Tag reports verified, by Algorithm 3 verdict.",
            ("verdict",),
            callback=lambda: {
                (v.value,): n for v, n in self.verifier.counters.items()
            },
        )
        reg.counter(
            "veridp_fastpath_verifications_total",
            "Verifications by implementation path (compiled fast vs "
            "paper-literal BDD).",
            ("path",),
            callback=lambda: {
                ("fast",): self.verifier.fast_verifications,
                ("bdd",): self.verifier.slow_verifications,
            },
        )
        reg.counter(
            "veridp_flow_cache_hits_total",
            "Fast-path verifications answered from the per-flow cache.",
            callback=lambda: self.verifier.flow_cache_hits,
        )
        reg.counter(
            "veridp_flow_cache_misses_total",
            "Fast-path verifications that ran the full matcher scan.",
            callback=lambda: self.verifier.flow_cache_misses,
        )
        reg.gauge(
            "veridp_flow_cache_size",
            "Flows currently resident in the verifier's flow cache.",
            callback=lambda: self.verifier.flow_cache_len,
        )
        reg.counter(
            "veridp_vector_batches_total",
            "Report batches verified through the numpy vector kernel.",
            callback=lambda: self.verifier.vector_batches,
        )
        reg.counter(
            "veridp_vector_verifications_total",
            "Reports verified by the vector kernel (scalar-resolved rows "
            "excluded).",
            callback=lambda: self.verifier.vector_verifications,
        )
        reg.counter(
            "veridp_vector_fallbacks_total",
            "Vector-path batches downgraded to the scalar loop (no numpy, "
            "below the crossover size, or an unpackable table/layout).",
            callback=lambda: self.verifier.vector_fallbacks,
        )
        reg.counter(
            "veridp_vector_scalar_rows_total",
            "Rows inside vector batches resolved by the scalar matcher "
            "because their pair was too irregular to pack.",
            callback=lambda: self.verifier.vector_scalar_rows,
        )
        reg.counter(
            "veridp_vector_kernel_compiles_total",
            "Per-pair vector kernels compiled (delta resyncs recompile "
            "only dirty pairs, so this stays near the pair count).",
            callback=lambda: getattr(self.table, "vector_kernel_compiles", 0),
        )
        vector_batch_hist = reg.histogram(
            "veridp_vector_batch_size",
            "Distribution of batch sizes fed to the vector kernel.",
            buckets=(32, 64, 128, 256, 512, 1024, 4096, 16384, 65536),
        )
        self.verifier.vector_batch_observer = vector_batch_hist.observe
        reg.counter(
            "veridp_build_parallel_fallback",
            "Parallel path-table builds downgraded to serial by the "
            "small-host CPU crossover.",
            callback=lambda: BUILD_STATS["parallel_fallback"],
        )
        reg.counter(
            "veridp_decode_errors_total",
            "Report payloads the server-side codec rejected.",
            callback=lambda: self.decode_errors,
        )
        reg.counter(
            "veridp_localizations_total",
            "Algorithm 4 localizations attempted (cache hits included).",
            callback=lambda: self.localizations,
        )
        reg.counter(
            "veridp_localization_cache_hits_total",
            "Localizations served from the bounded result cache.",
            callback=lambda: self.localization_cache_hits,
        )
        reg.counter(
            "veridp_localization_errors_total",
            "Failures Algorithm 4 could not localize (incident kept).",
            callback=lambda: self.localization_errors,
        )
        reg.counter(
            "veridp_incidents_total",
            "Inconsistencies detected since server start (drain-proof).",
            callback=lambda: self.incidents_total,
        )
        reg.gauge(
            "veridp_incident_log_size",
            "Incidents currently waiting in the operator log.",
            callback=lambda: len(self.incidents),
        )
        reg.gauge(
            "veridp_path_table_version",
            "Structural version of the live path table.",
            callback=lambda: self.table.version,
        )
        reg.gauge(
            "veridp_state_version",
            "Monotonic count of rule updates applied to the server's state.",
            callback=lambda: self.state_version,
        )
        reg.gauge(
            "veridp_path_table_pairs",
            "Indexed (inport, outport) pairs in the path table.",
            callback=lambda: self.table.stats().num_pairs,
        )
        reg.gauge(
            "veridp_path_table_paths",
            "Distinct configured paths in the path table.",
            callback=lambda: self.table.stats().num_paths,
        )
        reg.gauge(
            "veridp_build_last_seconds",
            "Wall-clock seconds of the most recent full path-table build.",
            callback=lambda: self.table.build_time_s,
        )
        reg.gauge(
            "veridp_build_workers",
            "Worker processes the most recent full build ran on (1 = serial).",
            callback=lambda: getattr(self.table, "build_workers", 1),
        )
        reg.gauge(
            "veridp_update_last_seconds",
            "Seconds of the most recent incremental update or flush.",
            callback=lambda: (
                0.0 if self.updater is None else self.updater.last_update_s
            ),
        )
        reg.gauge(
            "veridp_update_pending",
            "Rule events staged in the coalescing window, awaiting flush.",
            callback=lambda: (
                0 if self.updater is None else self.updater.pending_updates
            ),
        )
        reg.counter(
            "veridp_update_flushes_total",
            "Coalesced flushes applied to the path table.",
            callback=lambda: self.update_flushes,
        )
        reg.counter(
            "veridp_update_flush_events_total",
            "Rule events applied through coalesced flushes.",
            callback=lambda: self.update_flush_events,
        )
        reg.gauge(
            "veridp_update_dirty_switches",
            "Switches the most recent coalesced flush recomputed.",
            callback=lambda: self._last_flush_stat("dirty_switches"),
        )
        reg.gauge(
            "veridp_update_dirty_ports",
            "(switch, port) predicates the most recent flush found changed.",
            callback=lambda: self._last_flush_stat("dirty_ports"),
        )
        # Coverage gauges read the tracker's memoized report: recomputed
        # only when the table or the observation stream actually changed,
        # so a metrics scrape costs a dict lookup, not an O(table) walk.
        reg.gauge(
            "veridp_coverage_path_ratio",
            "Fraction of path-table entries verified at least once.",
            callback=lambda: self.coverage.report().path_coverage,
        )
        reg.gauge(
            "veridp_coverage_pair_ratio",
            "Fraction of (inport, outport) pairs with every entry verified.",
            callback=lambda: self.coverage.report().pair_coverage,
        )
        reg.gauge(
            "veridp_coverage_hop_ratio",
            "Fraction of distinct hops on some verified path.",
            callback=lambda: self.coverage.report().hop_coverage,
        )
        reg.gauge(
            "veridp_coverage_dark_paths",
            "Path-table entries no passing verification has exercised.",
            callback=lambda: len(self.coverage.report().dark_paths),
        )
        reg.gauge(
            "veridp_coverage_dark_pairs",
            "(inport, outport) pairs with at least one unverified entry.",
            callback=lambda: len(self.coverage.report().dark_pairs),
        )
        reg.counter(
            "veridp_coverage_observations_total",
            "Verification results fed to the coverage tracker.",
            callback=lambda: self.coverage.observations,
        )
        reg.counter(
            "veridp_coverage_invalidated_pairs_total",
            "Pairs whose coverage the dirty-pair journal invalidated.",
            callback=lambda: self.coverage.invalidated_pairs,
        )
        # Tenant-slice instruments: label-per-tenant callbacks over the
        # slice layer's counters; all of them collapse to empty series on
        # an unsliced server, so registration is unconditional.
        reg.counter(
            "veridp_tenant_reports_total",
            "Tag reports attributed to each tenant's footprint "
            "(tenant=\"\" = unattributed).",
            ("tenant",),
            callback=lambda: {
                (tenant,): n for tenant, n in self.tenant_reports.items()
            },
        )
        reg.gauge(
            "veridp_tenant_view_paths",
            "Path entries in each tenant's sliced view of the table.",
            ("tenant",),
            callback=lambda: {
                (name,): view.num_paths()
                for name, view in self.tenant_views.items()
            },
        )
        reg.gauge(
            "veridp_coverage_tenant_dark_paths",
            "Unverified path-table entries attributed to each tenant.",
            ("tenant",),
            callback=lambda: {
                (tenant,): dark
                for tenant, (dark, _total) in self._tenant_coverage().items()
            },
        )
        reg.gauge(
            "veridp_coverage_tenant_path_ratio",
            "Fraction of each tenant's attributed entries verified.",
            ("tenant",),
            callback=lambda: {
                (tenant,): ((total - dark) / total if total else 0.0)
                for tenant, (dark, total) in self._tenant_coverage().items()
            },
        )
        reg.counter(
            "veridp_isolation_incidents_total",
            "Cross-tenant isolation violations detected (drain-proof).",
            callback=lambda: self.isolation_incidents_total,
        )
        reg.gauge(
            "veridp_isolation_incident_log_size",
            "Isolation incidents currently waiting in the operator log.",
            callback=lambda: len(self.isolation_incidents),
        )
        reg.counter(
            "veridp_isolation_checks_total",
            "Cumulative (table pair, tenant) isolation proofs performed.",
            callback=lambda: (
                0 if self.isolation is None else self.isolation.checks_total
            ),
        )
        reg.gauge(
            "veridp_isolation_last_tenant_pairs",
            "(pair, tenant) proofs the most recent isolation run needed "
            "(incremental rechecks stay near the churned slice's size).",
            callback=lambda: (
                0
                if self.isolation is None
                else self.isolation.last_tenant_pairs
            ),
        )
        reg.counter(
            "veridp_bdd_cache_hits_total",
            "BDD operation-cache hits (ite/not/apply memo).",
            callback=lambda: self.hs.bdd.cache_hits,
        )
        reg.counter(
            "veridp_bdd_cache_misses_total",
            "BDD operation-cache misses.",
            callback=lambda: self.hs.bdd.cache_misses,
        )
        reg.counter(
            "veridp_bdd_cache_evictions_total",
            "Entries evicted from the bounded BDD operation caches.",
            callback=lambda: self.hs.bdd.cache_evictions,
        )
        reg.gauge(
            "veridp_bdd_nodes",
            "Live nodes in the shared BDD manager.",
            callback=lambda: self.hs.bdd.num_nodes(),
        )

    def _tenant_coverage(self) -> Dict[str, tuple]:
        """``tenant -> (dark entries, total entries)`` attribution.

        Walks the coverage report's table once per report generation
        (memoized on the report object): metric scrapes between state
        changes cost a dict lookup.
        """
        if self.slices is None:
            return {}
        report = self.coverage.report()
        cached = self._tenant_cov_cache
        if cached is not None and cached[0] is report:
            return cached[1]
        resolve = self.coverage.tenant_resolver
        counts: Dict[str, list] = {
            tenant.name: [0, 0] for tenant in self.slices
        }
        dark_ids = {
            id(entry) for _, _, entry in report.dark_paths
        }
        for inport, outport, entry in self.coverage.table.all_entries():
            tenant = resolve(inport, outport, entry)
            if tenant is None or tenant not in counts:
                continue
            counts[tenant][1] += 1
            if id(entry) in dark_ids:
                counts[tenant][0] += 1
        result = {
            tenant: (dark, total) for tenant, (dark, total) in counts.items()
        }
        self._tenant_cov_cache = (report, result)
        return result

    def _last_flush_stat(self, field_name: str) -> int:
        updater = self.updater
        if updater is None or updater.last_flush is None:
            return 0
        return getattr(updater.last_flush, field_name)

    # -- control-plane synchronisation ---------------------------------

    def _on_message(self, message: object) -> None:
        if isinstance(message, FlowMod):
            # The logical tables (inside self.topo) were already updated by
            # the controller before the FlowMod was sent; we only note that
            # our snapshot is stale.
            self._dirty = True

    def refresh_if_dirty(self) -> bool:
        """Rebuild the path table if rule changes were observed.

        In durable and incremental modes this is a no-op: rule changes flow
        through :meth:`apply_rule_update`/:meth:`apply_rule_delete`, which
        update the table incrementally (and, when durable, log to the WAL
        first) — a lazy full rebuild would bypass both.
        """
        if self.updater is not None:
            return False
        if not self._dirty:
            return False
        self._provider.refresh(self.topo, self.hs)
        self.table = self.builder.build(workers=self.build_workers)
        if self.fast_path:
            self.table.compile_matchers(self.hs)
        # Swap the table under the existing verifier: its counters are part
        # of the server's long-lived statistics (and the repair engine
        # reads them across rebuilds).
        self.verifier.table = self.table
        # The flow cache keyed headers against the *old* table's paths;
        # invalidate it exactly like the localization cache below.
        self.verifier.invalidate_fast_path()
        self._localization_cache.clear()
        # The rebuild replaced every entry object; accumulated coverage
        # vouched for entries that no longer exist.
        self.coverage.retarget(self.table)
        self._tenant_cov_cache = None
        # The rebuild swapped the table object: tenant views and the
        # isolation verifier must re-anchor (and re-prove from scratch —
        # their journal cursors died with the old table).
        if self.isolation is not None:
            for view in self.tenant_views.values():
                view.retarget(self.table)
            self._log_isolation(self.isolation.retarget(self.table))
        self._dirty = False
        self.state_version += 1
        return True

    def force_rebuild(self) -> None:
        """Unconditionally rebuild (e.g. after out-of-band topology edits)."""
        if self.updater is not None:
            raise RuntimeError(
                "incremental/durable servers update via apply_rule_update/"
                "apply_rule_delete; full rebuilds would bypass the updater"
                + (" and the WAL" if self.persist is not None else "")
            )
        self._dirty = True
        self.refresh_if_dirty()

    # -- durable mode: logged rule updates + snapshots -----------------------

    def _require_durable(self):
        if self.persist is None:
            raise RuntimeError(
                "this server was built without state_dir; durable-mode "
                "operations are unavailable"
            )
        return self.persist

    def _require_updater(self):
        if self.updater is None:
            raise RuntimeError(
                "this server was built without state_dir or incremental=True; "
                "rule updates must go through the controller channel"
            )
        return self.updater

    def apply_rule_update(self, switch: str, prefix: str, out_port: int) -> float:
        """Log (when durable), then apply, one LPM rule installation.

        WAL-first ordering: the control record is durable (per the fsync
        policy) before the table changes, so a crash between the two replays
        the event at boot instead of losing it.  Returns the update's
        elapsed seconds (the Figure 14 metric).  In incremental
        (non-durable) mode the WAL step is skipped and the update applies
        in memory only.

        With ``coalesce_ms > 0`` the event is *staged* (prefix-tree
        mutation now, path-table recompute deferred); the table catches up
        at :meth:`flush_pending_updates`, triggered when the window
        expires, before any verification, snapshot or close.  Reports
        verified strictly inside the window see the pre-batch table — the
        window bounds that staleness.
        """
        self._require_updater()
        if self.persist is not None:
            from ..persist.wal import ControlEvent

            self.persist.log_control(ControlEvent("add", switch, prefix, out_port))
        if self.coalesce_ms > 0:
            started = time.perf_counter()
            self.updater.stage_add_rule(switch, prefix, out_port)
            elapsed = time.perf_counter() - started
            self._note_rule_staged()
        else:
            elapsed = self.updater.add_rule(switch, prefix, out_port)
        self._note_rule_applied()
        return elapsed

    def apply_rule_delete(self, switch: str, prefix: str) -> float:
        """Log (when durable), then apply, one LPM rule removal.
        See :meth:`apply_rule_update`."""
        self._require_updater()
        if self.persist is not None:
            from ..persist.wal import ControlEvent

            self.persist.log_control(ControlEvent("delete", switch, prefix))
        if self.coalesce_ms > 0:
            started = time.perf_counter()
            self.updater.stage_delete_rule(switch, prefix)
            elapsed = time.perf_counter() - started
            self._note_rule_staged()
        else:
            elapsed = self.updater.delete_rule(switch, prefix)
        self._note_rule_applied()
        return elapsed

    def _note_rule_staged(self) -> None:
        # Arm the window on the batch's first event; flush when it expires.
        now = time.monotonic()
        if self._flush_deadline is None:
            self._flush_deadline = now + self.coalesce_ms / 1000.0
        elif now >= self._flush_deadline:
            self.flush_pending_updates()

    def maybe_flush_updates(self):
        """Flush the coalescing window iff it has expired.

        There is no timer thread: report arrival is the tick that expires
        the window, on the direct path (:meth:`receive_report`) and the
        sharded daemon's ``submit`` alike.  Cheap when no window is armed.
        """
        if (
            self._flush_deadline is not None
            and time.monotonic() >= self._flush_deadline
        ):
            return self.flush_pending_updates()
        return None

    def flush_pending_updates(self):
        """Apply every staged (coalesced) rule update to the path table now.

        Returns the updater's :class:`~repro.core.incremental.UpdateFlushStats`
        (``None`` when nothing was staged).  Safe to call at any time; the
        verification, snapshot and close paths call it implicitly.
        """
        self._flush_deadline = None
        if self.updater is None or not self.updater.pending_updates:
            return None
        stats = self.updater.flush_updates()
        self.update_flushes += 1
        self.update_flush_events += stats.events
        # The flush is the moment the table (and the change feed) moved:
        # re-prove isolation for exactly the dirty slices.
        self._recheck_isolation()
        return stats

    def _note_rule_applied(self) -> None:
        # The path table mutated in place; its version bump already
        # invalidates the verifier's flow cache and compiled-matcher index.
        # Localization results are keyed on reports, not table versions, so
        # that cache needs an explicit flush.
        if self.coalesce_ms <= 0:
            # Immediate-apply mode: the table just changed, so isolation
            # re-proves now.  (Coalesced mode rechecks at the flush.)
            self._recheck_isolation()
        self.state_version += 1
        self._localization_cache.clear()
        self._rules_since_snapshot += 1
        if (
            self.snapshot_every is not None
            and self._rules_since_snapshot >= self.snapshot_every
        ):
            self.snapshot_now()

    def snapshot_now(self) -> str:
        """Checkpoint the current state; returns the snapshot path."""
        persist = self._require_durable()
        # A snapshot must capture a fully-applied table: staged events are
        # already in the WAL, but capture_state reads the path table.
        self.flush_pending_updates()
        path = persist.snapshot(
            self.topo, self.hs, self.updater, self.state_version
        )
        self._rules_since_snapshot = 0
        return path

    def close(self) -> None:
        """Flush and close durable state (no-op without ``state_dir``)."""
        if self.persist is not None:
            self.flush_pending_updates()
            self.persist.close()

    # -- report ingestion ------------------------------------------------------

    def receive_report_bytes(self, payload: bytes, record: bool = True) -> Incident:
        """Parse a UDP report payload, then verify/localize it.

        Raises :class:`ReportDecodeError` on malformed payloads; callers
        on a lossy transport should use :meth:`try_receive_report_bytes`
        (or dead-letter the payload themselves, as the daemons do).

        In durable mode the payload is appended to the WAL *before* decode
        (replay must see exactly what the live path saw, including payloads
        it went on to reject).  ``record=False`` skips the append — for
        re-ingestion paths whose payloads were already logged at first
        arrival (daemon failure re-ingest, dead-letter retries).
        """
        if record and self.persist is not None:
            self.persist.log_report(payload)
        with self.obs.span("decode"):
            report = unpack_report(payload, self.codec)
        return self.receive_report(report)

    def try_receive_report_bytes(
        self, payload: bytes, record: bool = True
    ) -> Optional[Incident]:
        """Like :meth:`receive_report_bytes`, but decode failure is data.

        Returns ``None`` and increments :attr:`decode_errors` for payloads
        that cannot be decoded — the transport-facing entry point for
        ingestion paths without their own dead-letter handling.
        """
        if record and self.persist is not None:
            self.persist.log_report(payload)
        try:
            report = unpack_report(payload, self.codec)
        except ReportDecodeError:
            self.decode_errors += 1
            return None
        return self.receive_report(report)

    def receive_report(self, report: TagReport) -> Incident:
        """Verify one report; on failure, localize.  Always returns a record
        (with a PASS verdict when nothing is wrong)."""
        self.maybe_flush_updates()
        self.refresh_if_dirty()
        if self.slices is not None:
            # Tenant attribution is a few integer masks (LPM dict), so the
            # sliced hot path stays tenant-count-independent.
            tenant = self.slices.classify_dst(report.header.dst_ip) or ""
            self.tenant_reports[tenant] = self.tenant_reports.get(tenant, 0) + 1
        with self.obs.span("verify") as span:
            verification = self.verifier.verify(report)
            span.set("verdict", verification.verdict.value)
        self.coverage.observe(verification)
        localization = None
        if not verification.passed and self.localize_failures:
            # Localization is best-effort diagnosis: a report exotic enough
            # to crash Algorithm 4 (e.g. a switch the path table has never
            # seen) must still produce its incident, just unlocalized.
            try:
                with self.obs.span("localize"):
                    localization = self._localize_cached(report)
            except Exception:
                self.localization_errors += 1
        incident = Incident(verification=verification, localization=localization)
        if not verification.passed:
            self.log_incidents([incident])
        return incident

    def log_incidents(self, incidents: List[Incident]) -> None:
        """Append detected inconsistencies to the operator log (counted).

        The single entry point for incident recording: ``incidents_total``
        keeps growing across :meth:`drain_incidents`, so the
        ``veridp_incidents_total`` counter stays monotonic even though the
        log itself is drained.
        """
        with self.obs.span("incident", count=len(incidents)):
            self.incidents.extend(incidents)
            self.incidents_total += len(incidents)

    def _localize_cached(self, report: TagReport) -> LocalizationResult:
        self.localizations += 1
        key = (report.inport, report.outport, report.header, report.tag)
        cached = self._localization_cache.get(key)
        if cached is not None:
            self.localization_cache_hits += 1
            self._localization_cache.move_to_end(key)
            return cached
        result = self.localizer.localize(report)
        self._localization_cache[key] = result
        if len(self._localization_cache) > self.localization_cache_max:
            self._localization_cache.popitem(last=False)
        return result

    # -- operator-facing state ----------------------------------------------

    def drain_incidents(self) -> List[Incident]:
        """Return and clear the inconsistency log."""
        incidents = self.incidents
        self.incidents = []
        return incidents

    def stats(self) -> Dict[str, object]:
        """Verification counters plus path-table shape.

        This is the *server-local* view (this instance's own verifier);
        a daemon's ``stats()``/``/metrics`` carry the merged fleet view.
        Keys here mirror the metric catalogue in DESIGN.md §8.
        """
        table_stats = self.table.stats()
        verifier = self.verifier
        coverage = self.coverage.report()
        out = {
            "verified": verifier.verified_count,
            "passed": verifier.counters[Verdict.PASS],
            "failed": verifier.failure_count,
            "incidents": len(self.incidents),
            "incidents_total": self.incidents_total,
            "decode_errors": self.decode_errors,
            "localizations": self.localizations,
            "localization_errors": self.localization_errors,
            "localization_cache_hits": self.localization_cache_hits,
            "path_table_pairs": table_stats.num_pairs,
            "path_table_paths": table_stats.num_paths,
            "path_table_version": self.table.version,
            "avg_path_length": table_stats.avg_path_length,
            "fast_path": self.fast_path,
            "flow_cache_hits": verifier.flow_cache_hits,
            "flow_cache_misses": verifier.flow_cache_misses,
            "flow_cache_hit_ratio": verifier.flow_cache_hit_ratio,
            "flow_cache_flows": verifier.flow_cache_len,
            "fast_path_verifications": verifier.fast_verifications,
            "slow_path_verifications": verifier.slow_verifications,
            "fast_path_ratio": verifier.fast_path_ratio,
            "coverage_path_ratio": coverage.path_coverage,
            "coverage_pair_ratio": coverage.pair_coverage,
            "coverage_hop_ratio": coverage.hop_coverage,
            "coverage_dark_paths": len(coverage.dark_paths),
            "coverage_dark_pairs": len(coverage.dark_pairs),
            "coverage_observations": self.coverage.observations,
            "state_version": self.state_version,
            "durable": self.persist is not None,
            "incremental": self.updater is not None,
            "build_time_s": self.table.build_time_s,
            "build_workers": getattr(self.table, "build_workers", 1),
            "coalesce_ms": self.coalesce_ms,
            "pending_updates": (
                0 if self.updater is None else self.updater.pending_updates
            ),
            "update_flushes": self.update_flushes,
            "update_flush_events": self.update_flush_events,
            "bdd_cache": self.hs.bdd.cache_counters(),
        }
        if self.slices is not None:
            out["tenants"] = {
                name: {
                    "view_pairs": len(view),
                    "view_paths": view.num_paths(),
                    "reports": self.tenant_reports.get(name, 0),
                    "pair_syncs": view.pair_syncs,
                }
                for name, view in self.tenant_views.items()
            }
            iso = self.isolation
            out["isolation"] = {
                "incidents": len(self.isolation_incidents),
                "incidents_total": self.isolation_incidents_total,
                "checks_total": iso.checks_total,
                "full_checks": iso.full_checks,
                "incremental_checks": iso.incremental_checks,
                "last_table_pairs": iso.last_table_pairs,
                "last_tenant_pairs": iso.last_tenant_pairs,
            }
        if self.persist is not None:
            out["boot_source"] = self.boot_source
            out.update(self.persist.stats())
        return out
