"""The VeriDP server (Section 3.4): intercept, verify, localize.

The server sits beside the controller.  It

* subscribes to the OpenFlow :class:`~repro.controlplane.messages.Channel`
  and keeps its path table synchronised with the rule stream (lazy full
  rebuild by default; callers doing LPM-only workloads can use
  :class:`~repro.core.incremental.IncrementalPathTable` directly),
* receives tag reports — as wire bytes on :meth:`receive_report_bytes` or
  as objects on :meth:`receive_report` — verifies them with Algorithm 3,
* on failure runs Algorithm 4 to recover the real path and blame switches,
* keeps an inconsistency log operators can drain.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bdd.headerspace import HeaderSpace
from ..controlplane.messages import Channel, FlowMod
from ..netmodel.topology import Topology
from .bloom import BloomTagScheme
from .localization import LocalizationResult, PathInferLocalizer
from .pathtable import PathTable, PathTableBuilder, SnapshotProvider
from .reports import PortCodec, ReportDecodeError, TagReport, unpack_report
from .verifier import VerificationResult, Verdict, Verifier

__all__ = ["VeriDPServer", "Incident"]


@dataclass
class Incident:
    """One detected inconsistency: the failed verification + localization."""

    verification: VerificationResult
    localization: Optional[LocalizationResult] = None

    @property
    def blamed_switches(self) -> List[str]:
        """Switches Algorithm 4 holds responsible (may be empty)."""
        if self.localization is None:
            return []
        return self.localization.blamed_switches()

    def __str__(self) -> str:
        blame = ", ".join(self.blamed_switches) or "unlocalized"
        return f"INCONSISTENCY {self.verification} | blamed: {blame}"


class VeriDPServer:
    """The monitoring endpoint of the system."""

    def __init__(
        self,
        topo: Topology,
        channel: Optional[Channel] = None,
        hs: Optional[HeaderSpace] = None,
        scheme: Optional[BloomTagScheme] = None,
        codec: Optional[PortCodec] = None,
        localize_failures: bool = True,
        max_path_length: Optional[int] = None,
        fast_path: bool = True,
    ) -> None:
        self.topo = topo
        self.hs = hs or HeaderSpace()
        self.scheme = scheme or BloomTagScheme()
        self.codec = codec or PortCodec(sorted(topo.switches))
        self.localize_failures = localize_failures
        self.fast_path = fast_path
        self._provider = SnapshotProvider(topo, self.hs)
        self.builder = PathTableBuilder(
            topo,
            self.hs,
            scheme=self.scheme,
            provider=self._provider,
            max_path_length=max_path_length,
        )
        self.table: PathTable = self.builder.build()
        if fast_path:
            self.table.compile_matchers(self.hs)
        self.verifier = Verifier(self.table, self.hs, fast_path=fast_path)
        self.localizer = PathInferLocalizer(self.builder, self.scheme, topo)
        self.incidents: List[Incident] = []
        self.decode_errors = 0
        self.localization_errors = 0
        self._dirty = False
        # A persistent fault produces one identical failing report per
        # sampled packet; running Algorithm 4 once per *distinct* failure is
        # enough.  Bounded FIFO cache, invalidated on configuration change.
        self._localization_cache: "OrderedDict[tuple, LocalizationResult]" = (
            OrderedDict()
        )
        self.localization_cache_hits = 0
        self.localization_cache_max = 4096
        if channel is not None:
            channel.subscribe(self._on_message)

    # -- control-plane synchronisation ---------------------------------

    def _on_message(self, message: object) -> None:
        if isinstance(message, FlowMod):
            # The logical tables (inside self.topo) were already updated by
            # the controller before the FlowMod was sent; we only note that
            # our snapshot is stale.
            self._dirty = True

    def refresh_if_dirty(self) -> bool:
        """Rebuild the path table if rule changes were observed."""
        if not self._dirty:
            return False
        self._provider.refresh(self.topo, self.hs)
        self.table = self.builder.build()
        if self.fast_path:
            self.table.compile_matchers(self.hs)
        # Swap the table under the existing verifier: its counters are part
        # of the server's long-lived statistics (and the repair engine
        # reads them across rebuilds).
        self.verifier.table = self.table
        # The flow cache keyed headers against the *old* table's paths;
        # invalidate it exactly like the localization cache below.
        self.verifier.invalidate_fast_path()
        self._localization_cache.clear()
        self._dirty = False
        return True

    def force_rebuild(self) -> None:
        """Unconditionally rebuild (e.g. after out-of-band topology edits)."""
        self._dirty = True
        self.refresh_if_dirty()

    # -- report ingestion ------------------------------------------------------

    def receive_report_bytes(self, payload: bytes) -> Incident:
        """Parse a UDP report payload, then verify/localize it.

        Raises :class:`ReportDecodeError` on malformed payloads; callers
        on a lossy transport should use :meth:`try_receive_report_bytes`
        (or dead-letter the payload themselves, as the daemons do).
        """
        return self.receive_report(unpack_report(payload, self.codec))

    def try_receive_report_bytes(self, payload: bytes) -> Optional[Incident]:
        """Like :meth:`receive_report_bytes`, but decode failure is data.

        Returns ``None`` and increments :attr:`decode_errors` for payloads
        that cannot be decoded — the transport-facing entry point for
        ingestion paths without their own dead-letter handling.
        """
        try:
            report = unpack_report(payload, self.codec)
        except ReportDecodeError:
            self.decode_errors += 1
            return None
        return self.receive_report(report)

    def receive_report(self, report: TagReport) -> Incident:
        """Verify one report; on failure, localize.  Always returns a record
        (with a PASS verdict when nothing is wrong)."""
        self.refresh_if_dirty()
        verification = self.verifier.verify(report)
        localization = None
        if not verification.passed and self.localize_failures:
            # Localization is best-effort diagnosis: a report exotic enough
            # to crash Algorithm 4 (e.g. a switch the path table has never
            # seen) must still produce its incident, just unlocalized.
            try:
                localization = self._localize_cached(report)
            except Exception:
                self.localization_errors += 1
        incident = Incident(verification=verification, localization=localization)
        if not verification.passed:
            self.incidents.append(incident)
        return incident

    def _localize_cached(self, report: TagReport) -> LocalizationResult:
        key = (report.inport, report.outport, report.header, report.tag)
        cached = self._localization_cache.get(key)
        if cached is not None:
            self.localization_cache_hits += 1
            self._localization_cache.move_to_end(key)
            return cached
        result = self.localizer.localize(report)
        self._localization_cache[key] = result
        if len(self._localization_cache) > self.localization_cache_max:
            self._localization_cache.popitem(last=False)
        return result

    # -- operator-facing state ----------------------------------------------

    def drain_incidents(self) -> List[Incident]:
        """Return and clear the inconsistency log."""
        incidents = self.incidents
        self.incidents = []
        return incidents

    def stats(self) -> Dict[str, object]:
        """Verification counters plus path-table shape."""
        table_stats = self.table.stats()
        return {
            "verified": self.verifier.verified_count,
            "passed": self.verifier.counters[Verdict.PASS],
            "failed": self.verifier.failure_count,
            "incidents": len(self.incidents),
            "decode_errors": self.decode_errors,
            "localization_errors": self.localization_errors,
            "path_table_pairs": table_stats.num_pairs,
            "path_table_paths": table_stats.num_paths,
            "avg_path_length": table_stats.avg_path_length,
            "fast_path": self.fast_path,
            "flow_cache_hits": self.verifier.flow_cache_hits,
            "flow_cache_flows": self.verifier.flow_cache_len,
        }
