"""A concurrent VeriDP server daemon.

The paper's prototype verifies ~5x10^5 reports/second single-threaded and
notes "we expect a higher throughput with multi-threading in the future"
(Section 6.4).  This module supplies that deployment shell:

* :class:`VeriDPDaemon` — a worker pool draining a bounded queue of report
  payloads; verification counters and the incident log are consolidated
  thread-safely, and localization runs on the worker that caught the
  failure,
* :class:`UdpReportListener` — an optional real UDP socket (the paper's
  transport: "tag reports ... are encapsulated with plain UDP packets")
  that feeds received datagrams into the daemon.

The verifying fast path shares one path table read-only; rule updates go
through :meth:`VeriDPDaemon.pause_and_refresh`, which quiesces the workers,
rebuilds, and resumes — the classic read-mostly monitor structure.
"""

from __future__ import annotations

import queue
import socket
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netmodel.topology import Topology
from .reports import unpack_report
from .server import Incident, VeriDPServer
from .verifier import Verifier

__all__ = ["VeriDPDaemon", "UdpReportListener"]

_STOP = object()


class VeriDPDaemon:
    """Multi-worker report verification on top of a :class:`VeriDPServer`.

    The underlying server's verify/localize machinery is pure computation
    over a shared read-only path table; workers serialise only the
    counter/incident updates under a lock.
    """

    def __init__(
        self,
        server: VeriDPServer,
        workers: int = 2,
        queue_size: int = 10_000,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"need at least one worker, got {workers}")
        self.server = server
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._worker_verifiers: List[Verifier] = []
        self._running = False
        self.workers = workers
        self.processed = 0
        self.dropped = 0  # queue-full drops (backpressure signal)
        self.malformed = 0  # undecodable payloads (must not kill a worker)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        if self._running:
            return
        self._running = True
        self.server.refresh_if_dirty()
        self._worker_verifiers = []
        for index in range(self.workers):
            # Worker-local verifiers: counters are per-thread (merged in
            # stats()), the path table is shared read-only.
            verifier = Verifier(self.server.table, self.server.hs)
            self._worker_verifiers.append(verifier)
            thread = threading.Thread(
                target=self._worker,
                args=(verifier,),
                name=f"veridp-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Drain the queue and stop the workers."""
        if not self._running:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        self._running = False

    def __enter__(self) -> "VeriDPDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion ---------------------------------------------------------

    def submit(self, payload: bytes) -> bool:
        """Enqueue one wire-format report; False if the queue is full.

        Dropping under overload mirrors real UDP ingestion — the counter
        makes the loss visible instead of silent.
        """
        try:
            self._queue.put_nowait(payload)
            return True
        except queue.Full:
            with self._lock:
                self.dropped += 1
            return False

    def join(self) -> None:
        """Block until every queued report has been processed."""
        self._queue.join()

    # -- worker loop -----------------------------------------------------------

    def _worker(self, verifier: "Verifier") -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                try:
                    report = unpack_report(item, self.server.codec)
                except ValueError:
                    with self._lock:
                        self.malformed += 1
                    continue
                # Pure computation outside the lock.
                verification = verifier.verify(report)
                localization = None
                if not verification.passed and self.server.localize_failures:
                    localization = self.server.localizer.localize(report)
                with self._lock:
                    self.processed += 1
                    if not verification.passed:
                        self.server.incidents.append(
                            Incident(
                                verification=verification,
                                localization=localization,
                            )
                        )
            finally:
                self._queue.task_done()

    # -- maintenance -----------------------------------------------------------

    def pause_and_refresh(self) -> bool:
        """Quiesce workers, rebuild the path table if stale, resume."""
        was_running = self._running
        if was_running:
            self.stop()
        refreshed = self.server.refresh_if_dirty()
        if was_running:
            self.start()
        return refreshed

    def stats(self) -> Dict[str, int]:
        """Daemon-level counters plus merged per-worker verification counts."""
        with self._lock:
            merged = {
                "processed": self.processed,
                "dropped": self.dropped,
                "malformed": self.malformed,
                "queued": self._queue.qsize(),
                "workers": self.workers,
                "incidents": len(self.server.incidents),
            }
        merged["verified"] = sum(
            v.verified_count for v in self._worker_verifiers
        )
        merged["failed"] = sum(
            v.failure_count for v in self._worker_verifiers
        )
        return merged


class UdpReportListener:
    """Receive tag reports as real UDP datagrams and feed the daemon.

    Binds ``host:port`` (port 0 picks a free one; read :attr:`address`),
    runs a receive loop on a background thread.  Oversized or truncated
    datagrams are counted, not fatal — exactly how a production collector
    must treat a lossy transport.
    """

    def __init__(
        self,
        daemon: VeriDPDaemon,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.daemon = daemon
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind((host, port))
        self._socket.settimeout(0.2)
        self.address = self._socket.getsockname()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self.received = 0
        self.malformed = 0

    def start(self) -> None:
        """Begin receiving datagrams."""
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="veridp-udp-listener", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the receive loop and close the socket."""
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._socket.close()

    def __enter__(self) -> "UdpReportListener":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _loop(self) -> None:
        while self._running:
            try:
                payload, _ = self._socket.recvfrom(2048)
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during stop()
            self.received += 1
            try:
                self.daemon.submit(payload)
            except Exception:
                self.malformed += 1
