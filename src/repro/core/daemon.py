"""Concurrent VeriDP server daemons.

The paper's prototype verifies ~5x10^5 reports/second single-threaded and
notes "we expect a higher throughput with multi-threading in the future"
(Section 6.4).  This module supplies that deployment shell in two shapes:

* :class:`VeriDPDaemon` — a thread pool draining a bounded queue of report
  payloads in batches (batching amortises lock traffic and clock reads via
  :meth:`~repro.core.verifier.Verifier.verify_batch`); verification
  counters and the incident log are consolidated thread-safely, and
  localization runs on the worker that caught the failure.  CPU-bound
  verification is still GIL-serialised in CPython, so threads buy
  concurrency (socket + verify overlap), not parallelism,
* :class:`ShardedVeriDPDaemon` — a ``multiprocessing`` worker pool that
  shards reports by ``(inport, outport)`` hash across processes.  Each
  worker holds a self-contained *compiled replica* of its shard of the path
  table (flat-array matchers, no BDD manager, no topology), verifies wire
  payloads locally, and ships counter deltas and failed payloads back over
  a result queue; the parent consolidates counters and runs
  localization/incident logging for the (rare) failures.  This is the mode
  that turns the GIL-flat throughput curve into a scaling one when cores
  are available,
* :class:`UdpReportListener` — an optional real UDP socket (the paper's
  transport: "tag reports ... are encapsulated with plain UDP packets")
  that feeds received datagrams into a daemon.

The verifying fast path shares one path table read-only; rule updates go
through ``pause_and_refresh``, which quiesces the workers, rebuilds (and
for the sharded daemon re-replicates), and resumes — the classic
read-mostly monitor structure.
"""

from __future__ import annotations

import multiprocessing
import queue
import socket
import struct
import threading
from typing import Dict, List, Optional, Tuple

from .pathtable import PathTable
from .reports import _REPORT_STRUCT, REPORT_VERSION, unpack_report
from .server import Incident, VeriDPServer
from .verifier import Verdict, Verifier

__all__ = ["VeriDPDaemon", "ShardedVeriDPDaemon", "UdpReportListener"]

_STOP = object()


class VeriDPDaemon:
    """Multi-worker report verification on top of a :class:`VeriDPServer`.

    The underlying server's verify/localize machinery is pure computation
    over a shared read-only path table; workers drain the queue in batches
    (up to ``batch_size`` reports at a time) and serialise only one
    counter/incident update per batch under a lock.
    """

    def __init__(
        self,
        server: VeriDPServer,
        workers: int = 2,
        queue_size: int = 10_000,
        batch_size: int = 64,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"need at least one worker, got {workers}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.server = server
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._worker_verifiers: List[Verifier] = []
        self._running = False
        self.workers = workers
        self.batch_size = batch_size
        self.processed = 0
        self.dropped = 0  # queue-full drops (backpressure signal)
        self.malformed = 0  # undecodable payloads (must not kill a worker)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        if self._running:
            return
        self._running = True
        self.server.refresh_if_dirty()
        self._worker_verifiers = []
        for index in range(self.workers):
            # Worker-local verifiers: counters are per-thread (merged in
            # stats()), the path table is shared read-only.
            verifier = Verifier(
                self.server.table,
                self.server.hs,
                fast_path=self.server.fast_path,
            )
            self._worker_verifiers.append(verifier)
            thread = threading.Thread(
                target=self._worker,
                args=(verifier,),
                name=f"veridp-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Drain the queue and stop the workers."""
        if not self._running:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        self._running = False

    def __enter__(self) -> "VeriDPDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion ---------------------------------------------------------

    def submit(self, payload: bytes) -> bool:
        """Enqueue one wire-format report; False if the queue is full.

        Dropping under overload mirrors real UDP ingestion — the counter
        makes the loss visible instead of silent.
        """
        try:
            self._queue.put_nowait(payload)
            return True
        except queue.Full:
            with self._lock:
                self.dropped += 1
            return False

    def join(self) -> None:
        """Block until every queued report has been processed."""
        self._queue.join()

    # -- worker loop -----------------------------------------------------------

    def _worker(self, verifier: "Verifier") -> None:
        q = self._queue
        batch_size = self.batch_size
        while True:
            item = q.get()
            stop = item is _STOP
            batch: List[bytes] = [] if stop else [item]
            if not stop:
                # Opportunistically drain up to a batch; a _STOP seen while
                # draining ends this worker after the batch is processed
                # (stop() enqueues one _STOP per worker, and they are
                # interchangeable).
                while len(batch) < batch_size:
                    try:
                        extra = q.get_nowait()
                    except queue.Empty:
                        break
                    if extra is _STOP:
                        stop = True
                        break
                    batch.append(extra)
            if batch:
                self._process_batch(verifier, batch)
            for _ in range(len(batch) + (1 if stop else 0)):
                q.task_done()
            if stop:
                return

    def _process_batch(self, verifier: "Verifier", payloads: List[bytes]) -> None:
        reports = []
        malformed = 0
        codec = self.server.codec
        for payload in payloads:
            try:
                reports.append(unpack_report(payload, codec))
            except ValueError:
                malformed += 1
        incidents: List[Incident] = []
        if reports:
            # Pure computation outside the lock.
            result = verifier.verify_batch(reports)
            localize = self.server.localize_failures
            for failure in result.failures:
                localization = (
                    self.server.localizer.localize(failure.report)
                    if localize
                    else None
                )
                incidents.append(
                    Incident(verification=failure, localization=localization)
                )
        with self._lock:
            self.processed += len(reports)
            self.malformed += malformed
            if incidents:
                self.server.incidents.extend(incidents)

    # -- maintenance -----------------------------------------------------------

    def pause_and_refresh(self) -> bool:
        """Quiesce workers, rebuild the path table if stale, resume."""
        was_running = self._running
        if was_running:
            self.stop()
        refreshed = self.server.refresh_if_dirty()
        if was_running:
            self.start()
        return refreshed

    def stats(self) -> Dict[str, int]:
        """Daemon-level counters plus merged per-worker verification counts."""
        with self._lock:
            merged = {
                "processed": self.processed,
                "dropped": self.dropped,
                "malformed": self.malformed,
                "queued": self._queue.qsize(),
                "workers": self.workers,
                "incidents": len(self.server.incidents),
            }
        merged["verified"] = sum(
            v.verified_count for v in self._worker_verifiers
        )
        merged["failed"] = sum(
            v.failure_count for v in self._worker_verifiers
        )
        return merged


# ---------------------------------------------------------------------------
# sharded multiprocess daemon
# ---------------------------------------------------------------------------

#: Struct field positions of the header 5-tuple inside a report payload
#: (after version, flags, inport, outport, tag).
_WIRE_FIELD_POS = {
    "src_ip": 0,
    "dst_ip": 1,
    "proto": 2,
    "src_port": 3,
    "dst_port": 4,
}

_PASS = Verdict.PASS.value
_FAIL_MISMATCH = Verdict.FAIL_TAG_MISMATCH.value
_FAIL_NO_PATH = Verdict.FAIL_NO_PATH.value
_FAIL_UNKNOWN = Verdict.FAIL_UNKNOWN_PAIR.value

#: Knuth multiplicative hash constant for spreading (inport, outport) keys.
_HASH_MULT = 2654435761


def _shard_of(pair_key: int, workers: int) -> int:
    """Shard index for a 32-bit packed ``(inport << 16) | outport`` key."""
    return ((pair_key * _HASH_MULT) >> 16) % workers


def build_shard_specs(
    table: PathTable, hs, codec, workers: int
) -> List[Dict[Tuple[int, int], tuple]]:
    """Compile the path table into per-worker picklable shard replicas.

    Each pair becomes ``(tags, flat_matchers, by_tag, disjoint)`` keyed by
    the pair's *wire* port ids, so workers never need the codec, topology
    or BDD manager — only flat integer arrays.
    """
    specs: List[Dict[Tuple[int, int], tuple]] = [{} for _ in range(workers)]
    for inport, outport in table.pairs():
        index = table.fast_index(inport, outport, hs)
        if index is None:  # pragma: no cover - pairs() only lists known keys
            continue
        in_wire = codec.encode(inport)
        out_wire = codec.encode(outport)
        spec = (
            tuple(entry.tag for entry in index.entries),
            tuple(entry.compiled_matcher(hs) for entry in index.entries),
            dict(index.by_tag),
            index.disjoint,
        )
        shard = _shard_of((in_wire << 16) | out_wire, workers)
        specs[shard][(in_wire, out_wire)] = spec
    return specs


def _verify_wire(
    pairs: Dict[Tuple[int, int], tuple],
    packing: Tuple[Tuple[int, int], ...],
    payload: bytes,
) -> Optional[str]:
    """Verify one wire payload against a shard replica.

    Returns a verdict value string, or ``None`` for malformed payloads.
    Mirrors :meth:`Verifier._match_fast` (minus the flow cache, which would
    buy little once the per-report cost is a few flat-array chases).
    """
    try:
        fields = _REPORT_STRUCT.unpack(payload)
    except struct.error:
        return None
    if fields[0] != REPORT_VERSION:
        return None
    pair = pairs.get((fields[2], fields[3]))
    if pair is None:
        return _FAIL_UNKNOWN
    tags, flats, by_tag, disjoint = pair
    value = 0
    for pos, width in packing:
        value = (value << width) | fields[5 + pos]
    tag = fields[4]
    matched = -1
    if disjoint:
        positions = by_tag.get(tag)
        if positions is not None:
            for pos in positions:
                if flats[pos].evaluate_value(value):
                    matched = pos
                    break
        if matched < 0:
            for pos, flat in enumerate(flats):
                if tags[pos] != tag and flat.evaluate_value(value):
                    matched = pos
                    break
    else:
        for pos, flat in enumerate(flats):
            if flat.evaluate_value(value):
                matched = pos
                break
    if matched < 0:
        return _FAIL_NO_PATH
    return _PASS if tags[matched] == tag else _FAIL_MISMATCH


def _shard_worker_main(
    worker_id: int,
    in_queue,
    out_queue,
    pairs: Dict[Tuple[int, int], tuple],
    packing: Tuple[Tuple[int, int], ...],
) -> None:
    """One shard worker process: verify batches, report deltas on flush."""
    counters = {
        _PASS: 0,
        _FAIL_MISMATCH: 0,
        _FAIL_NO_PATH: 0,
        _FAIL_UNKNOWN: 0,
    }
    processed = 0
    malformed = 0
    failures: List[Tuple[bytes, str]] = []
    while True:
        message = in_queue.get()
        kind = message[0]
        if kind == "batch":
            for payload in message[1]:
                verdict = _verify_wire(pairs, packing, payload)
                if verdict is None:
                    malformed += 1
                    continue
                processed += 1
                counters[verdict] += 1
                if verdict != _PASS:
                    failures.append((payload, verdict))
        elif kind == "flush":
            out_queue.put(
                (
                    "flush",
                    worker_id,
                    message[1],
                    processed,
                    malformed,
                    dict(counters),
                    failures,
                )
            )
            processed = 0
            malformed = 0
            for key in counters:
                counters[key] = 0
            failures = []
        elif kind == "stop":
            return


class ShardedVeriDPDaemon:
    """Multiprocess report verification, sharded by ``(inport, outport)``.

    The parent peeks the two wire port ids out of each payload (bytes 2-6),
    hashes them to a shard, and ships payloads to that shard's worker in
    batches; each worker verifies against its own compiled path-table
    replica with no shared state, sidestepping the GIL entirely.  Failed
    payloads come back over the result queue and are re-ingested through
    :meth:`VeriDPServer.receive_report_bytes` on the parent, so
    localization, the localization cache and the incident log behave
    exactly as in the single-process server.

    ``join()`` is the consolidation point: it flushes the shard buffers,
    asks every worker for its counter deltas, and folds them in.  Call it
    before reading :meth:`stats`.
    """

    def __init__(
        self,
        server: VeriDPServer,
        workers: int = 2,
        batch_size: int = 256,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"need at least one worker, got {workers}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.server = server
        self.workers = workers
        self.batch_size = batch_size
        self.processed = 0
        self.malformed = 0
        self.counters: Dict[Verdict, int] = {v: 0 for v in Verdict}
        self._packing = self._packing_for(server)
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._processes: List = []
        self._in_queues: List = []
        self._out_queue = None
        self._buffers: List[List[bytes]] = []
        self._flush_token = 0
        self._running = False

    @staticmethod
    def _packing_for(server: VeriDPServer) -> Tuple[Tuple[int, int], ...]:
        packing = []
        for field in server.hs.layout.fields:
            pos = _WIRE_FIELD_POS.get(field.name)
            if pos is None:
                raise ValueError(
                    f"sharded daemon needs the wire 5-tuple layout; "
                    f"field {field.name!r} is not on the wire"
                )
            packing.append((pos, field.width))
        return tuple(packing)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Replicate the (compiled) path table and fork the workers."""
        if self._running:
            return
        self.server.refresh_if_dirty()
        specs = build_shard_specs(
            self.server.table, self.server.hs, self.server.codec, self.workers
        )
        self._out_queue = self._ctx.Queue()
        self._in_queues = []
        self._processes = []
        self._buffers = [[] for _ in range(self.workers)]
        for worker_id in range(self.workers):
            in_queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=_shard_worker_main,
                args=(
                    worker_id,
                    in_queue,
                    self._out_queue,
                    specs[worker_id],
                    self._packing,
                ),
                name=f"veridp-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            self._in_queues.append(in_queue)
            self._processes.append(process)
        self._running = True

    def stop(self) -> None:
        """Consolidate outstanding work and terminate the workers."""
        if not self._running:
            return
        self.join()
        for in_queue in self._in_queues:
            in_queue.put(("stop",))
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._processes.clear()
        self._in_queues.clear()
        self._out_queue = None
        self._running = False

    def __enter__(self) -> "ShardedVeriDPDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion -------------------------------------------------------------

    def submit(self, payload: bytes) -> bool:
        """Route one wire-format report to its shard (buffered)."""
        if not self._running:
            raise RuntimeError("daemon is not running; call start() first")
        pair_key = int.from_bytes(payload[2:6], "big")
        shard = _shard_of(pair_key, self.workers)
        buffer = self._buffers[shard]
        buffer.append(payload)
        if len(buffer) >= self.batch_size:
            self._flush_shard(shard)
        return True

    def _flush_shard(self, shard: int) -> None:
        buffer = self._buffers[shard]
        if buffer:
            self._in_queues[shard].put(("batch", buffer))
            self._buffers[shard] = []

    def join(self, timeout: float = 60.0) -> None:
        """Flush buffers, collect every worker's deltas, fold them in."""
        if not self._running:
            return
        for shard in range(self.workers):
            self._flush_shard(shard)
        self._flush_token += 1
        token = self._flush_token
        for in_queue in self._in_queues:
            in_queue.put(("flush", token))
        pending = set(range(self.workers))
        while pending:
            try:
                message = self._out_queue.get(timeout=timeout)
            except queue.Empty:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"shard workers {sorted(pending)} did not flush in time"
                ) from None
            if message[0] != "flush":  # pragma: no cover - defensive
                continue
            _, worker_id, got_token, processed, malformed, counters, failures = (
                message
            )
            # Deltas are merged regardless of token age (they are real work);
            # only the matching token clears the worker's pending slot.
            self.processed += processed
            self.malformed += malformed
            for name, count in counters.items():
                self.counters[Verdict(name)] += count
            for payload, _verdict in failures:
                # Re-ingest through the server: localization (with its
                # cache) runs here, and the incident log gets the full
                # VerificationResult.
                self.server.receive_report_bytes(payload)
            if got_token == token:
                pending.discard(worker_id)

    # -- maintenance -----------------------------------------------------------

    def pause_and_refresh(self) -> bool:
        """Quiesce workers, rebuild the path table if stale, re-replicate."""
        was_running = self._running
        if was_running:
            self.stop()
        refreshed = self.server.refresh_if_dirty()
        if was_running:
            self.start()
        return refreshed

    def stats(self) -> Dict[str, int]:
        """Consolidated counters (call :meth:`join` first for exact figures)."""
        verified = sum(self.counters.values())
        return {
            "processed": self.processed,
            "malformed": self.malformed,
            "workers": self.workers,
            "mode": "process",
            "verified": verified,
            "failed": verified - self.counters[Verdict.PASS],
            "incidents": len(self.server.incidents),
        }


class UdpReportListener:
    """Receive tag reports as real UDP datagrams and feed the daemon.

    Binds ``host:port`` (port 0 picks a free one; read :attr:`address`),
    runs a receive loop on a background thread.  Oversized or truncated
    datagrams are counted, not fatal — exactly how a production collector
    must treat a lossy transport.
    """

    def __init__(
        self,
        daemon: VeriDPDaemon,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.daemon = daemon
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind((host, port))
        self._socket.settimeout(0.2)
        self.address = self._socket.getsockname()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self.received = 0
        self.malformed = 0

    def start(self) -> None:
        """Begin receiving datagrams."""
        if self._running:
            return
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="veridp-udp-listener", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the receive loop and close the socket."""
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._socket.close()

    def __enter__(self) -> "UdpReportListener":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _loop(self) -> None:
        while self._running:
            try:
                payload, _ = self._socket.recvfrom(2048)
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during stop()
            self.received += 1
            try:
                self.daemon.submit(payload)
            except Exception:
                self.malformed += 1
