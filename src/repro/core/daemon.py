"""Concurrent VeriDP server daemons.

The paper's prototype verifies ~5x10^5 reports/second single-threaded and
notes "we expect a higher throughput with multi-threading in the future"
(Section 6.4).  This module supplies that deployment shell in two shapes:

* :class:`VeriDPDaemon` — a thread pool draining a bounded queue of report
  payloads in batches (batching amortises lock traffic and clock reads via
  :meth:`~repro.core.verifier.Verifier.verify_batch`); verification
  counters and the incident log are consolidated thread-safely, and
  localization runs on the worker that caught the failure.  CPU-bound
  verification is still GIL-serialised in CPython, so threads buy
  concurrency (socket + verify overlap), not parallelism,
* :class:`ShardedVeriDPDaemon` — a ``multiprocessing`` worker pool that
  shards reports by ``(inport, outport)`` hash across processes.  Each
  worker holds a self-contained *compiled replica* of its shard of the path
  table (flat-array matchers, no BDD manager, no topology), verifies wire
  payloads locally, and ships counter deltas and failed payloads back over
  a result queue; the parent consolidates counters and runs
  localization/incident logging for the (rare) failures.  This is the mode
  that turns the GIL-flat throughput curve into a scaling one when cores
  are available,
* :class:`UdpReportListener` — an optional real UDP socket (the paper's
  transport: "tag reports ... are encapsulated with plain UDP packets")
  that feeds received datagrams into a daemon.

Resilience (the monitoring plane's own failure model — see DESIGN.md,
"Failure model of the monitoring plane"):

* ingestion queues are bounded with an explicit
  :class:`~repro.core.resilience.OverflowPolicy` and per-policy drop
  counters — overload is accounted, never silent,
* payloads that fail decoding or crash verification land in a
  :class:`~repro.core.resilience.DeadLetterQueue` with retry-then-
  quarantine semantics instead of killing a worker,
* the sharded daemon is supervised: dead or wedged worker processes are
  detected (exitcode polling + heartbeat pings) and restarted with bounded
  exponential backoff, their compiled path-table replica resynchronised
  against the current :attr:`PathTable.version`; when restarts exceed the
  budget the daemon degrades to a single-process :class:`VeriDPDaemon`
  fallback rather than wedging,
* each worker generation gets its *own* multiprocessing queues, so a
  worker killed mid-``get``/``put`` cannot poison a shared queue lock for
  its successor.

The verifying fast path shares one path table read-only; rule updates go
through ``pause_and_refresh``, which quiesces the workers, rebuilds (and
for the sharded daemon re-replicates), and resumes — the classic
read-mostly monitor structure.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import queue
import socket
import struct
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..obs import (
    DEFAULT_BUCKETS,
    MetricsEndpoint,
    MetricsRegistry,
    Observability,
)
from .ingest import (
    DEFAULT_INGEST_BATCH,
    FrameBuffer,
    drain_socket,
    dst_ips as _frame_dst_ips,
    screen_frame,
    shard_split,
)
from .pathtable import PathTable
from .reports import (
    _REPORT_STRUCT,
    REPORT_SIZE,
    REPORT_VERSION,
    Frame,
    ReportDecodeError,
    payload_precheck,
    unpack_report,
)
from .resilience import (
    DeadLetterQueue,
    OverflowPolicy,
    PolicyQueue,
    RestartBackoff,
    TenantQuotaQueue,
    WorkerProbe,
    WorkerSupervisor,
    drop_stat_aliases,
)
from .server import Incident, VeriDPServer
from .vector import (
    HAVE_NUMPY as _HAVE_VECTOR,
    MIN_BATCH as _VECTOR_MIN_BATCH,
    VMALFORMED as _VCODE_MALFORMED,
    VSCALAR as _VCODE_SCALAR,
    WireBatchVerifier,
)
from .verifier import Verdict, Verifier

__all__ = [
    "VeriDPDaemon",
    "ShardedVeriDPDaemon",
    "UdpReportListener",
    "build_pair_spec",
    "build_shard_specs",
    "build_one_shard_spec",
    "replica_digest",
    "wire_packing",
    "frame_batch",
    "unframe_batch",
    "verify_wire",
]

_STOP = object()


def _log_frame(persist, frame: Frame) -> None:
    """WAL a frame as one ``RT_REPORT_BATCH`` record (durable servers)."""
    log = getattr(persist, "log_report_frame", None)
    if log is not None:
        log(frame.payload())
    else:  # pragma: no cover - PersistentState always has log_report_frame
        persist.log_report_batch(list(frame.rows()))

#: How many undecodable payloads a shard worker keeps per flush window for
#: parent-side dead-lettering (the *count* is always exact; the payload
#: sample is bounded to cap IPC volume under a corruption storm).
_MALFORMED_SAMPLE = 64


class VeriDPDaemon:
    """Multi-worker report verification on top of a :class:`VeriDPServer`.

    The underlying server's verify/localize machinery is pure computation
    over a shared read-only path table; workers drain the queue in batches
    (up to ``batch_size`` reports at a time) and serialise only one
    counter/incident update per batch under a lock.

    The ingestion queue is a :class:`PolicyQueue`: ``overflow`` selects what
    a full queue does (``"block"``, ``"drop-oldest"``, ``"drop-new"``), and
    every dropped payload increments a policy-specific counter surfaced in
    :meth:`stats`.  Payloads that fail :func:`unpack_report` or crash the
    verifier are dead-lettered, not fatal.
    """

    def __init__(
        self,
        server: VeriDPServer,
        workers: int = 2,
        queue_size: int = 10_000,
        batch_size: int = 64,
        overflow: "OverflowPolicy | str" = OverflowPolicy.DROP_NEW,
        submit_timeout: Optional[float] = None,
        dead_letter_capacity: int = 1024,
        dead_letter_attempts: int = 3,
        obs: Optional[Observability] = None,
        metrics_port: Optional[int] = None,
        metrics_host: str = "127.0.0.1",
        tenant_shares: Optional[Dict[str, float]] = None,
        tenant_classify=None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"need at least one worker, got {workers}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.server = server
        # Durable servers log payloads at submit time; the sharded daemon's
        # thread fallback wraps the same server and clears this flag so a
        # delegated submit is not logged twice.
        self.record_reports = True
        self.obs = obs or server.obs
        self.overflow = OverflowPolicy.coerce(overflow)
        # Per-tenant queue quotas (multi-tenant deployments): when shares or
        # a classifier are supplied — or the server carries a slice registry
        # with queue shares — the ingestion queue enforces per-tenant
        # occupancy caps so one tenant's report storm cannot consume the
        # whole buffer (see DESIGN.md §13).
        if tenant_classify is None and (
            tenant_shares is not None or getattr(server, "slices", None) is not None
        ):
            tenant_classify = self._classify_payload
        if tenant_classify is not None:
            if tenant_shares is None and getattr(server, "slices", None) is not None:
                tenant_shares = server.slices.queue_shares()
            self._queue: PolicyQueue = TenantQuotaQueue(
                queue_size,
                self.overflow,
                classify=tenant_classify,
                shares=tenant_shares,
            )
        else:
            self._queue = PolicyQueue(queue_size, self.overflow)
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._worker_verifiers: List[Verifier] = []
        self._running = False
        self.workers = workers
        self.batch_size = batch_size
        self.submit_timeout = submit_timeout
        self.processed = 0
        self.malformed = 0  # undecodable payloads (must not kill a worker)
        self.verify_errors = 0  # payloads that crashed the verifier
        self.frames = 0  # frames handed over via submit_frame
        self._wire_pass = 0  # frame rows bulk-passed by the wire kernel
        self._wirev: Optional[WireBatchVerifier] = None
        self._wirev_version = -1
        self._wirev_failed = not _HAVE_VECTOR
        self._wirev_lock = threading.Lock()
        self.dead_letters = DeadLetterQueue(
            capacity=dead_letter_capacity, max_attempts=dead_letter_attempts
        )
        self._register_metrics()
        self._endpoint: Optional[MetricsEndpoint] = None
        if metrics_port is not None:
            self._endpoint = self.obs.endpoint(
                host=metrics_host,
                port=metrics_port,
                health=self._health,
                varz=self.stats,
            ).start()

    @property
    def submitted(self) -> int:
        """Payloads offered to :meth:`submit` (admitted or not)."""
        return self._queue.puts

    @property
    def dropped(self) -> int:
        """Total payloads lost to backpressure, across all policies."""
        return (
            self._queue.dropped_new
            + self._queue.dropped_oldest
            + self._queue.block_timeouts
        )

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` of the live monitoring endpoint, if enabled."""
        return None if self._endpoint is None else self._endpoint.address

    def _health(self) -> Tuple[bool, dict]:
        return self._running, {"mode": "thread", "workers": self.workers}

    def _classify_payload(self, payload: bytes) -> Optional[str]:
        """Attribute a wire payload to a tenant for queue accounting.

        Decodes just enough to LPM-probe the destination against the
        server's slice registry; undecodable payloads are unattributed
        (they will be dead-lettered downstream anyway).
        """
        registry = getattr(self.server, "slices", None)
        if registry is None:
            return None
        try:
            report = unpack_report(payload, self.server.codec)
        except ReportDecodeError:
            return None
        return registry.classify_dst(report.header.dst_ip)

    def _register_metrics(self) -> None:
        """Expose daemon state on the shared registry (callback-sourced).

        Hot-path counters stay plain ints updated under :attr:`_lock`; the
        registry reads them at scrape time.  The merged-fleet verification
        families re-register the ones :class:`VeriDPServer` owns by
        default — latest owner wins, and the daemon's view (server +
        worker verifiers) is a superset of the server's own.
        """
        reg = self.obs.registry
        reg.counter(
            "veridp_submitted_total",
            "Report payloads offered to the daemon (admitted or not).",
            callback=lambda: self._queue.puts,
        )
        reg.counter(
            "veridp_processed_total",
            "Payloads fully verified by the worker pool.",
            callback=lambda: self.processed,
        )
        reg.counter(
            "veridp_malformed_total",
            "Payloads the decoder rejected (dead-lettered, not fatal).",
            callback=lambda: self.malformed,
        )
        reg.counter(
            "veridp_verify_errors_total",
            "Payloads that crashed the verifier (dead-lettered).",
            callback=lambda: self.verify_errors,
        )
        reg.gauge(
            "veridp_queue_depth",
            "Report payloads waiting in the ingestion queue.",
            callback=lambda: self._queue.qsize(),
        )
        reg.gauge(
            "veridp_queue_capacity",
            "Bound of the ingestion queue.",
            callback=lambda: self._queue.maxsize,
        )
        reg.counter(
            "veridp_queue_dropped_total",
            "Payloads lost to backpressure, by overflow policy decision.",
            ("policy",),
            callback=lambda: {
                ("drop-new",): self._queue.dropped_new,
                ("drop-oldest",): self._queue.dropped_oldest,
                ("block-timeout",): self._queue.block_timeouts,
            },
        )
        if isinstance(self._queue, TenantQuotaQueue):
            reg.gauge(
                "veridp_tenant_queue_depth",
                "Report payloads queued, by owning tenant.",
                ("tenant",),
                callback=lambda: {
                    (tenant,): row["queued"]
                    for tenant, row in self._queue.stats()["tenants"].items()
                },
            )
            reg.counter(
                "veridp_tenant_queue_dropped_total",
                "Payloads refused by per-tenant quota or policy, by tenant.",
                ("tenant",),
                callback=lambda: {
                    (tenant,): row["dropped"]
                    for tenant, row in self._queue.stats()["tenants"].items()
                },
            )
        reg.gauge(
            "veridp_workers",
            "Verification workers in the pool.",
            callback=lambda: self.workers,
        )
        reg.counter(
            "veridp_verifications_total",
            "Tag reports verified, by Algorithm 3 verdict (merged fleet).",
            ("verdict",),
            callback=self._merged_verdicts,
        )
        reg.counter(
            "veridp_dead_letters_total",
            "Payloads dead-lettered since start.",
            callback=lambda: self.dead_letters.total,
        )
        reg.gauge(
            "veridp_dead_letter_pending",
            "Dead letters awaiting retry.",
            callback=lambda: self.dead_letters.pending,
        )
        reg.gauge(
            "veridp_dead_letter_quarantined",
            "Dead letters past the retry budget.",
            callback=lambda: self.dead_letters.quarantined,
        )
        self._batch_hist = reg.histogram(
            "veridp_verify_batch_seconds",
            "Wall-clock seconds spent verifying one batch of reports.",
            buckets=DEFAULT_BUCKETS,
        ).labels()
        reg.counter(
            "veridp_ingest_frames_total",
            "Report frames handed to the daemon by batched ingestion.",
            callback=lambda: self.frames,
        )
        self._frame_rows_hist = reg.histogram(
            "veridp_ingest_frame_rows",
            "Reports per frame at the queue handoff.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        ).labels()

    def _merged_verdicts(self) -> Dict[tuple, int]:
        merged = {v: n for v, n in self.server.verifier.counters.items()}
        for verifier in self._worker_verifiers:
            for verdict, count in verifier.counters.items():
                merged[verdict] += count
        # Rows the frame fast path bulk-passed without materialising a
        # TagReport (scalar-parity pinned: a wire-kernel PASS is a PASS).
        merged[Verdict.PASS] += self._wire_pass
        return {(v.value,): n for v, n in merged.items()}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool (idempotent)."""
        if self._running:
            return
        self._running = True
        if self._endpoint is not None:
            self._endpoint.start()
        self.server.refresh_if_dirty()
        self._worker_verifiers = []
        for index in range(self.workers):
            # Worker-local verifiers: counters are per-thread (merged in
            # stats()), the path table is shared read-only.
            verifier = Verifier(
                self.server.table,
                self.server.hs,
                fast_path=self.server.fast_path,
            )
            self._worker_verifiers.append(verifier)
            thread = threading.Thread(
                target=self._worker,
                args=(verifier,),
                name=f"veridp-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Drain the queue and stop the workers."""
        if not self._running:
            return
        for _ in self._threads:
            self._queue.put(_STOP, force=True)
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        self._running = False
        if self._endpoint is not None:
            self._endpoint.stop()

    def __enter__(self) -> "VeriDPDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion ---------------------------------------------------------

    def submit(self, payload: bytes) -> bool:
        """Enqueue one wire-format report; False if backpressure refused it.

        What "refused" means depends on the overflow policy: ``drop-new``
        rejects the new payload (UDP tail drop), ``drop-oldest`` admits it
        by evicting the oldest queued payload (the eviction is counted, the
        call still returns True), ``block`` waits up to ``submit_timeout``
        (forever when None).  Every variety of loss is visible in
        :meth:`stats` instead of silent.

        On a durable server the payload hits the WAL here, *before* queue
        admission: replay must see what arrived, including payloads the
        overflow policy then refused (a dropped report is still evidence).
        """
        persist = self.server.persist
        if persist is not None and self.record_reports:
            persist.log_report(payload)
        return self._queue.put(payload, timeout=self.submit_timeout)

    def submit_frame(self, frame: Frame) -> int:
        """Enqueue a frame of pre-screened wire reports; returns how many
        rows the overflow policy admitted.

        The frame rides the queue as one item (weighted by its row count),
        so the whole handoff costs one lock acquisition and one condvar
        signal regardless of size.  On a durable server the WAL gets one
        ``RT_REPORT_BATCH`` record per frame.  Partial admission narrows
        the frame's window instead of copying; refused rows are counted
        per report by the queue, exactly like scalar :meth:`submit`.
        """
        count = frame.count
        if count == 0:
            return 0
        persist = self.server.persist
        if persist is not None and self.record_reports:
            _log_frame(persist, frame)
        if isinstance(self._queue, TenantQuotaQueue):
            tenants = self._classify_frame(frame)
            admitted = self._queue.put_frame(
                frame, timeout=self.submit_timeout, tenants=tenants
            )
        else:
            admitted = self._queue.put_frame(frame, timeout=self.submit_timeout)
        with self._lock:
            self.frames += 1
        self._frame_rows_hist.observe(count)
        return admitted

    def _classify_frame(self, frame: Frame) -> List[Optional[str]]:
        """Per-row tenant attribution for a frame (vectorized LPM when the
        registry supports it, scalar otherwise)."""
        registry = getattr(self.server, "slices", None)
        if registry is None:
            # No slice registry to LPM against — honor whatever custom
            # classifier the quota queue was built with, row by row.
            classify = getattr(self._queue, "_classify", None)
            if classify is None:
                return [None] * frame.count
            return [classify(row) for row in frame.rows()]
        payload = frame.payload()
        if _HAVE_VECTOR:
            ips = _frame_dst_ips(payload)
        else:
            ips = [
                int.from_bytes(
                    payload[i * REPORT_SIZE + 18 : i * REPORT_SIZE + 22], "big"
                )
                for i in range(frame.count)
            ]
        batch = getattr(registry, "classify_dst_batch", None)
        if batch is not None:
            return batch(ips)
        return [registry.classify_dst(int(ip)) for ip in ips]

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued report has been processed."""
        return self._queue.join(timeout=timeout)

    def retry_dead_letters(self) -> Tuple[int, int]:
        """Re-run pending dead letters through the server's full pipeline.

        Useful after a codec/table update fixed the original cause.  Returns
        ``(recovered, quarantined_now)``.  Retried payloads were already
        WAL-logged at first arrival, so the re-ingest skips recording.
        """
        return self.dead_letters.retry(
            lambda payload: self.server.receive_report_bytes(payload, record=False)
        )

    def dead_letter_transport(self, payload: bytes, reason: str) -> None:
        """Record a payload rejected before queue admission (wrong size or
        version, or a submit that raised).  The transport keeps the evidence
        instead of discarding it: dead-letter queue, malformed counter, and
        the WAL's malformed stream on a durable server.
        """
        self.dead_letters.add(payload, "transport", ReportDecodeError(reason))
        with self._lock:
            self.malformed += 1
        persist = self.server.persist
        if persist is not None:
            persist.log_malformed(payload)

    # -- worker loop -----------------------------------------------------------

    def _worker(self, verifier: "Verifier") -> None:
        q = self._queue
        batch_size = self.batch_size
        while True:
            # One blocking wait, then everything already queued up to a
            # batch — frames come back whole (a _STOP seen anywhere in the
            # slice ends this worker after the slice is processed; stop()
            # enqueues one _STOP per worker, and they are interchangeable).
            items = q.get_many(batch_size)
            stop = False
            batch: List[bytes] = []
            frames: List[Frame] = []
            done = 0
            for item in items:
                if item is _STOP:
                    stop = True
                    done += 1
                elif isinstance(item, Frame):
                    frames.append(item)
                    done += item.count
                else:
                    batch.append(item)
                    done += 1
            if batch:
                try:
                    self._process_batch(verifier, batch)
                except Exception as exc:  # pragma: no cover - last resort
                    # A batch must never kill a worker: dead-letter it
                    # wholesale and carry on.
                    for payload in batch:
                        self.dead_letters.add(payload, "verify", exc)
                    with self._lock:
                        self.verify_errors += len(batch)
            for frame in frames:
                try:
                    self._process_frame(verifier, frame)
                except Exception as exc:  # pragma: no cover - last resort
                    for payload in frame.rows():
                        self.dead_letters.add(payload, "verify", exc)
                    with self._lock:
                        self.verify_errors += frame.count
            q.task_done(done)
            if stop:
                return

    def _wire_verifier(self) -> Optional[WireBatchVerifier]:
        """Lazily compiled wire-format batch kernel for the frame fast path.

        Compiled from the same spec builder the sharded daemon ships to its
        workers (one shard covering every pair), cached against the path
        table version, and permanently disabled for layouts
        :func:`wire_packing` cannot express — those fall back to the scalar
        path wholesale.
        """
        if self._wirev_failed:
            return None
        version = self.server.table.version
        wirev = self._wirev
        if wirev is not None and self._wirev_version == version:
            return wirev
        with self._wirev_lock:
            if self._wirev is None or self._wirev_version != version:
                try:
                    packing = wire_packing(self.server.hs.layout)
                    pairs = build_one_shard_spec(
                        self.server.table,
                        self.server.hs,
                        self.server.codec,
                        workers=1,
                        shard=0,
                    )
                    self._wirev = WireBatchVerifier(pairs, packing)
                    self._wirev_version = version
                except Exception:
                    self._wirev_failed = True
                    self._wirev = None
                    return None
            return self._wirev

    def _process_frame(self, verifier: "Verifier", frame: Frame) -> None:
        """Verify a frame: bulk-pass clean rows via the wire kernel, route
        every flagged row (failure, malformed, scalar-only pair) through
        :meth:`_process_batch` so incidents / DLQ records / counters are
        bit-identical to per-datagram ingestion."""
        n = frame.count
        wirev = self._wire_verifier() if n >= _VECTOR_MIN_BATCH else None
        if wirev is None:
            self._process_batch(verifier, list(frame.rows()))
            return
        payload = frame.payload()
        try:
            with self.obs.span("verify", reports=n):
                started = time.perf_counter()
                codes = wirev.verify_frame(payload)
                elapsed = time.perf_counter() - started
            self._batch_hist.observe(elapsed)
        except Exception:
            self._process_batch(verifier, list(frame.rows()))
            return
        flagged = codes.nonzero()[0]
        pass_rows = n - int(flagged.shape[0])
        if pass_rows:
            with self._lock:
                self.processed += pass_rows
                self._wire_pass += pass_rows
        if flagged.shape[0]:
            salvage = [frame.row(int(i)) for i in flagged.tolist()]
            self._process_batch(verifier, salvage)

    def _process_batch(self, verifier: "Verifier", payloads: List[bytes]) -> None:
        reports = []
        sources: List[bytes] = []
        malformed = 0
        codec = self.server.codec
        # Spans are batch-granular on purpose: one ring append per batch is
        # noise-level cost, one per report would not be (see DESIGN.md §8).
        with self.obs.span("decode", reports=len(payloads)):
            for payload in payloads:
                try:
                    reports.append(unpack_report(payload, codec))
                    sources.append(payload)
                except ReportDecodeError as exc:
                    malformed += 1
                    self.dead_letters.add(payload, "decode", exc)
        incidents: List[Incident] = []
        verify_errors = 0
        failures = []
        if reports:
            # Pure computation outside the lock.
            try:
                with self.obs.span("verify", reports=len(reports)):
                    batch_result = verifier.verify_batch(reports)
                failures = batch_result.failures
                self._batch_hist.observe(batch_result.elapsed_s)
            except Exception:
                # One poisoned report must not take down its batch-mates:
                # retry one by one and dead-letter only the culprit(s).
                failures = []
                for report, payload in zip(reports, sources):
                    try:
                        result = verifier.verify(report)
                    except Exception as exc:
                        verify_errors += 1
                        self.dead_letters.add(payload, "verify", exc)
                        continue
                    if not result.passed:
                        failures.append(result)
        if failures:
            with self.obs.span("localize", failures=len(failures)):
                for failure in failures:
                    localization = None
                    if self.server.localize_failures:
                        try:
                            localization = self.server.localizer.localize(
                                failure.report
                            )
                        except Exception:  # pragma: no cover - defensive
                            localization = None
                    incidents.append(
                        Incident(verification=failure, localization=localization)
                    )
        with self._lock:
            self.processed += len(reports) - verify_errors
            self.malformed += malformed
            self.verify_errors += verify_errors
            if incidents:
                self.server.log_incidents(incidents)

    # -- maintenance -----------------------------------------------------------

    def pause_and_refresh(self) -> bool:
        """Quiesce workers, rebuild the path table if stale, resume."""
        was_running = self._running
        if was_running:
            self.stop()
        refreshed = self.server.refresh_if_dirty()
        if was_running:
            self.start()
        return refreshed

    def stats(self) -> Dict[str, int]:
        """Daemon-level counters plus merged per-worker verification counts.

        Canonical drop keys follow :meth:`PolicyQueue.stats` (see DESIGN.md
        §8 for the alias mapping): ``dropped_new`` / ``dropped_oldest`` /
        ``block_timeouts`` with ``dropped`` as their total.  The deprecated
        ``dropped_full_queue`` alias (= ``dropped_new + block_timeouts``)
        is derived by the single :func:`drop_stat_aliases` shim.  After
        :meth:`join` the ledger closes exactly::

            submitted == processed + malformed + verify_errors + dropped
        """
        queue_stats = self._queue.stats()
        with self._lock:
            merged = {
                "submitted": queue_stats["puts"],
                "processed": self.processed,
                "malformed": self.malformed,
                "verify_errors": self.verify_errors,
                "queued": queue_stats["queued"],
                "workers": self.workers,
                "frames": self.frames,
                "wire_pass": self._wire_pass,
                "incidents": len(self.server.incidents),
                "incidents_total": self.server.incidents_total,
                "overflow_policy": self.overflow.value,
                "dropped_new": queue_stats["dropped_new"],
                "dropped_oldest": queue_stats["dropped_oldest"],
                "block_timeouts": queue_stats["block_timeouts"],
            }
        drop_stat_aliases(merged)
        merged["verified"] = merged["wire_pass"] + sum(
            v.verified_count for v in self._worker_verifiers
        )
        merged["failed"] = sum(
            v.failure_count for v in self._worker_verifiers
        )
        if "tenants" in queue_stats:
            merged["tenants"] = queue_stats["tenants"]
        merged.update(self.dead_letters.stats())
        return merged


# ---------------------------------------------------------------------------
# sharded multiprocess daemon
# ---------------------------------------------------------------------------

#: Struct field positions of the header 5-tuple inside a report payload
#: (after version, flags, inport, outport, tag).
_WIRE_FIELD_POS = {
    "src_ip": 0,
    "dst_ip": 1,
    "proto": 2,
    "src_port": 3,
    "dst_port": 4,
}

_PASS = Verdict.PASS.value
_FAIL_MISMATCH = Verdict.FAIL_TAG_MISMATCH.value
_FAIL_NO_PATH = Verdict.FAIL_NO_PATH.value
_FAIL_UNKNOWN = Verdict.FAIL_UNKNOWN_PAIR.value

#: Knuth multiplicative hash constant for spreading (inport, outport) keys.
_HASH_MULT = 2654435761

#: Vector verdict code -> wire verdict value string (codes VPASS..VUNKNOWN).
_VCODE_TO_VALUE = (_PASS, _FAIL_MISMATCH, _FAIL_NO_PATH, _FAIL_UNKNOWN)


def _shard_of(pair_key: int, workers: int) -> int:
    """Shard index for a 32-bit packed ``(inport << 16) | outport`` key."""
    return ((pair_key * _HASH_MULT) >> 16) % workers


def _frame_batch(payloads: List[bytes]) -> Tuple[bytes, List[bytes]]:
    """Concatenate well-sized payloads into one frame; return oddballs apart.

    The worker protocol ships each batch as ``(frame, oddballs)``: one
    ``bytes`` object instead of hundreds keeps queue pickling cheap, and
    the fixed ``REPORT_SIZE`` stride lets the vector kernel skip the
    per-payload length screen entirely.  Wrong-sized payloads ride along
    as a (normally empty) list and take the scalar malformed path.
    """
    odd = [p for p in payloads if len(p) != REPORT_SIZE]
    if not odd:
        return b"".join(payloads), odd
    return b"".join(p for p in payloads if len(p) == REPORT_SIZE), odd


def _unframe_batch(frame: bytes, odd: List[bytes]) -> List[bytes]:
    """Invert :func:`_frame_batch` (queue salvage, scalar fallbacks)."""
    payloads = [
        frame[start : start + REPORT_SIZE]
        for start in range(0, len(frame), REPORT_SIZE)
    ]
    payloads.extend(odd)
    return payloads


def wire_packing(layout) -> Tuple[Tuple[int, int], ...]:
    """``(wire_field_pos, width)`` per layout field, in layout order.

    The worker-side header packing recipe: raises when the layout carries a
    field the wire report format has no slot for.
    """
    packing = []
    for field in layout.fields:
        pos = _WIRE_FIELD_POS.get(field.name)
        if pos is None:
            raise ValueError(
                f"sharded daemon needs the wire 5-tuple layout; "
                f"field {field.name!r} is not on the wire"
            )
        packing.append((pos, field.width))
    return tuple(packing)


def build_pair_spec(table: PathTable, hs, inport, outport) -> Optional[tuple]:
    """Compile one pair's picklable replica spec, ``None`` if it vanished.

    The spec is ``(tags, flat_matchers, by_tag, disjoint)`` — flat integer
    arrays only, so workers never need the codec, topology or BDD manager.
    ``None`` is meaningful on the resync path: it tells a worker to drop the
    pair (every path between the ports was removed by a rule update).
    """
    index = table.fast_index(inport, outport, hs)
    if index is None:
        return None
    return (
        tuple(entry.tag for entry in index.entries),
        tuple(entry.compiled_matcher(hs) for entry in index.entries),
        dict(index.by_tag),
        index.disjoint,
    )


def build_shard_specs(
    table: PathTable, hs, codec, workers: int
) -> List[Dict[Tuple[int, int], tuple]]:
    """Compile the path table into per-worker picklable shard replicas."""
    specs: List[Dict[Tuple[int, int], tuple]] = [{} for _ in range(workers)]
    for inport, outport in table.pairs():
        spec = build_pair_spec(table, hs, inport, outport)
        if spec is None:  # pragma: no cover - pairs() only lists known keys
            continue
        in_wire = codec.encode(inport)
        out_wire = codec.encode(outport)
        shard = _shard_of((in_wire << 16) | out_wire, workers)
        specs[shard][(in_wire, out_wire)] = spec
    return specs


def build_one_shard_spec(
    table: PathTable, hs, codec, workers: int, shard: int
) -> Dict[Tuple[int, int], tuple]:
    """Compile just one shard's replica (a restarted worker's bootstrap).

    Restarting worker ``k`` used to recompile every shard's replica; only
    shard ``k``'s pairs are compiled here, and the survivors are brought up
    to date separately via pair deltas (:meth:`ShardedVeriDPDaemon.resync_replicas`).
    """
    spec: Dict[Tuple[int, int], tuple] = {}
    for inport, outport in table.pairs():
        in_wire = codec.encode(inport)
        out_wire = codec.encode(outport)
        if _shard_of((in_wire << 16) | out_wire, workers) != shard:
            continue
        compiled = build_pair_spec(table, hs, inport, outport)
        if compiled is not None:
            spec[(in_wire, out_wire)] = compiled
    return spec


def replica_digest(pairs: Dict[Tuple[int, int], tuple]) -> str:
    """Stable fingerprint of one compiled shard replica.

    Hashes pair keys, tags, tag buckets, the disjointness bit and every flat
    matcher's structure (shift/low/high arrays — *not* the manager-dependent
    ``source`` ids), so two replicas digest equal iff they verify every
    report identically.  Used to assert worker replicas converged after a
    delta resync.
    """
    digest = hashlib.sha1()
    for key in sorted(pairs):
        tags, flats, by_tag, disjoint = pairs[key]
        digest.update(repr((key, tags, sorted(by_tag.items()), disjoint)).encode())
        for flat in flats:
            digest.update(repr((flat.root, flat.shifts, flat.low, flat.high)).encode())
    return digest.hexdigest()


def _verify_wire(
    pairs: Dict[Tuple[int, int], tuple],
    packing: Tuple[Tuple[int, int], ...],
    payload: bytes,
) -> Optional[str]:
    """Verify one wire payload against a shard replica.

    Returns a verdict value string, or ``None`` for malformed payloads.
    Mirrors :meth:`Verifier._match_fast` (minus the flow cache, which would
    buy little once the per-report cost is a few flat-array chases).
    """
    try:
        fields = _REPORT_STRUCT.unpack(payload)
    except struct.error:
        return None
    if fields[0] != REPORT_VERSION:
        return None
    pair = pairs.get((fields[2], fields[3]))
    if pair is None:
        return _FAIL_UNKNOWN
    tags, flats, by_tag, disjoint = pair
    value = 0
    for pos, width in packing:
        value = (value << width) | fields[5 + pos]
    tag = fields[4]
    matched = -1
    if disjoint:
        positions = by_tag.get(tag)
        if positions is not None:
            for pos in positions:
                if flats[pos].evaluate_value(value):
                    matched = pos
                    break
        if matched < 0:
            for pos, flat in enumerate(flats):
                if tags[pos] != tag and flat.evaluate_value(value):
                    matched = pos
                    break
    else:
        for pos, flat in enumerate(flats):
            if flat.evaluate_value(value):
                matched = pos
                break
    if matched < 0:
        return _FAIL_NO_PATH
    return _PASS if tags[matched] == tag else _FAIL_MISMATCH


# Public names for the replica-protocol helpers: the cluster tier
# (repro.cluster) speaks the same frame/verify/spec machinery over
# sockets, so these stop being private to this module's worker loop.
frame_batch = _frame_batch
unframe_batch = _unframe_batch
verify_wire = _verify_wire


def _shard_worker_main(
    worker_id: int,
    in_queue,
    out_queue,
    hb_queue,
    pairs: Dict[Tuple[int, int], tuple],
    packing: Tuple[Tuple[int, int], ...],
    vector: bool = False,
) -> None:
    """One shard worker process: verify batches, report deltas on flush.

    Message protocol (parent -> worker on ``in_queue``)::

        ("batch", frame, [odd])     verify a concatenated payload frame
                                    (+ wrong-sized oddballs, normally [])
        ("flush", token)            reply deltas on out_queue, reset them
        ("ping", seq)               reply ("pong", worker_id, seq) on hb_queue
        ("reload", pairs)           swap the compiled replica in place
        ("patch", {key: spec|None}) apply a pair delta: None drops the pair
        ("digest", token)           reply ("digest", id, token, sha1) on out_queue
        ("crash", how)              test hook: "exit" dies, "wedge" hangs
        ("stop",)                   exit cleanly

    A payload can never kill the worker: undecodable ones are counted (and
    sampled for dead-lettering), and a verification crash is shipped back
    as a structured error record instead of an unhandled exception.

    Observability: the worker keeps a local :class:`MetricsRegistry` of
    ``veridp_shard_*`` families (labelled by shard id, so families never
    collide with the parent's) and ships ``snapshot(reset=True)`` deltas
    as the final element of each flush reply; the parent merges them into
    its registry.  Verification itself stays on plain ints — only the
    per-batch timing histogram and the per-flush delta transfer touch the
    registry.
    """
    counters = {
        _PASS: 0,
        _FAIL_MISMATCH: 0,
        _FAIL_NO_PATH: 0,
        _FAIL_UNKNOWN: 0,
    }
    processed = 0
    malformed = 0
    failures: List[Tuple[bytes, str]] = []
    crashed: List[Tuple[bytes, str]] = []
    malformed_sample: List[bytes] = []
    registry = MetricsRegistry()
    shard = str(worker_id)
    batch_hist = registry.histogram(
        "veridp_shard_batch_seconds",
        "Wall-clock seconds one shard worker spent verifying one batch.",
        ("shard",),
        buckets=DEFAULT_BUCKETS,
    ).labels(shard)
    batches_counter = registry.counter(
        "veridp_shard_batches_total",
        "Batches a shard worker verified.",
        ("shard",),
    ).labels(shard)
    processed_counter = registry.counter(
        "veridp_shard_processed_total",
        "Payloads a shard worker verified.",
        ("shard",),
    ).labels(shard)
    malformed_counter = registry.counter(
        "veridp_shard_malformed_total",
        "Payloads a shard worker could not decode.",
        ("shard",),
    ).labels(shard)
    verdict_family = registry.counter(
        "veridp_shard_verifications_total",
        "Shard-worker verdicts, by verdict and shard.",
        ("shard", "verdict"),
    )
    vector_reports_counter = registry.counter(
        "veridp_shard_vector_reports_total",
        "Payloads this shard worker verified through the vector kernel.",
        ("shard",),
    ).labels(shard)
    vector_fallback_family = registry.counter(
        "veridp_shard_vector_fallback_total",
        "Vector-path downgrades to the scalar matcher, by kind: a whole "
        "batch (kernel error), a single row (irregular pair), or a batch "
        "below the crossover size.",
        ("shard", "kind"),
    )
    # The compiled wire kernel; None = this worker verifies scalar-only
    # (vector disabled, numpy missing, or the layout cannot be packed).
    wirev = None
    if vector and _HAVE_VECTOR:
        try:
            wirev = WireBatchVerifier(pairs, packing)
        except Exception:
            wirev = None

    def verify_scalar(payload: bytes) -> None:
        nonlocal processed, malformed
        try:
            verdict = _verify_wire(pairs, packing, payload)
        except Exception as exc:
            crashed.append((payload, f"{type(exc).__name__}: {exc}"))
            return
        if verdict is None:
            malformed += 1
            if len(malformed_sample) < _MALFORMED_SAMPLE:
                malformed_sample.append(payload)
            return
        processed += 1
        counters[verdict] += 1
        if verdict != _PASS:
            failures.append((payload, verdict))

    while True:
        message = in_queue.get()
        kind = message[0]
        if kind == "batch":
            batch_started = time.perf_counter()
            frame = message[1]
            odd = message[2]
            n = len(frame) // REPORT_SIZE
            codes = None
            if wirev is not None and n:
                if n < _VECTOR_MIN_BATCH:
                    vector_fallback_family.labels(shard, "small").inc()
                else:
                    try:
                        codes = wirev.verify_frame(frame)
                    except Exception:
                        # Never let a kernel bug change a verdict: redo the
                        # whole batch with the scalar matcher.
                        vector_fallback_family.labels(shard, "batch").inc()
                        codes = None
            if codes is None:
                for start in range(0, len(frame), REPORT_SIZE):
                    verify_scalar(frame[start : start + REPORT_SIZE])
            else:
                # Healthy rows (code 0 == PASS) are accounted in bulk —
                # only exceptional rows materialize their payload slice
                # and touch Python.
                flagged = codes.nonzero()[0]
                pass_rows = n - flagged.shape[0]
                processed += pass_rows
                counters[_PASS] += pass_rows
                vector_rows = pass_rows
                for i in flagged.tolist():
                    code = int(codes[i])
                    payload = frame[i * REPORT_SIZE : (i + 1) * REPORT_SIZE]
                    if code == _VCODE_SCALAR:
                        vector_fallback_family.labels(shard, "row").inc()
                        verify_scalar(payload)
                    elif code == _VCODE_MALFORMED:
                        malformed += 1
                        if len(malformed_sample) < _MALFORMED_SAMPLE:
                            malformed_sample.append(payload)
                    else:
                        vector_rows += 1
                        processed += 1
                        verdict = _VCODE_TO_VALUE[code]
                        counters[verdict] += 1
                        failures.append((payload, verdict))
                vector_reports_counter.inc(vector_rows)
            for payload in odd:
                verify_scalar(payload)
            batch_hist.observe(time.perf_counter() - batch_started)
            batches_counter.inc()
        elif kind == "flush":
            # The plain ints zero at every flush, so the current values ARE
            # the delta: move them onto the local registry, then ship the
            # whole thing as a resetting snapshot.
            processed_counter.inc(processed)
            malformed_counter.inc(malformed)
            for name, count in counters.items():
                if count:
                    verdict_family.labels(shard, name).inc(count)
            out_queue.put(
                (
                    "flush",
                    worker_id,
                    message[1],
                    processed,
                    malformed,
                    dict(counters),
                    failures,
                    crashed,
                    malformed_sample,
                    registry.snapshot(reset=True),
                )
            )
            processed = 0
            malformed = 0
            for key in counters:
                counters[key] = 0
            failures = []
            crashed = []
            malformed_sample = []
        elif kind == "ping":
            hb_queue.put(("pong", worker_id, message[1]))
        elif kind == "reload":
            pairs = message[1]
            if wirev is not None:
                wirev.reload(pairs)
        elif kind == "patch":
            for key, spec in message[1].items():
                if spec is None:
                    pairs.pop(key, None)
                else:
                    pairs[key] = spec
            if wirev is not None:
                # Delta invalidation: only the patched pair kernels
                # recompile; untouched pairs keep their compiled arrays.
                wirev.invalidate(message[1].keys())
        elif kind == "digest":
            out_queue.put(("digest", worker_id, message[1], replica_digest(pairs)))
        elif kind == "crash":  # pragma: no cover - exercised via subprocess
            if message[1] == "exit":
                os._exit(13)
            while True:  # "wedge": alive but unresponsive
                time.sleep(0.5)
        elif kind == "stop":
            return


class ShardedVeriDPDaemon:
    """Multiprocess report verification, sharded by ``(inport, outport)``.

    The parent peeks the two wire port ids out of each payload (bytes 2-6),
    hashes them to a shard, and ships payloads to that shard's worker in
    batches; each worker verifies against its own compiled path-table
    replica with no shared state, sidestepping the GIL entirely.  With
    numpy present each worker additionally compiles its replica into the
    vector batch kernel (:mod:`repro.core.vector`) and verifies whole
    dispatch batches as array operations (``vector=False`` opts out;
    verdicts are identical either way, scalar fallback is automatic).  Failed
    payloads come back over the result queue and are re-ingested through
    :meth:`VeriDPServer.receive_report_bytes` on the parent, so
    localization, the localization cache and the incident log behave
    exactly as in the single-process server.

    ``join()`` is the consolidation point: it flushes the shard buffers,
    asks every worker for its counter deltas, and folds them in.  Call it
    before reading :meth:`stats`.

    Resilience: a :class:`WorkerSupervisor` polls worker liveness
    (``exitcode`` + heartbeat pings) and restarts dead or wedged workers
    with bounded exponential backoff, rebuilding the restarted shard's
    replica from the *current* path table (and reloading the other workers
    when :attr:`PathTable.version` moved meanwhile).  Worker restarts
    beyond ``restart_budget`` degrade the daemon to a single-process
    :class:`VeriDPDaemon` so ingestion survives a crash loop.  Per-shard
    ingress queues are bounded (``max_pending_batches``) under an explicit
    overflow policy — ``block`` (default, loss-free) or ``drop-new``
    (accounted tail drop); ``drop-oldest`` is not offered here because a
    batch handed to a worker process cannot be recalled.
    """

    def __init__(
        self,
        server: VeriDPServer,
        workers: int = 2,
        batch_size: int = 256,
        vector: Optional[bool] = None,
        overflow: "OverflowPolicy | str" = OverflowPolicy.BLOCK,
        max_pending_batches: int = 64,
        supervise: bool = True,
        restart_budget: int = 3,
        poll_interval: float = 0.05,
        heartbeat_timeout: float = 10.0,
        backoff: Optional[RestartBackoff] = None,
        fallback_workers: int = 2,
        dead_letter_capacity: int = 1024,
        dead_letter_attempts: int = 3,
        obs: Optional[Observability] = None,
        metrics_port: Optional[int] = None,
        metrics_host: str = "127.0.0.1",
    ) -> None:
        if workers <= 0:
            raise ValueError(f"need at least one worker, got {workers}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_pending_batches <= 0:
            raise ValueError(
                f"max_pending_batches must be positive, got {max_pending_batches}"
            )
        self.overflow = OverflowPolicy.coerce(overflow)
        if self.overflow is OverflowPolicy.DROP_OLDEST:
            raise ValueError(
                "drop-oldest is not supported by the sharded daemon: batches "
                "already handed to a worker process cannot be recalled; use "
                "the threaded VeriDPDaemon for newest-wins ingestion"
            )
        self.server = server
        self.obs = obs or server.obs
        self.workers = workers
        self.batch_size = batch_size
        # Vector dispatch is the default wherever numpy exists; requesting
        # it without numpy downgrades silently (the worker falls back to
        # the scalar matcher either way, so verdicts never change).
        self.vector = _HAVE_VECTOR if vector is None else bool(vector) and _HAVE_VECTOR
        self.max_pending_batches = max_pending_batches
        self.fallback_workers = fallback_workers
        self.submitted = 0
        self.processed = 0
        self.malformed = 0
        self.verify_errors = 0
        self.dropped_new = 0  # sharded tail drop (canonical spelling)
        self.counters: Dict[Verdict, int] = {v: 0 for v in Verdict}
        self.dead_letters = DeadLetterQueue(
            capacity=dead_letter_capacity, max_attempts=dead_letter_attempts
        )
        self._packing = self._packing_for(server)
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._processes: List = []
        self._in_queues: List = []
        self._out_queues: List = []
        self._hb_queues: List = []
        self._buffers: List[List[bytes]] = []
        self._fbuffers: List[List[bytes]] = []  # per-shard frame chunks
        self._fcounts: List[int] = []  # rows pending in _fbuffers
        self._dispatched: List[int] = []
        self._accounted: List[int] = []
        self._generations: List[int] = []
        self._last_pong: List[float] = []
        self._ping_seq = 0
        self._flush_token = 0
        self._replica_version = -1
        self._dirty_token: Optional[Tuple[int, int]] = None
        self._digest_seq = 0
        self.resyncs = 0
        self.resync_pairs = 0
        self.resync_delta_bytes = 0
        self.full_resyncs = 0
        self._running = False
        self._stopping = False
        self.degraded = False
        #: When False, dispatch skips durable report logging (re-ingest
        #: streams whose payloads are already in the WAL).
        self.record_reports = True
        self._fallback: Optional[VeriDPDaemon] = None
        self._dispatch_lock = threading.Lock()
        self._merge_lock = threading.Lock()
        self._server_mutex = threading.Lock()
        self._supervisor: Optional[WorkerSupervisor] = None
        if supervise:
            self._supervisor = WorkerSupervisor(
                probe=self._probe,
                restart=self._restart_worker,
                restart_budget=restart_budget,
                poll_interval=poll_interval,
                heartbeat_timeout=heartbeat_timeout,
                backoff=backoff,
                on_budget_exhausted=self._degrade,
            )
        self._register_metrics()
        self._endpoint: Optional[MetricsEndpoint] = None
        if metrics_port is not None:
            self._endpoint = self.obs.endpoint(
                host=metrics_host,
                port=metrics_port,
                health=self._health,
                varz=self.stats,
            ).start()

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """``(host, port)`` of the live monitoring endpoint, if enabled."""
        return None if self._endpoint is None else self._endpoint.address

    def _health(self) -> Tuple[bool, dict]:
        detail = {
            "mode": "thread-fallback" if self.degraded else "process",
            "workers": self.workers,
        }
        # A daemon that burned its restart budget still ingests (via the
        # fallback) but is operator-attention-worthy: report unhealthy.
        return (self._running or self._fallback is not None) and not self.degraded, detail

    def _register_metrics(self) -> None:
        """Expose the consolidated parent-side view on the shared registry.

        Re-registers the ingestion families the server/threaded daemon may
        already own (latest owner wins); the per-shard ``veridp_shard_*``
        families arrive separately via worker snapshot merges in
        :meth:`_merge_flush`.  When degraded, the callbacks fold in the
        fallback daemon's figures — the fallback itself runs on a private
        registry so its own registrations cannot clobber these.
        """
        reg = self.obs.registry

        def fallback_stat(name: str) -> int:
            fallback = self._fallback
            return 0 if fallback is None else getattr(fallback, name)

        reg.counter(
            "veridp_submitted_total",
            "Report payloads offered to the daemon (admitted or not).",
            callback=lambda: self.submitted,
        )
        reg.counter(
            "veridp_processed_total",
            "Payloads fully verified by the shard workers.",
            callback=lambda: self.processed + fallback_stat("processed"),
        )
        reg.counter(
            "veridp_malformed_total",
            "Payloads the decoder rejected (dead-lettered, not fatal).",
            callback=lambda: self.malformed + fallback_stat("malformed"),
        )
        reg.counter(
            "veridp_verify_errors_total",
            "Payloads that crashed verification (dead-lettered).",
            callback=lambda: self.verify_errors + fallback_stat("verify_errors"),
        )
        reg.counter(
            "veridp_queue_dropped_total",
            "Payloads lost to backpressure, by overflow policy decision.",
            ("policy",),
            callback=lambda: {
                ("drop-new",): self.dropped_new
                + (
                    0
                    if self._fallback is None
                    else self._fallback.dropped
                ),
            },
        )
        reg.gauge(
            "veridp_queue_depth",
            "Payloads buffered parent-side awaiting dispatch.",
            callback=lambda: sum(len(b) for b in self._buffers)
            + sum(self._fcounts),
        )
        reg.counter(
            "veridp_lost_in_restart_total",
            "Payloads dispatched to a worker whose verdicts never returned.",
            callback=lambda: max(
                0, sum(self._dispatched) - sum(self._accounted)
            ),
        )
        reg.gauge(
            "veridp_workers",
            "Shard worker processes (fallback threads when degraded).",
            callback=lambda: (
                self.fallback_workers if self.degraded else self.workers
            ),
        )
        reg.gauge(
            "veridp_degraded",
            "1 when the daemon fell back to the threaded single process.",
            callback=lambda: int(self.degraded),
        )
        reg.counter(
            "veridp_verifications_total",
            "Tag reports verified, by Algorithm 3 verdict (merged fleet).",
            ("verdict",),
            callback=self._merged_verdicts,
        )
        reg.counter(
            "veridp_worker_restarts_total",
            "Shard workers the supervisor restarted (dead or wedged).",
            callback=lambda: (
                0 if self._supervisor is None else self._supervisor.restarts
            ),
        )
        reg.counter(
            "veridp_wedged_restarts_total",
            "Restarts triggered by heartbeat timeout rather than death.",
            callback=lambda: (
                0
                if self._supervisor is None
                else self._supervisor.wedged_restarts
            ),
        )
        reg.gauge(
            "veridp_restart_budget",
            "Supervisor crash-restart budget before degrading.",
            callback=lambda: (
                0
                if self._supervisor is None
                else self._supervisor.restart_budget
            ),
        )
        reg.counter(
            "veridp_dead_letters_total",
            "Payloads dead-lettered since start.",
            callback=lambda: self.dead_letters.total
            + (
                0 if self._fallback is None else self._fallback.dead_letters.total
            ),
        )
        reg.gauge(
            "veridp_dead_letter_pending",
            "Dead letters awaiting retry.",
            callback=lambda: self.dead_letters.pending,
        )
        reg.gauge(
            "veridp_dead_letter_quarantined",
            "Dead letters past the retry budget.",
            callback=lambda: self.dead_letters.quarantined,
        )
        reg.counter(
            "veridp_replica_resyncs_total",
            "In-place worker replica resyncs (delta patches, no recompile).",
            callback=lambda: self.resyncs,
        )
        reg.counter(
            "veridp_replica_resync_pairs_total",
            "Path-table pairs recompiled and shipped as resync deltas.",
            callback=lambda: self.resync_pairs,
        )
        reg.counter(
            "veridp_replica_delta_bytes_total",
            "Pickled bytes of pair deltas shipped to workers on resync.",
            callback=lambda: self.resync_delta_bytes,
        )
        reg.counter(
            "veridp_replica_full_resyncs_total",
            "Resyncs that had to fall back to a full replica reload.",
            callback=lambda: self.full_resyncs,
        )

    def _merged_verdicts(self) -> Dict[tuple, int]:
        with self._merge_lock:
            merged = dict(self.counters)
        fallback = self._fallback
        if fallback is not None:
            for verifier in fallback._worker_verifiers:
                for verdict, count in verifier.counters.items():
                    merged[verdict] += count
        return {(v.value,): n for v, n in merged.items()}

    @staticmethod
    def _packing_for(server: VeriDPServer) -> Tuple[Tuple[int, int], ...]:
        return wire_packing(server.hs.layout)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Replicate the (compiled) path table and fork the workers."""
        if self._endpoint is not None:
            self._endpoint.start()
        if self._fallback is not None:
            self._fallback.start()
            return
        if self._running:
            return
        with self._server_mutex:
            self.server.refresh_if_dirty()
            specs = build_shard_specs(
                self.server.table, self.server.hs, self.server.codec, self.workers
            )
            self._replica_version = self.server.table.version
            self._dirty_token = self.server.table.dirty_token()
        self._processes = [None] * self.workers
        self._in_queues = [None] * self.workers
        self._out_queues = [None] * self.workers
        self._hb_queues = [None] * self.workers
        self._buffers = [[] for _ in range(self.workers)]
        self._fbuffers = [[] for _ in range(self.workers)]
        self._fcounts = [0] * self.workers
        self._dispatched = [0] * self.workers
        self._accounted = [0] * self.workers
        self._generations = [0] * self.workers
        self._last_pong = [time.monotonic()] * self.workers
        for worker_id in range(self.workers):
            self._spawn_worker(worker_id, specs[worker_id])
        self._running = True
        if self._supervisor is not None:
            self._supervisor.start()

    def _spawn_worker(self, worker_id: int, spec: Dict) -> None:
        """Fork one shard worker on a fresh generation of queues.

        Fresh queues per generation matter: a worker killed while holding a
        queue's internal lock would poison that queue for any successor.
        """
        in_queue = self._ctx.Queue(maxsize=self.max_pending_batches)
        out_queue = self._ctx.Queue()
        hb_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                worker_id,
                in_queue,
                out_queue,
                hb_queue,
                spec,
                self._packing,
                self.vector,
            ),
            name=f"veridp-shard-{worker_id}-gen{self._generations[worker_id]}",
            daemon=True,
        )
        process.start()
        self._in_queues[worker_id] = in_queue
        self._out_queues[worker_id] = out_queue
        self._hb_queues[worker_id] = hb_queue
        self._processes[worker_id] = process
        self._last_pong[worker_id] = time.monotonic()

    def stop(self) -> None:
        """Consolidate outstanding work and terminate the workers."""
        if self._endpoint is not None:
            self._endpoint.stop()
        if self._fallback is not None:
            self._fallback.stop()
            return
        if not self._running:
            return
        self._stopping = True
        if self._supervisor is not None:
            self._supervisor.stop()
        try:
            self.join(timeout=10.0)
        except RuntimeError:  # wedged/dead workers: terminated below
            pass
        for in_queue in self._in_queues:
            try:
                in_queue.put(("stop",), timeout=0.5)
            except queue.Full:  # pragma: no cover - defensive
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1)
        for q in self._in_queues:
            q.close()
            q.cancel_join_thread()
        self._processes = []
        self._in_queues = []
        self._out_queues = []
        self._hb_queues = []
        self._running = False
        self._stopping = False

    def __enter__(self) -> "ShardedVeriDPDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingestion -------------------------------------------------------------

    def submit(self, payload: bytes) -> bool:
        """Route one wire-format report to its shard (buffered).

        Every call increments :attr:`submitted` exactly once — including
        post-degrade calls delegated to the fallback — so the accounting
        identity in :meth:`stats` stays closed across the daemon's whole
        life.

        Durable servers log reports at *dispatch* (one batched WAL append
        per shard batch, see :meth:`_dispatch_inner`), not here: batch
        granularity keeps the WAL off the per-report fast path, and with
        ``fsync="interval"`` the loss window is the fsync interval either
        way.  A payload buffered but never dispatched is never logged —
        and was never verified, so the incident ledger cannot cite it.
        """
        fallback = self._fallback
        if fallback is not None:
            # Degraded mode: the fallback's own logging is disabled (its
            # stream mixes salvaged already-logged payloads), so new
            # arrivals are logged here before delegation.
            persist = self.server.persist
            if persist is not None and self.record_reports:
                persist.log_report(payload)
            with self._dispatch_lock:
                self.submitted += 1
            return fallback.submit(payload)
        if not self._running:
            raise RuntimeError("daemon is not running; call start() first")
        if self.server._flush_deadline is not None:
            # Reports bypass the server here, so its coalescing window
            # would never see a tick: expire it on arrival, exactly as
            # receive_report does on the direct path.
            with self._server_mutex:
                self.server.maybe_flush_updates()
        if self.server.table.version != self._replica_version:
            # Rule churn moved the table under the fleet: patch the worker
            # replicas in place (pair deltas, no whole-table recompile)
            # before this payload can reach a stale replica.
            self.resync_replicas()
        pair_key = int.from_bytes(payload[2:6], "big")
        shard = _shard_of(pair_key, self.workers)
        take = None
        with self._dispatch_lock:
            self.submitted += 1
            self._buffers[shard].append(payload)
            if (
                len(self._buffers[shard]) + self._fcounts[shard]
                >= self.batch_size
            ):
                take = self._take_shard_locked(shard)
        if take is not None:
            return self._dispatch(shard, *take)
        return True

    def submit_frame(self, frame: Frame) -> int:
        """Split a frame across the shard buffers by pair key.

        One vectorized :func:`~repro.core.ingest.shard_split` replaces
        ``frame.count`` scalar hash/route/append rounds; each shard's chunk
        lands in a frame-chunk buffer that dispatch concatenates with any
        buffered singles (the worker protocol already ships ``(frame,
        odd)``).  Returns the rows admitted — with the same approximation
        scalar :meth:`submit` makes: a dispatch batch the overflow policy
        refuses counts wholly against the call that triggered it.
        """
        count = frame.count
        if count == 0:
            return 0
        fallback = self._fallback
        if fallback is not None:
            persist = self.server.persist
            if persist is not None and self.record_reports:
                _log_frame(persist, frame)
            with self._dispatch_lock:
                self.submitted += count
            return fallback.submit_frame(frame)
        if not self._running:
            raise RuntimeError("daemon is not running; call start() first")
        if self.server._flush_deadline is not None:
            with self._server_mutex:
                self.server.maybe_flush_updates()
        if self.server.table.version != self._replica_version:
            self.resync_replicas()
        chunks = shard_split(frame.payload(), self.workers)
        dispatch: List[Tuple[int, Tuple[List[bytes], List[bytes], int]]] = []
        with self._dispatch_lock:
            self.submitted += count
            for shard, chunk in enumerate(chunks):
                if not chunk:
                    continue
                self._fbuffers[shard].append(chunk)
                self._fcounts[shard] += len(chunk) // REPORT_SIZE
                if (
                    len(self._buffers[shard]) + self._fcounts[shard]
                    >= self.batch_size
                ):
                    dispatch.append((shard, self._take_shard_locked(shard)))
        admitted = count
        for shard, (singles, frame_chunks, rows) in dispatch:
            if not self._dispatch(shard, singles, frame_chunks, rows):
                admitted = max(0, admitted - rows)
        return admitted

    def _take_shard_locked(
        self, shard: int
    ) -> Tuple[List[bytes], List[bytes], int]:
        """Swap out a shard's pending singles and frame chunks (lock held)."""
        singles = self._buffers[shard]
        self._buffers[shard] = []
        chunks = self._fbuffers[shard]
        self._fbuffers[shard] = []
        rows = len(singles) + self._fcounts[shard]
        self._fcounts[shard] = 0
        return singles, chunks, rows

    def _dispatch(
        self,
        shard: int,
        singles: List[bytes],
        chunks: List[bytes],
        rows: int,
    ) -> bool:
        """Hand one batch to a shard worker under the overflow policy.

        Runs outside the dispatch lock: a ``block`` wait here must not
        stall other producers, and the supervisor's restart path (which
        the wait leans on for liveness) must never deadlock against us.
        """
        with self.obs.span("admit", shard=shard, reports=rows):
            return self._dispatch_inner(shard, singles, chunks, rows)

    def _dispatch_inner(
        self,
        shard: int,
        singles: List[bytes],
        chunks: List[bytes],
        rows: int,
    ) -> bool:
        sized = [p for p in singles if len(p) == REPORT_SIZE]
        odd = [p for p in singles if len(p) != REPORT_SIZE]
        frame = b"".join(chunks + sized)
        # WAL-before-verify, at batch granularity: one RT_REPORT_BATCH
        # record per frame (plus one for the rare oddballs), appended
        # before any worker can see the rows.  Logged exactly once — a
        # mid-dispatch degrade below delegates to a fallback whose own
        # logging is off.
        persist = self.server.persist
        if persist is not None and self.record_reports:
            if frame:
                persist.log_report_frame(frame)
            if odd:
                persist.log_report_batch(odd)
        while True:
            fallback = self._fallback
            if fallback is not None:  # degraded mid-dispatch
                ok = True
                if frame:
                    nrows = len(frame) // REPORT_SIZE
                    ok = fallback.submit_frame(Frame(frame)) == nrows
                for payload in odd:
                    ok = fallback.submit(payload) and ok
                return ok
            in_queue = self._in_queues[shard]
            try:
                if self.overflow is OverflowPolicy.BLOCK:
                    in_queue.put(("batch", frame, odd), timeout=0.2)
                else:
                    in_queue.put_nowait(("batch", frame, odd))
            except queue.Full:
                if self.overflow is not OverflowPolicy.BLOCK:
                    with self._merge_lock:
                        self.dropped_new += rows
                    return False
                # BLOCK: make sure a live consumer exists, then retry
                # (a restart swaps in a fresh queue; re-read it above).
                self._revive()
                continue
            with self._merge_lock:
                self._dispatched[shard] += rows
            return True

    def _revive(self) -> None:
        """Run one synchronous supervision pass (restart dead workers)."""
        if self._supervisor is not None and not self._stopping:
            self._supervisor.check_once()

    def join(self, timeout: float = 60.0) -> None:
        """Flush buffers, collect every worker's deltas, fold them in."""
        fallback = self._fallback
        if fallback is not None:
            fallback.join()
            return
        if not self._running:
            return
        with self._dispatch_lock:
            batches = [
                (shard, self._take_shard_locked(shard))
                for shard in range(self.workers)
                if self._buffers[shard] or self._fbuffers[shard]
            ]
        for shard, (singles, chunks, rows) in batches:
            self._dispatch(shard, singles, chunks, rows)
        if self._fallback is not None:  # degraded while flushing
            self._fallback.join()
            return
        self._flush_token += 1
        token = self._flush_token
        sent_generation = {}
        for shard in range(self.workers):
            self._send_flush(shard, token)
            sent_generation[shard] = self._generations[shard]
        pending = set(range(self.workers))
        deadline = time.monotonic() + timeout
        while pending:
            if self._fallback is not None:
                self._fallback.join()
                return
            progress = False
            for shard in sorted(pending):
                try:
                    message = self._out_queues[shard].get(timeout=0.05)
                except queue.Empty:
                    continue
                if message[0] != "flush":  # pragma: no cover - defensive
                    continue
                self._merge_flush(message)
                # Deltas are merged regardless of token age (they are real
                # work); only the matching token clears the pending slot.
                if message[1] == shard and message[2] == token:
                    pending.discard(shard)
                    progress = True
            if progress:
                continue
            # No worker answered: revive the dead, and re-send the flush
            # token to any shard whose worker generation moved (a restarted
            # worker never saw the original token).
            self._revive()
            for shard in sorted(pending):
                if self._generations[shard] != sent_generation[shard]:
                    self._send_flush(shard, token)
                    sent_generation[shard] = self._generations[shard]
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard workers {sorted(pending)} did not flush in time"
                )

    def _send_flush(self, shard: int, token: int) -> None:
        try:
            self._in_queues[shard].put(("flush", token), timeout=1.0)
        except queue.Full:  # pragma: no cover - resent via generation check
            pass

    def _merge_flush(self, message) -> None:
        """Fold one worker flush reply into the consolidated counters."""
        (
            _,
            worker_id,
            _token,
            processed,
            malformed,
            counters,
            failures,
            crashed,
            malformed_sample,
            metrics_snapshot,
        ) = message
        # Merge the worker's veridp_shard_* delta snapshot outside
        # _merge_lock: merging takes registry/metric locks, and holding
        # _merge_lock across it would serialise scrapes (whose callbacks
        # take _merge_lock) against every flush for no benefit.
        self.obs.registry.merge(metrics_snapshot)
        with self._merge_lock:
            self.processed += processed
            self.malformed += malformed
            self.verify_errors += len(crashed)
            self._accounted[worker_id] += processed + malformed + len(crashed)
            for name, count in counters.items():
                self.counters[Verdict(name)] += count
        for payload, error in crashed:
            self.dead_letters.add(payload, "verify", RuntimeError(error))
        for payload in malformed_sample:
            self.dead_letters.add(
                payload,
                "decode",
                ReportDecodeError("shard worker could not decode payload"),
            )
        for payload, _verdict in failures:
            # Re-ingest through the server: localization (with its cache)
            # runs here, and the incident log gets the full
            # VerificationResult.  A payload the parent cannot decode
            # (e.g. corrupted port id beyond the codec) is dead-lettered.
            try:
                with self._server_mutex:
                    # record=False: already WAL-logged at submit().
                    self.server.receive_report_bytes(payload, record=False)
            except ReportDecodeError as exc:
                self.dead_letters.add(payload, "decode", exc)

    def retry_dead_letters(self) -> Tuple[int, int]:
        """Re-run pending dead letters through the parent-side pipeline."""
        def handler(payload: bytes) -> None:
            with self._server_mutex:
                self.server.receive_report_bytes(payload, record=False)

        return self.dead_letters.retry(handler)

    def dead_letter_transport(self, payload: bytes, reason: str) -> None:
        """Transport-stage reject; see :meth:`VeriDPDaemon.dead_letter_transport`."""
        self.dead_letters.add(payload, "transport", ReportDecodeError(reason))
        with self._merge_lock:
            self.malformed += 1
        persist = self.server.persist
        if persist is not None:
            persist.log_malformed(payload)

    # -- supervision -----------------------------------------------------------

    def _probe(self) -> List[WorkerProbe]:
        """Supervisor callback: ping workers, report liveness + heartbeat age."""
        now = time.monotonic()
        self._ping_seq += 1
        probes = []
        for shard in range(self.workers):
            process = self._processes[shard]
            alive = process is not None and process.is_alive()
            if alive:
                try:
                    self._in_queues[shard].put_nowait(("ping", self._ping_seq))
                except queue.Full:
                    pass  # busy worker; its batches double as liveness
            hb_queue = self._hb_queues[shard]
            while True:
                try:
                    reply = hb_queue.get_nowait()
                except queue.Empty:
                    break
                if reply[0] == "pong":
                    self._last_pong[shard] = time.monotonic()
            probes.append(
                WorkerProbe(shard, alive, now - self._last_pong[shard])
            )
        return probes

    def _restart_worker(self, shard: int) -> None:
        """Supervisor callback: replace one dead/wedged worker.

        Recovers what it can from the abandoned generation's queues
        (undelivered batches are re-dispatched, already-flushed deltas are
        merged), then forks a successor whose replica is compiled from the
        *current* path table — but only the dead shard's slice of it.  If
        the table version moved since the last replication, the survivors
        are brought up to date in place via pair deltas
        (:meth:`resync_replicas`) instead of a whole-table recompile.
        """
        old_process = self._processes[shard]
        old_in = self._in_queues[shard]
        old_out = self._out_queues[shard]
        if old_process is not None:
            if old_process.is_alive():  # wedged: take it down for real
                old_process.terminate()
                old_process.join(timeout=2)
                if old_process.is_alive():  # pragma: no cover - defensive
                    old_process.kill()
                    old_process.join(timeout=1)
            else:
                old_process.join(timeout=1)
        recovered = self._drain_abandoned(old_in, old_out)
        with self._server_mutex:
            self.server.refresh_if_dirty()
            spec = build_one_shard_spec(
                self.server.table,
                self.server.hs,
                self.server.codec,
                self.workers,
                shard,
            )
        self._generations[shard] += 1
        self._spawn_worker(shard, spec)
        # The successor's replica is already current; patch the survivors
        # (idempotent for the successor) if the table moved under the fleet.
        self.resync_replicas()
        if recovered:
            self._in_queues[shard].put(("batch",) + _frame_batch(recovered))

    # -- replica resync --------------------------------------------------------

    def resync_replicas(self) -> Optional[int]:
        """Bring every worker replica up to date with the path table, in place.

        Consumes the table's dirty-pair journal: only the ``(inport,
        outport)`` pairs touched since the last replication are recompiled
        and shipped, as per-shard ``patch`` messages (``None`` drops a pair
        whose paths all vanished).  Falls back to compiling full shard
        replicas and ``reload`` messages only when the journal overflowed
        or the token went stale (e.g. the table object itself was swapped
        by a rebuild).

        Returns the number of pairs patched, ``0`` if the replicas were
        already current, or ``None`` when a full reload was required.
        """
        if self._fallback is not None or not self._running:
            return 0
        with self._server_mutex:
            table = self.server.table
            hs, codec = self.server.hs, self.server.codec
            version = table.version
            if version == self._replica_version:
                return 0
            token, dirty = table.dirty_since(self._dirty_token)
            if dirty is None:
                specs = build_shard_specs(table, hs, codec, self.workers)
                messages = [("reload", specs[w]) for w in range(self.workers)]
                patched: Optional[int] = None
            else:
                patches: List[Dict[Tuple[int, int], Optional[tuple]]] = [
                    {} for _ in range(self.workers)
                ]
                for inport, outport in dirty:
                    in_wire = codec.encode(inport)
                    out_wire = codec.encode(outport)
                    shard = _shard_of((in_wire << 16) | out_wire, self.workers)
                    patches[shard][(in_wire, out_wire)] = build_pair_spec(
                        table, hs, inport, outport
                    )
                messages = [
                    ("patch", patch) if patch else None for patch in patches
                ]
                patched = len(dirty)
            delta_bytes = sum(
                len(pickle.dumps(m[1])) for m in messages if m is not None
            )
            for worker_id, message in enumerate(messages):
                if message is None:
                    continue
                try:
                    self._in_queues[worker_id].put(message, timeout=1.0)
                except queue.Full:  # pragma: no cover - defensive
                    # Could not deliver: poison the replication state so the
                    # next resync rebuilds full replicas for everyone.
                    self._replica_version = -1
                    self._dirty_token = None
                    return None
            self._replica_version = version
            self._dirty_token = token
            with self._merge_lock:
                self.resyncs += 1
                self.resync_delta_bytes += delta_bytes
                if patched is None:
                    self.full_resyncs += 1
                else:
                    self.resync_pairs += patched
        return patched

    def replica_digests(self, timeout: float = 10.0) -> List[str]:
        """Collect every worker's replica fingerprint (ops/test hook).

        Workers answer on their result queues; any flush replies drained
        while waiting are merged rather than lost.  Two fleets whose
        digests match verify every report identically (see
        :func:`replica_digest`).
        """
        if self._fallback is not None or not self._running:
            raise RuntimeError("no shard workers to digest")
        self._digest_seq += 1
        token = self._digest_seq
        for shard in range(self.workers):
            self._in_queues[shard].put(("digest", token), timeout=1.0)
        digests: Dict[int, str] = {}
        pending = set(range(self.workers))
        deadline = time.monotonic() + timeout
        while pending:
            for shard in sorted(pending):
                try:
                    message = self._out_queues[shard].get(timeout=0.05)
                except queue.Empty:
                    continue
                if message[0] == "flush":
                    self._merge_flush(message)
                elif message[0] == "digest" and message[2] == token:
                    digests[message[1]] = message[3]
                    pending.discard(shard)
            if pending and time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard workers {sorted(pending)} did not answer digest"
                )
        return [digests[w] for w in range(self.workers)]

    def _drain_abandoned(self, old_in, old_out) -> List[bytes]:
        """Salvage an abandoned queue generation.

        Undelivered ``batch`` payloads come back for re-dispatch; flush
        replies the parent never consumed are merged so their work is not
        double-lost.  Anything a killed worker had dequeued but not flushed
        is unrecoverable and shows up as ``lost_in_restart``.
        """
        recovered: List[bytes] = []
        while True:
            try:
                message = old_in.get(timeout=0.05)
            except (queue.Empty, OSError):
                break
            if message[0] == "batch":
                recovered.extend(_unframe_batch(message[1], message[2]))
        while True:
            try:
                message = old_out.get(timeout=0.05)
            except (queue.Empty, OSError):
                break
            if message[0] == "flush":
                self._merge_flush(message)
        old_in.close()
        old_in.cancel_join_thread()
        return recovered

    def _degrade(self) -> None:
        """Restart budget exhausted: fall back to the threaded daemon.

        Ingestion must survive a worker crash loop; a single-process
        :class:`VeriDPDaemon` over the same server is slower but cannot
        lose a process.  Everything salvageable — parent-side buffers and
        undelivered batches — is re-submitted to the fallback.
        """
        fallback = VeriDPDaemon(
            self.server,
            workers=self.fallback_workers,
            queue_size=max(10_000, self.batch_size * self.workers * 4),
            overflow=self.overflow,
            dead_letter_capacity=self.dead_letters.capacity,
            dead_letter_attempts=self.dead_letters.max_attempts,
            # A private Observability: the fallback's own registrations must
            # not clobber this daemon's families on the shared registry (the
            # callbacks above already fold its figures in).
            obs=Observability(),
        )
        # Payloads drained from worker queues were WAL-logged at dispatch
        # and future delegated payloads are logged by submit(); the
        # fallback must not log either a second time.  Parent-side
        # buffers are the exception — never dispatched, never logged —
        # so they are logged here before re-submission.
        fallback.record_reports = False
        fallback.start()
        for shard in range(self.workers):
            process = self._processes[shard]
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=2)
            recovered = self._drain_abandoned(
                self._in_queues[shard], self._out_queues[shard]
            )
            # Salvaged payloads leave the sharded ledger for the fallback's:
            # settle their dispatch debt here or they would double-count as
            # lost_in_restart *and* as fallback `processed`.
            with self._merge_lock:
                self._accounted[shard] += len(recovered)
            for payload in recovered:
                fallback.submit(payload)
        persist = self.server.persist
        with self._dispatch_lock:
            for shard in range(self.workers):
                if persist is not None and self.record_reports:
                    persist.log_report_batch(self._buffers[shard])
                    for chunk in self._fbuffers[shard]:
                        persist.log_report_frame(chunk)
                for payload in self._buffers[shard]:
                    fallback.submit(payload)
                for chunk in self._fbuffers[shard]:
                    fallback.submit_frame(Frame(chunk))
                self._buffers[shard] = []
                self._fbuffers[shard] = []
                self._fcounts[shard] = 0
            self.degraded = True
            self._fallback = fallback

    def kill_worker(self, shard: int) -> None:
        """Forcibly kill one shard worker (chaos/testing hook)."""
        if self._fallback is not None or not self._running:
            return
        process = self._processes[shard]
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=2)

    # -- maintenance -----------------------------------------------------------

    def pause_and_refresh(self) -> bool:
        """Quiesce workers, rebuild the path table if stale, re-replicate."""
        if self._fallback is not None:
            return self._fallback.pause_and_refresh()
        was_running = self._running
        if was_running:
            self.stop()
        refreshed = self.server.refresh_if_dirty()
        if was_running:
            self.start()
        return refreshed

    def stats(self) -> Dict[str, int]:
        """Consolidated counters (call :meth:`join` first for exact figures).

        ``lost_in_restart`` counts payloads dispatched to a worker whose
        verdicts never came back — exact after :meth:`join` returns (it
        includes in-flight work mid-run).  The accounting identity after a
        completed ``join`` on a non-degraded daemon is::

            submitted == processed + malformed + verify_errors
                         + dropped_new + lost_in_restart

        ``dropped_new`` is the canonical name for sharded tail drop (the
        only policy decision this daemon can take); ``dropped_oldest``
        and ``block_timeouts`` are emitted as 0 for key uniformity, and
        the deprecated ``dropped_full_queue`` alias plus the ``dropped``
        policy-total come from the single :func:`drop_stat_aliases`
        shim, mirroring :meth:`PolicyQueue.stats` (DESIGN.md §8).
        """
        with self._dispatch_lock:
            submitted = self.submitted
        with self._merge_lock:
            processed = self.processed
            malformed = self.malformed
            verify_errors = self.verify_errors
            dropped = self.dropped_new
            counters = dict(self.counters)
            lost = max(0, sum(self._dispatched) - sum(self._accounted))
        verified = sum(counters.values())
        stats = {
            "submitted": submitted,
            "processed": processed,
            "malformed": malformed,
            "verify_errors": verify_errors,
            "workers": self.workers,
            "mode": "thread-fallback" if self.degraded else "process",
            "verified": verified,
            "failed": verified - counters[Verdict.PASS],
            "incidents": len(self.server.incidents),
            "incidents_total": self.server.incidents_total,
            "overflow_policy": self.overflow.value,
            "dropped_new": dropped,
            "dropped_oldest": 0,
            "block_timeouts": 0,
            "lost_in_restart": lost,
            "degraded": int(self.degraded),
            "vector": self.vector,
        }
        if self._supervisor is not None:
            stats.update(self._supervisor.stats())
        stats.update(self.dead_letters.stats())
        fallback = self._fallback
        if fallback is not None:
            fb = fallback.stats()
            for key in ("processed", "malformed", "verify_errors", "verified", "failed"):
                stats[key] += fb[key]
            for key in ("dropped_new", "dropped_oldest", "block_timeouts"):
                stats[key] += fb[key]
            stats["dead_lettered"] += fb["dead_lettered"]
            stats["dead_letter_quarantined"] += fb["dead_letter_quarantined"]
            stats["incidents"] = fb["incidents"]
        return drop_stat_aliases(stats)


class UdpReportListener:
    """Receive tag reports as real UDP datagrams and feed the daemon.

    Binds ``host:port`` (port 0 picks a free one; read :attr:`address`),
    runs a receive loop on a background thread.  Oversized or truncated
    datagrams are counted, not fatal — exactly how a production collector
    must treat a lossy transport.  Transient socket errors are retried
    with capped exponential backoff (rebinding the same address), and
    ``start``/``stop`` are idempotent and restart-safe: the receive loop
    wakes from ``recvfrom`` on a socket timeout, so ``stop`` can never
    hang behind a blocked read.
    """

    def __init__(
        self,
        daemon: VeriDPDaemon,
        host: str = "127.0.0.1",
        port: int = 0,
        max_socket_errors: int = 8,
        error_backoff: float = 0.05,
        max_rebinds: int = 32,
        ingest_batch: int = DEFAULT_INGEST_BATCH,
    ) -> None:
        self.daemon = daemon
        self._host = host
        self._port = port
        self.max_socket_errors = max_socket_errors
        self.error_backoff = error_backoff
        # Lifetime cap on rebinds: consecutive-error streaks reset on any
        # successful receive, so intermittent faults used to allow silent
        # rebinding forever.  Past this total the listener gives up and
        # stops (the supervisor/operator decides what happens next).
        self.max_rebinds = max_rebinds
        # Datagrams drained per socket wakeup.  > 1 selects the frame-native
        # fast path (one blocking recv, then a non-blocking drain into a
        # preallocated frame buffer, one submit_frame per drain); 1 keeps
        # the legacy one-datagram-per-submit loop.
        self.ingest_batch = max(1, int(ingest_batch))
        self._socket: Optional[socket.socket] = None
        self._open_socket()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self.received = 0
        self.malformed = 0
        self.dropped = 0
        self.wrong_size = 0  # datagrams whose length cannot be a report
        self.oversize = 0  # datagrams longer than a report (kernel-truncated)
        self.socket_errors = 0
        self.rebinds = 0
        self.obs = getattr(daemon, "obs", None) or Observability()
        self._register_metrics()

    def _register_metrics(self) -> None:
        reg = self.obs.registry
        reg.counter(
            "veridp_udp_received_total",
            "UDP datagrams received on the report socket.",
            callback=lambda: self.received,
        )
        reg.counter(
            "veridp_udp_wrong_size_total",
            "Datagrams the precheck rejected (bad size/version; dead-lettered).",
            callback=lambda: self.wrong_size,
        )
        reg.counter(
            "veridp_udp_submit_errors_total",
            "Datagrams the daemon's submit() raised on.",
            callback=lambda: self.malformed,
        )
        reg.counter(
            "veridp_udp_dropped_total",
            "Datagrams refused by daemon backpressure.",
            callback=lambda: self.dropped,
        )
        reg.counter(
            "veridp_udp_socket_errors_total",
            "Transient socket errors absorbed by the receive loop.",
            callback=lambda: self.socket_errors,
        )
        reg.counter(
            "veridp_listener_rebind_total",
            "Report-socket rebinds after transient errors (capped by "
            "max_rebinds over the listener's lifetime).",
            callback=lambda: self.rebinds,
        )
        reg.counter(
            "veridp_listener_oversize_total",
            "Datagrams longer than a wire report (kernel-truncated at the "
            "receive buffer; dead-lettered, never silently clipped).",
            callback=lambda: self.oversize,
        )
        self._drain_hist = reg.histogram(
            "veridp_ingest_drain_depth",
            "Datagrams drained from the socket per receive wakeup.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        ).labels()

    def _open_socket(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        if self.ingest_batch > 1:
            # The drain loop empties the socket in bursts; a deeper kernel
            # buffer rides out the gap between wakeups at high rates.
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 21)
            except OSError:  # pragma: no cover - platform-dependent cap
                pass
        sock.bind((self._host, self._port))
        # The timeout doubles as the stop() wakeup: _loop re-checks the
        # running flag at least this often, so join can never hang behind
        # a blocked recvfrom.
        sock.settimeout(0.2)
        self._socket = sock
        self.address = sock.getsockname()
        self._port = self.address[1]  # keep the same port across rebinds

    def start(self) -> None:
        """Begin receiving datagrams (idempotent; restart-safe)."""
        if self._running:
            return
        if self._socket is None:
            self._open_socket()
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="veridp-udp-listener", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the receive loop and close the socket (idempotent)."""
        self._running = False
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None
        sock = self._socket
        if sock is not None:
            self._socket = None
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "UdpReportListener":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stats(self) -> Dict[str, int]:
        return {
            "received": self.received,
            "malformed": self.malformed,
            "dropped": self.dropped,
            "wrong_size": self.wrong_size,
            "oversize": self.oversize,
            "socket_errors": self.socket_errors,
            "rebinds": self.rebinds,
        }

    def _recover_socket(self, consecutive_errors: int) -> int:
        """Absorb one transient socket error: count, back off, rebind.

        Returns the updated consecutive-error count, or -1 when a budget
        (error streak or lifetime rebinds) is exhausted and the loop must
        stop.  A failed rebind leaves the count unchanged so the next pass
        backs off again.
        """
        self.socket_errors += 1
        consecutive_errors += 1
        if consecutive_errors > self.max_socket_errors:
            return -1
        if self.rebinds >= self.max_rebinds:
            # Consecutive streaks reset on success, so without this
            # lifetime cap an intermittently-failing socket rebinds
            # silently forever.  Stop loudly instead.
            return -1
        time.sleep(min(1.0, self.error_backoff * (2**consecutive_errors)))
        try:
            if self._socket is not None:
                self._socket.close()
            self._open_socket()
        except OSError:
            return consecutive_errors  # backoff again on the next pass
        self.rebinds += 1
        return consecutive_errors

    def _dead_letter_odd(self, payload: bytes, nbytes: int) -> None:
        """Route one wrong-length datagram to the DLQ with the right tag.

        A datagram of exactly ``REPORT_SIZE + 1`` bytes overflowed the
        receive slot — the kernel truncated it, so its true length is
        unknowable; it is counted as *oversize*, never silently clipped
        to a plausible report.
        """
        if nbytes == REPORT_SIZE + 1:
            self.oversize += 1
            self.daemon.dead_letter_transport(
                payload,
                f"oversize datagram truncated at {REPORT_SIZE + 1} bytes "
                f"(a wire report is {REPORT_SIZE} bytes)",
            )
        else:
            self.wrong_size += 1
            self.daemon.dead_letter_transport(
                payload,
                f"wrong size {nbytes} (a wire report is {REPORT_SIZE} bytes)",
            )

    def _loop(self) -> None:
        if self.ingest_batch > 1:
            self._loop_batched()
        else:
            self._loop_scalar()

    def _loop_scalar(self) -> None:
        """Legacy one-datagram-per-submit loop (``ingest_batch=1``).

        The receive buffer is sized from ``REPORT_SIZE`` (not a magic
        constant): one extra byte turns any oversize datagram into a
        detectable kernel truncation instead of a silent clip.
        """
        consecutive_errors = 0
        while self._running:
            sock = self._socket
            if sock is None:
                return
            try:
                payload, _ = sock.recvfrom(REPORT_SIZE + 1)
            except socket.timeout:
                continue
            except OSError:
                if not self._running:
                    return  # socket closed under us during stop()
                consecutive_errors = self._recover_socket(consecutive_errors)
                if consecutive_errors < 0:
                    self._running = False
                    return
                continue
            consecutive_errors = 0
            self.received += 1
            if len(payload) == REPORT_SIZE + 1:
                self._dead_letter_odd(payload, len(payload))
                continue
            reason = payload_precheck(payload)
            if reason is not None:
                # A datagram that *cannot* decode never reaches the queue:
                # it goes to the dead-letter queue (and the WAL's malformed
                # stream on a durable server) as evidence, not to a worker.
                self.wrong_size += 1
                self.daemon.dead_letter_transport(payload, reason)
                continue
            try:
                accepted = self.daemon.submit(payload)
            except Exception as exc:
                self.malformed += 1
                self.daemon.dead_letter_transport(
                    payload, f"submit failed: {exc}"
                )
                continue
            if accepted is False:
                self.dropped += 1

    def _loop_batched(self) -> None:
        """Frame-native receive loop: one blocking recv, then a
        non-blocking drain of up to ``ingest_batch`` datagrams into a
        preallocated frame buffer, one version screen and one
        ``submit_frame`` per drain.  A report only becomes an individual
        bytes object on the error paths (odd sizes, bad version)."""
        fb = FrameBuffer(self.ingest_batch)
        consecutive_errors = 0
        while self._running:
            sock = self._socket
            if sock is None:
                return
            try:
                nbytes = sock.recv_into(fb.slot())
            except socket.timeout:
                continue
            except OSError:
                if not self._running:
                    return  # socket closed under us during stop()
                consecutive_errors = self._recover_socket(consecutive_errors)
                if consecutive_errors < 0:
                    self._running = False
                    return
                continue
            consecutive_errors = 0
            odd: List[Tuple[bytes, int]] = []
            if nbytes == REPORT_SIZE:
                fb.commit()
            else:
                odd.append((fb.slot_bytes(nbytes), nbytes))
            # Opportunistic drain: everything already queued in the kernel,
            # without blocking (drain_socket swallows socket errors — the
            # next blocking recv surfaces them through the recovery path).
            drained = 1
            try:
                sock.settimeout(0)
                extra, more_odd = drain_socket(
                    sock, fb, self.ingest_batch - 1
                )
                drained += extra
                odd.extend(more_odd)
            finally:
                try:
                    sock.settimeout(0.2)
                except OSError:  # pragma: no cover - closed under us
                    pass
            self.received += drained
            self._drain_hist.observe(drained)
            for payload, n in odd:
                self._dead_letter_odd(payload, n)
            if not fb.rows:
                continue
            clean, rejected = screen_frame(fb.take())
            for payload, reason in rejected:
                self.wrong_size += 1
                self.daemon.dead_letter_transport(payload, reason)
            if not clean:
                continue
            frame = Frame(clean)
            count = frame.count
            try:
                admitted = self.daemon.submit_frame(frame)
            except Exception as exc:
                self.malformed += count
                for payload in frame.rows():
                    self.daemon.dead_letter_transport(
                        payload, f"submit failed: {exc}"
                    )
                continue
            if admitted < count:
                self.dropped += count - admitted
