"""Path-table construction over atomic predicates — the [56] optimisation.

Algorithm 2 spends its time intersecting header-set BDDs with transfer
predicates.  Following Yang & Lam [56] (which the paper's Section 4.1
explicitly builds on), this builder first computes the *atoms* of all
transfer predicates, converts each predicate to a set of atom indices once,
and then runs the very same traversal with ``frozenset`` intersections —
orders of magnitude cheaper per step.

The produced table is converted back to BDD header sets at the leaves, so
it is drop-in compatible with the verifier, and asserted identical to the
direct builder's output in the tests.  Paths with header rewrites are not
supported in atomic mode (rewrites transform sets *across* the atom basis);
the builder raises if a provider yields rewriting actions.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..bdd.atomic import AtomicUniverse
from ..bdd.headerspace import HeaderSpace
from ..netmodel.hops import Hop
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef, Topology
from .bloom import BloomTagScheme
from .pathtable import PathEntry, PathTable, PathTableBuilder, PredicateProvider

__all__ = ["AtomicPathTableBuilder"]


class AtomicPathTableBuilder:
    """Algorithm 2 with atom-set arithmetic instead of BDD arithmetic."""

    def __init__(
        self,
        topo: Topology,
        hs: HeaderSpace,
        scheme: Optional[BloomTagScheme] = None,
        provider: Optional[PredicateProvider] = None,
        max_path_length: Optional[int] = None,
    ) -> None:
        self.topo = topo
        self.hs = hs
        self.scheme = scheme or BloomTagScheme()
        # Reuse the direct builder for provider plumbing and entry ports.
        self._base = PathTableBuilder(
            topo, hs, scheme=self.scheme, provider=provider,
            max_path_length=max_path_length,
        )
        self.max_path_length = self._base.max_path_length
        self.universe: Optional[AtomicUniverse] = None
        self.atomization_time_s = 0.0
        # (switch, in_port) -> list of (out_port, atom set)
        self._atomic_actions: Dict[Tuple[str, int], List[Tuple[int, FrozenSet[int]]]] = {}

    # -- precomputation ------------------------------------------------------

    def _collect(self) -> None:
        """Gather every transfer slice, atomise, and convert to atom sets."""
        started = time.perf_counter()
        slices: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}
        generators: List[int] = []
        seen_ports = set()
        for switch_id, info in sorted(self.topo.switches.items()):
            for in_port in sorted(info.ports):
                key = (switch_id, in_port)
                actions = self._base._actions_at(switch_id, in_port)
                per_port: List[Tuple[int, int]] = []
                for action in actions:
                    if action.rewrites:
                        raise ValueError(
                            "atomic mode does not support header rewrites "
                            f"(found on {switch_id})"
                        )
                    per_port.append((action.out_port, action.pred))
                    if action.pred not in seen_ports:
                        seen_ports.add(action.pred)
                        generators.append(action.pred)
                slices[key] = per_port
        self.universe = AtomicUniverse(self.hs.bdd, generators)
        for key, per_port in slices.items():
            self._atomic_actions[key] = [
                (out_port, self.universe.from_bdd(pred))
                for out_port, pred in per_port
            ]
        self.atomization_time_s = time.perf_counter() - started

    # -- construction ----------------------------------------------------------

    def build(self) -> PathTable:
        """Build the table; timing covers traversal only (atomisation is
        reported separately via :attr:`atomization_time_s`)."""
        if self.universe is None:
            self._collect()
        table = PathTable()
        started = time.perf_counter()
        for inport in self._base.entry_ports():
            self._traverse(
                table,
                inport=inport,
                current=inport,
                headers=self.universe.all_atoms,
                hops=(),
                tag=self.scheme.empty_tag,
                visited=frozenset(),
            )
        table.build_time_s = time.perf_counter() - started
        return table

    def _traverse(
        self,
        table: PathTable,
        inport: PortRef,
        current: PortRef,
        headers: FrozenSet[int],
        hops: Tuple[Hop, ...],
        tag: int,
        visited: frozenset,
    ) -> None:
        if current in visited or len(hops) >= self.max_path_length:
            return
        visited = visited | {current}
        for out_port, pred_atoms in self._atomic_actions[
            (current.switch, current.port)
        ]:
            h_next = headers & pred_atoms  # the whole point: set intersection
            if not h_next:
                continue
            hop = Hop(current.port, current.switch, out_port)
            hops_next = hops + (hop,)
            tag_next = self.scheme.add(tag, hop)
            egress = PortRef(current.switch, out_port)
            peer = None if out_port == DROP_PORT else self.topo.link(egress)
            if (
                out_port == DROP_PORT
                or self.topo.is_edge_port(egress)
                or peer is None
            ):
                table.add(
                    inport,
                    egress,
                    PathEntry(
                        headers=self.universe.to_bdd(h_next),
                        hops=hops_next,
                        tag=tag_next,
                    ),
                )
                continue
            self._traverse(
                table, inport, peer, h_next, hops_next, tag_next, visited
            )
