"""Incremental path-table update — Section 4.4 of the paper.

Rebuilding the whole path table on every FlowMod cannot keep up with SDN
update rates, so the paper maintains it incrementally for the common case:
IP-prefix forwarding rules (no ACLs; modification = delete + add).

**Rule forest -> tree.**  Per switch, prefix rules are organised by prefix
containment.  A virtual drop rule ``0.0.0.0/0`` (zero-length prefix) turns
the forest into a single tree, which uniformly handles table misses.  By
longest-prefix match each rule ``R`` actually matches::

    R.match = R.prefix \\ (union of R's children's prefixes)

**Port predicate update.**  Adding rule ``R_i -> x`` under parent
``R_j -> y`` moves exactly ``Δ = R_i.match`` from port ``y`` to ``x``::

    P_x <- P_x ∨ Δ        P_y <- P_y ∧ ¬Δ

Deletion is the mirror image.

**Path entry update.**  The header slice ``Δ`` used to flow out of ``y``
and now flows out of ``x``:

1. every path entry (and downstream reach record) whose path traverses the
   hop ``<*, S, y>`` loses ``Δ`` from its header set (entries that become
   empty are deleted);
2. every header set that *reaches* ``S`` (the builder's reach records)
   contributes ``h ∧ Δ``, which is re-traversed out of port ``x`` —
   merging into existing path entries with the same hop sequence, creating
   new entries (and new reach records) otherwise.

The result is bit-identical to a full rebuild (property-tested in
``tests/core/test_incremental.py``).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..bdd.headerspace import HeaderSpace, format_ipv4, parse_prefix
from ..netmodel.hops import Hop
from ..netmodel.rules import DROP_PORT
from ..netmodel.topology import PortRef, Topology
from .bloom import BloomTagScheme
from .pathtable import PathEntry, PathTable, PathTableBuilder, ReachRecord

__all__ = [
    "PrefixRuleTree",
    "RuleDelta",
    "LpmProvider",
    "IncrementalPathTable",
    "UpdateFlushStats",
]


#: Process-wide change-log epoch allocator, mirroring the path table's
#: dirty-epoch scheme: epochs are unique across all updaters so a cursor
#: minted against one updater can never validate against another.
_CHANGE_EPOCHS = itertools.count(1)


@dataclass
class UpdateFlushStats:
    """What one coalesced flush did (feeds the veridp_update_* metrics)."""

    events: int  # staged rule events covered by this flush
    dirty_switches: int  # switches whose predicates net-changed
    dirty_ports: int  # (switch, port) predicates with a net delta
    elapsed_s: float


@dataclass
class _Node:
    """One rule in the prefix tree."""

    prefix: Tuple[int, int]  # (value, plen)
    out_port: int
    children: List["_Node"] = field(default_factory=list)

    def contains(self, other: Tuple[int, int]) -> bool:
        """Does this node's prefix contain ``other`` (strictly or equally)?"""
        value, plen = self.prefix
        o_value, o_plen = other
        if o_plen < plen:
            return False
        if plen == 0:
            return True
        shift = 32 - plen
        return (o_value >> shift) == (value >> shift)


@dataclass
class RuleDelta:
    """The effect of one mutation: ``Δ`` moved between two ports.

    ``in_port`` restricts the move to paths entering the switch on that
    ingress (used by inbound-ACL updates, which are per-port); ``None``
    means the move applies regardless of ingress (prefix-rule updates).
    """

    switch_id: str
    delta: int  # BDD of the moved header set
    from_port: int
    to_port: int
    in_port: Optional[int] = None


class PrefixRuleTree:
    """Per-switch destination-prefix rules as a containment tree.

    The root is the virtual drop rule ``0.0.0.0/0``; real rules with the
    same zero-length prefix are rejected, as are duplicate prefixes (the
    paper's model has one rule per prefix — priority *is* prefix length).
    """

    def __init__(self, hs: HeaderSpace, switch_id: str) -> None:
        self.hs = hs
        self.switch_id = switch_id
        self.root = _Node(prefix=(0, 0), out_port=DROP_PORT)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- structural helpers ------------------------------------------------

    def _prefix_bdd(self, prefix: Tuple[int, int]) -> int:
        value, plen = prefix
        return self.hs.prefix("dst_ip", value, plen)

    def _node_match(self, node: _Node) -> int:
        """``R.match = R.prefix \\ (∨ children prefixes)`` as a BDD."""
        bdd = self.hs.bdd
        match = self._prefix_bdd(node.prefix)
        for child in node.children:
            match = bdd.diff(match, self._prefix_bdd(child.prefix))
        return match

    def _find_parent(self, prefix: Tuple[int, int]) -> _Node:
        """Deepest existing node strictly containing ``prefix``."""
        node = self.root
        while True:
            nxt = None
            for child in node.children:
                if child.prefix == prefix:
                    raise ValueError(
                        f"duplicate prefix {prefix} on {self.switch_id}"
                    )
                if child.contains(prefix):
                    nxt = child
                    break
            if nxt is None:
                return node
            node = nxt

    def find(self, prefix: Tuple[int, int]) -> Optional[_Node]:
        """The node with exactly this prefix, or ``None``."""
        if prefix == (0, 0):
            return self.root
        node = self.root
        while True:
            for child in node.children:
                if child.prefix == prefix:
                    return child
                if child.contains(prefix):
                    node = child
                    break
            else:
                return None

    # -- mutations -------------------------------------------------------------

    def add(self, prefix: Tuple[int, int], out_port: int) -> RuleDelta:
        """Insert a rule; returns the ``Δ`` moved from the parent's port."""
        if prefix == (0, 0):
            raise ValueError("the zero prefix is reserved for the virtual drop rule")
        parent = self._find_parent(prefix)
        node = _Node(prefix=prefix, out_port=out_port)
        # Children of the parent inside the new prefix move under the new node.
        stolen = [c for c in parent.children if node.contains(c.prefix)]
        for child in stolen:
            parent.children.remove(child)
        node.children = stolen
        parent.children.append(node)
        self._count += 1
        return RuleDelta(
            switch_id=self.switch_id,
            delta=self._node_match(node),
            from_port=parent.out_port,
            to_port=out_port,
        )

    def delete(self, prefix: Tuple[int, int]) -> RuleDelta:
        """Remove a rule; returns the ``Δ`` returned to the parent's port."""
        if prefix == (0, 0):
            raise ValueError("cannot delete the virtual drop rule")
        parent = self.root
        node = None
        while node is None:
            for child in parent.children:
                if child.prefix == prefix:
                    node = child
                    break
                if child.contains(prefix):
                    parent = child
                    break
            else:
                raise KeyError(f"no rule with prefix {prefix} on {self.switch_id}")
        delta = self._node_match(node)
        parent.children.remove(node)
        parent.children.extend(node.children)
        self._count -= 1
        return RuleDelta(
            switch_id=self.switch_id,
            delta=delta,
            from_port=node.out_port,
            to_port=parent.out_port,
        )

    # -- enumeration (persistence) --------------------------------------------

    def rules(self) -> List[Tuple[Tuple[int, int], int]]:
        """Every installed ``(prefix, out_port)``, parents before children.

        The containment tree is canonical (insertion-order independent), so
        re-adding these to an empty tree reproduces it exactly — the form
        snapshots persist.
        """
        out: List[Tuple[Tuple[int, int], int]] = []
        stack = list(reversed(self.root.children))
        while stack:
            node = stack.pop()
            out.append((node.prefix, node.out_port))
            stack.extend(reversed(node.children))
        return out

    # -- full recomputation (for cross-checking) ------------------------------

    def port_predicates(self) -> Dict[int, int]:
        """``P_x`` for every port with rules, plus ``DROP_PORT``, from scratch."""
        bdd = self.hs.bdd
        preds: Dict[int, int] = {DROP_PORT: self.hs.empty}
        stack = [self.root]
        while stack:
            node = stack.pop()
            match = self._node_match(node)
            preds[node.out_port] = bdd.or_(
                preds.get(node.out_port, self.hs.empty), match
            )
            stack.extend(node.children)
        return preds


class LpmProvider:
    """A :class:`~repro.core.pathtable.PredicateProvider` over prefix trees.

    Maintains per-switch port predicates *incrementally*: each tree mutation
    patches exactly two predicates with the returned ``Δ``.  Optional
    per-ingress deny sets model inbound ACLs (the paper's "the incremental
    update can also be performed with ACL rules"): the transfer map for an
    ingress subtracts its denied headers from every forwarding predicate
    and adds them to the drop predicate.
    """

    def __init__(self, topo: Topology, hs: HeaderSpace) -> None:
        self.topo = topo
        self.hs = hs
        self.trees: Dict[str, PrefixRuleTree] = {}
        self._preds: Dict[str, Dict[int, int]] = {}
        # switch -> in_port -> list of deny-entry BDDs (OR = denied set)
        self._in_deny: Dict[str, Dict[int, List[int]]] = {}
        for switch_id, info in topo.switches.items():
            self.trees[switch_id] = PrefixRuleTree(hs, switch_id)
            preds = {port: hs.empty for port in info.ports}
            preds[DROP_PORT] = hs.all_match  # empty tree drops everything
            self._preds[switch_id] = preds
            self._in_deny[switch_id] = {}

    def base_port_predicates(self, switch_id: str) -> Dict[int, int]:
        """The pre-ACL (pure LPM) per-port predicates."""
        return self._preds[switch_id]

    def inbound_denied(self, switch_id: str, in_port: int) -> int:
        """The headers an ingress port's ACL currently denies (a BDD)."""
        entries = self._in_deny[switch_id].get(in_port, [])
        return self.hs.bdd.or_many(entries)

    def transfer_map(self, switch_id: str, in_port: int) -> Dict[int, int]:
        """Per-port predicates for one ingress: LPM minus the ingress denies."""
        base = self._preds[switch_id]
        denied = self.inbound_denied(switch_id, in_port)
        if denied == self.hs.empty:
            return base
        bdd = self.hs.bdd
        derived = {
            port: (
                bdd.or_(pred, denied)
                if port == DROP_PORT
                else bdd.diff(pred, denied)
            )
            for port, pred in base.items()
        }
        return derived

    def add_inbound_deny(self, switch_id: str, in_port: int, pred: int) -> int:
        """Add a deny entry; returns the *newly* denied header set ``Δ``."""
        old = self.inbound_denied(switch_id, in_port)
        self._in_deny[switch_id].setdefault(in_port, []).append(pred)
        new = self.hs.bdd.or_(old, pred)
        return self.hs.bdd.diff(new, old)

    def remove_inbound_deny(self, switch_id: str, in_port: int, pred: int) -> int:
        """Remove a deny entry; returns the *re-allowed* header set ``Δ``."""
        entries = self._in_deny[switch_id].get(in_port, [])
        if pred not in entries:
            raise KeyError(
                f"no such deny entry on {switch_id} port {in_port}"
            )
        old = self.inbound_denied(switch_id, in_port)
        entries.remove(pred)
        new = self.inbound_denied(switch_id, in_port)
        return self.hs.bdd.diff(old, new)

    def iter_rules(self) -> List[Tuple[str, str, int]]:
        """Every installed rule as ``(switch, "a.b.c.d/len", out_port)``.

        Deterministic (switches sorted, tree order within a switch); the
        durable form snapshots record and recovery re-applies.
        """
        out: List[Tuple[str, str, int]] = []
        for switch_id in sorted(self.trees):
            for (value, plen), port in self.trees[switch_id].rules():
                out.append((switch_id, f"{format_ipv4(value)}/{plen}", port))
        return out

    @property
    def has_inbound_denies(self) -> bool:
        """True when any ingress ACL deny is installed (not persisted)."""
        return any(
            entries
            for per_port in self._in_deny.values()
            for entries in per_port.values()
        )

    def add_rule(self, switch_id: str, prefix: str, out_port: int) -> RuleDelta:
        """Insert ``prefix -> out_port`` and patch the port predicates."""
        delta = self.trees[switch_id].add(parse_prefix(prefix), out_port)
        self._apply(delta)
        return delta

    def delete_rule(self, switch_id: str, prefix: str) -> RuleDelta:
        """Remove the rule for ``prefix`` and patch the port predicates."""
        delta = self.trees[switch_id].delete(parse_prefix(prefix))
        self._apply(delta)
        return delta

    def _apply(self, delta: RuleDelta) -> None:
        bdd = self.hs.bdd
        preds = self._preds[delta.switch_id]
        preds.setdefault(delta.from_port, self.hs.empty)
        preds.setdefault(delta.to_port, self.hs.empty)
        preds[delta.from_port] = bdd.diff(preds[delta.from_port], delta.delta)
        preds[delta.to_port] = bdd.or_(preds[delta.to_port], delta.delta)


class IncrementalPathTable:
    """A path table kept synchronised with prefix-rule updates.

    Wraps a builder (with reach recording) and an :class:`LpmProvider`;
    :meth:`add_rule`/:meth:`delete_rule` apply Section 4.4's two-phase
    update and report the elapsed wall time (the Figure 14 metric).
    """

    def __init__(
        self,
        topo: Topology,
        hs: HeaderSpace,
        scheme: Optional[BloomTagScheme] = None,
        provider: Optional[LpmProvider] = None,
        max_path_length: Optional[int] = None,
        build_workers: Optional[int] = None,
    ) -> None:
        self.topo = topo
        self.hs = hs
        self.scheme = scheme or BloomTagScheme()
        self.provider = provider or LpmProvider(topo, hs)
        self.builder = PathTableBuilder(
            topo,
            hs,
            scheme=self.scheme,
            provider=self.provider,
            max_path_length=max_path_length,
            record_reach=True,
        )
        self.table: PathTable = self.builder.build(workers=build_workers)
        self.last_update_s: float = 0.0
        self._pending_events: int = 0
        self._staged_preds: Dict[str, Dict[int, int]] = {}
        self.last_flush: Optional[UpdateFlushStats] = None
        self._change_feed: List[int] = []
        self._change_log: List[int] = []
        self._change_epoch: int = next(_CHANGE_EPOCHS)

    @classmethod
    def restore(
        cls,
        topo: Topology,
        hs: HeaderSpace,
        table: PathTable,
        reach_index: Dict[str, List[ReachRecord]],
        scheme: Optional[BloomTagScheme] = None,
        provider: Optional[LpmProvider] = None,
        max_path_length: Optional[int] = None,
    ) -> "IncrementalPathTable":
        """Adopt an already-materialised table instead of rebuilding.

        The crash-recovery path (:mod:`repro.persist.recovery`) deserializes
        the path table and reachability index from a snapshot; running
        Algorithm 2 again would defeat the point of snapshotting.  The
        caller guarantees ``table``/``reach_index`` were produced against
        ``provider``'s current predicates and ``hs``'s node table.
        """
        inst = cls.__new__(cls)
        inst.topo = topo
        inst.hs = hs
        inst.scheme = scheme or BloomTagScheme()
        inst.provider = provider or LpmProvider(topo, hs)
        inst.builder = PathTableBuilder(
            topo,
            hs,
            scheme=inst.scheme,
            provider=inst.provider,
            max_path_length=max_path_length,
            record_reach=True,
        )
        inst.builder.reach_index = reach_index
        inst.table = table
        inst.last_update_s = 0.0
        inst._pending_events = 0
        inst._staged_preds = {}
        inst.last_flush = None
        inst._change_feed = []
        inst._change_log = []
        inst._change_epoch = next(_CHANGE_EPOCHS)
        return inst

    # -- public update API ----------------------------------------------------

    def add_rule(self, switch_id: str, prefix: str, out_port: int) -> float:
        """Install a prefix rule and update the path table incrementally.

        Returns the update's wall-clock seconds.
        """
        if self._pending_events:
            self.flush_updates()
        started = time.perf_counter()
        delta = self.provider.add_rule(switch_id, prefix, out_port)
        self._apply_move(delta)
        self._record_change(delta)
        self.last_update_s = time.perf_counter() - started
        return self.last_update_s

    def delete_rule(self, switch_id: str, prefix: str) -> float:
        """Remove a prefix rule and update the path table incrementally."""
        if self._pending_events:
            self.flush_updates()
        started = time.perf_counter()
        delta = self.provider.delete_rule(switch_id, prefix)
        self._apply_move(delta)
        self._record_change(delta)
        self.last_update_s = time.perf_counter() - started
        return self.last_update_s

    # -- coalesced (batched) updates ------------------------------------------

    @property
    def pending_updates(self) -> int:
        """Staged rule events not yet folded into the path table."""
        return self._pending_events

    def stage_add_rule(self, switch_id: str, prefix: str, out_port: int) -> None:
        """Install a prefix rule, deferring table recompute to the flush.

        The provider (prefix tree + port predicates) is mutated immediately
        — tree surgery is sequential and cheap — but the table-wide
        subtract/extend phases, the per-event O(paths) cost, run once per
        :meth:`flush_updates` over the batch's *net* predicate deltas.
        Verification between stage and flush sees the pre-batch table (the
        coalescing window's staleness tradeoff; the WAL is written at stage
        time, so durability is unaffected).
        """
        self._snapshot_preds(switch_id)
        self.provider.add_rule(switch_id, prefix, out_port)
        self._pending_events += 1

    def stage_delete_rule(self, switch_id: str, prefix: str) -> None:
        """Remove a prefix rule, deferring table recompute to the flush."""
        self._snapshot_preds(switch_id)
        self.provider.delete_rule(switch_id, prefix)
        self._pending_events += 1

    def _snapshot_preds(self, switch_id: str) -> None:
        """Capture a switch's pre-batch predicates at first touch."""
        if switch_id not in self._staged_preds:
            self._staged_preds[switch_id] = dict(
                self.provider.base_port_predicates(switch_id)
            )

    # -- change feed -----------------------------------------------------------

    #: Feed slots kept before old change predicates are OR-collapsed; the
    #: feed is for an (optional) single consumer, so this only bounds the
    #: memory of a run that never drains it.
    CHANGE_FEED_CAP = 64

    #: Cursor-log bound (multi-consumer API).  Past this the log resets and
    #: the epoch bumps — every cursor holder then gets ``None`` from
    #: :meth:`changes_since` and must treat all header space as changed,
    #: exactly like a dirty-pair journal overflow.
    CHANGE_LOG_CAP = 256

    def _record_change(self, delta) -> None:
        if delta.delta == self.hs.empty or delta.from_port == delta.to_port:
            return
        self._push_change(delta.delta)

    def _push_change(self, predicate: int) -> None:
        self._change_feed.append(predicate)
        if len(self._change_feed) > self.CHANGE_FEED_CAP:
            self._change_feed = [self.hs.bdd.or_many(self._change_feed)]
        self._change_log.append(predicate)
        if len(self._change_log) > self.CHANGE_LOG_CAP:
            self._change_log.clear()
            self._change_epoch = next(_CHANGE_EPOCHS)

    # -- cursor-based change log (multi-consumer) ------------------------------

    def change_token(self) -> Tuple[int, int]:
        """Opaque cursor over the change log, positioned at "now".

        Unlike :meth:`drain_change_feed` (single consumer, destructive),
        any number of consumers can hold independent cursors and call
        :meth:`changes_since`; the isolation verifier and the prober can
        therefore both ride rule churn without stealing each other's
        updates.
        """
        return (self._change_epoch, len(self._change_log))

    def changes_since(
        self, token: Optional[Tuple[int, int]]
    ) -> Tuple[Tuple[int, int], Optional[List[int]]]:
        """Changed-header predicates since ``token`` plus a fresh cursor.

        Returns ``(new_token, predicates)`` where ``predicates`` is ``None``
        when the log overflowed since the token was minted (or the caller
        never synced): the consumer must then treat the whole header space
        as potentially changed.  Mirrors
        :meth:`repro.core.pathtable.PathTable.dirty_since`.
        """
        current = (self._change_epoch, len(self._change_log))
        if token is None or token[0] != self._change_epoch:
            return current, None
        return current, list(self._change_log[token[1] :])

    def drain_change_feed(self) -> List[int]:
        """The header-set predicates every update since the last drain moved.

        Each element is the union, over one update (or one coalesced
        flush), of the slices that changed egress somewhere — ``lost ∪
        gained`` across the touched switches.  The dirty-pair journal says
        *which pairs* to re-examine; this feed says *which headers* within
        them, letting the prober aim a witness inside the changed slice
        even when hop-equivalence merged it into a wider entry.  Single
        consumer: draining empties the feed.
        """
        feed, self._change_feed = self._change_feed, []
        return feed

    def flush_updates(self) -> UpdateFlushStats:
        """Fold every staged event into the path table in one pass.

        Computes the batch's net per-(switch, port) predicate change —
        ``lost = P_old ∧ ¬P_new`` and ``gained = P_new ∧ ¬P_old`` against
        the predicates captured when each switch was first staged — then
        runs *one* subtract scan over the table (each entry loses the union
        of the lost slices along its hops) and one extend pass per dirty
        switch.  Events that cancel out within the batch (add then delete)
        produce empty deltas and cost nothing.  The result is BDD-identical
        to applying the events one at a time (property-tested).
        """
        started = time.perf_counter()
        events = self._pending_events
        staged = self._staged_preds
        self._pending_events = 0
        self._staged_preds = {}
        empty = self.hs.empty
        bdd = self.hs.bdd
        minus: Dict[str, Dict[int, int]] = {}
        plus: Dict[str, Dict[int, int]] = {}
        changed_terms: List[int] = []
        for switch_id, old_preds in staged.items():
            new_preds = self.provider.base_port_predicates(switch_id)
            lost_ports: Dict[int, int] = {}
            gained_ports: Dict[int, int] = {}
            for port in old_preds.keys() | new_preds.keys():
                old = old_preds.get(port, empty)
                new = new_preds.get(port, empty)
                if old == new:
                    continue
                lost = bdd.diff(old, new)
                gained = bdd.diff(new, old)
                if lost != empty:
                    lost_ports[port] = lost
                    changed_terms.append(lost)
                if gained != empty:
                    gained_ports[port] = gained
                    changed_terms.append(gained)
            if lost_ports:
                minus[switch_id] = lost_ports
            if gained_ports:
                plus[switch_id] = gained_ports
        dirty_ports = sum(len(v) for v in minus.values()) + sum(
            len(v) for v in plus.values()
        )
        if minus or plus:
            self._coalesced_subtract(minus)
            self._coalesced_extend(plus)
            self.table.touch(tracked=True)
        if changed_terms:
            self._push_change(bdd.or_many(changed_terms))
        elapsed = time.perf_counter() - started
        self.last_update_s = elapsed
        stats = UpdateFlushStats(
            events=events,
            dirty_switches=len(staged),
            dirty_ports=dirty_ports,
            elapsed_s=elapsed,
        )
        self.last_flush = stats
        return stats

    def _coalesced_subtract(self, minus: Dict[str, Dict[int, int]]) -> None:
        """One table scan removing every lost slice along each path."""
        bdd = self.hs.bdd
        empty = self.hs.empty

        def removed_for(hops: Tuple[Hop, ...]) -> int:
            terms = []
            for hop in hops:
                ports = minus.get(hop.switch)
                if ports is not None:
                    lost = ports.get(hop.out_port)
                    if lost is not None:
                        terms.append(lost)
            if not terms:
                return empty
            return bdd.or_many(terms)

        for inport, outport, entry in list(self.table.all_entries()):
            lost = removed_for(entry.hops)
            if lost == empty:
                continue
            trimmed = bdd.diff(entry.headers, lost)
            if trimmed != entry.headers:
                entry.headers = trimmed
                self.table.note_dirty(inport, outport)
        self.table.remove_empty(self.hs)

        for records in self.builder.reach_index.values():
            kept = []
            for record in records:
                lost = removed_for(record.hops)
                if lost != empty:
                    record.headers = bdd.diff(record.headers, lost)
                if record.headers != empty:
                    kept.append(record)
            records[:] = kept

    def _coalesced_extend(self, plus: Dict[str, Dict[int, int]]) -> None:
        """Re-traverse each gained slice from the records reaching its switch."""
        bdd = self.hs.bdd
        empty = self.hs.empty
        for switch_id in sorted(plus):
            gained_ports = plus[switch_id]
            for record in list(self.builder.reach_index.get(switch_id, ())):
                transfer: Optional[Dict[int, int]] = None
                for to_port in sorted(gained_ports):
                    h = bdd.and_(record.headers, gained_ports[to_port])
                    if h == empty:
                        continue
                    if transfer is None:
                        transfer = self.provider.transfer_map(
                            switch_id, record.in_port
                        )
                    h = bdd.and_(h, transfer.get(to_port, empty))
                    if h == empty:
                        continue
                    self._extend_slice(record, to_port, h)

    def add_inbound_deny(self, switch_id: str, in_port: int, pred: int) -> float:
        """Install an inbound-ACL deny entry and update incrementally.

        ``pred`` is the denied header set as a BDD (use
        ``Match.to_bdd(hs)`` to build one from a match).  Per affected
        egress port ``y``, the slice ``Δ ∧ P_y`` moves ``y -> ⊥`` for paths
        entering the switch at ``in_port``.
        """
        if self._pending_events:
            self.flush_updates()
        started = time.perf_counter()
        delta = self.provider.add_inbound_deny(switch_id, in_port, pred)
        self._apply_acl_delta(switch_id, in_port, delta, deny=True)
        self.last_update_s = time.perf_counter() - started
        return self.last_update_s

    def remove_inbound_deny(self, switch_id: str, in_port: int, pred: int) -> float:
        """Remove an inbound-ACL deny entry and update incrementally."""
        if self._pending_events:
            self.flush_updates()
        started = time.perf_counter()
        delta = self.provider.remove_inbound_deny(switch_id, in_port, pred)
        self._apply_acl_delta(switch_id, in_port, delta, deny=False)
        self.last_update_s = time.perf_counter() - started
        return self.last_update_s

    def _apply_acl_delta(
        self, switch_id: str, in_port: int, delta: int, deny: bool
    ) -> None:
        if delta == self.hs.empty:
            return
        bdd = self.hs.bdd
        base = self.provider.base_port_predicates(switch_id)
        for port in sorted(base):
            if port == DROP_PORT:
                continue  # ⊥-to-⊥ is a no-op
            slice_ = bdd.and_(delta, base[port])
            if slice_ == self.hs.empty:
                continue
            from_port, to_port = (port, DROP_PORT) if deny else (DROP_PORT, port)
            self._apply_move(
                RuleDelta(
                    switch_id=switch_id,
                    delta=slice_,
                    from_port=from_port,
                    to_port=to_port,
                    in_port=in_port,
                )
            )

    def rebuild(self) -> PathTable:
        """Full Algorithm 2 rebuild (the baseline Figure 14 compares against).

        Staged provider mutations are already live in the predicates, so a
        rebuild absorbs them; the staging bookkeeping is simply cleared.
        """
        self._pending_events = 0
        self._staged_preds = {}
        self.table = self.builder.build()
        return self.table

    # -- Section 4.4's two phases ---------------------------------------------

    def _apply_move(self, delta: RuleDelta) -> None:
        if delta.delta == self.hs.empty or delta.from_port == delta.to_port:
            return
        self._subtract_phase(delta)
        self._extend_phase(delta)
        # Both phases mutate entry header sets in place (invisible to the
        # table's own mutators), so bump the version for flow caches and
        # pair fast-indexes; per-entry compiled matchers self-heal via
        # their source-id check.  Every mutated pair was noted in the dirty
        # journal, so delta consumers need not treat the bump as a full
        # invalidation.
        self.table.touch(tracked=True)

    def _subtract_phase(self, delta: RuleDelta) -> None:
        """Remove ``Δ`` from paths (and reach records) through ``<S, from>``."""
        bdd = self.hs.bdd
        switch_id, from_port = delta.switch_id, delta.from_port
        acl_in_port = delta.in_port

        def diverts(hops: Tuple[Hop, ...]) -> bool:
            return any(
                hop.switch == switch_id
                and hop.out_port == from_port
                and (acl_in_port is None or hop.in_port == acl_in_port)
                for hop in hops
            )

        for inport, outport, entry in list(self.table.all_entries()):
            if diverts(entry.hops):
                trimmed = bdd.diff(entry.headers, delta.delta)
                if trimmed != entry.headers:
                    entry.headers = trimmed
                    self.table.note_dirty(inport, outport)
        self.table.remove_empty(self.hs)

        for records in self.builder.reach_index.values():
            kept = []
            for record in records:
                if diverts(record.hops):
                    record.headers = bdd.diff(record.headers, delta.delta)
                if record.headers != self.hs.empty:
                    kept.append(record)
            records[:] = kept

    def _extend_phase(self, delta: RuleDelta) -> None:
        """Re-traverse ``h ∧ Δ`` out of the new port for every reach record."""
        bdd = self.hs.bdd
        switch_id, to_port = delta.switch_id, delta.to_port
        records = list(self.builder.reach_index.get(switch_id, ()))
        for record in records:
            if delta.in_port is not None and record.in_port != delta.in_port:
                continue
            h = bdd.and_(record.headers, delta.delta)
            if h == self.hs.empty:
                continue
            # Respect this ingress's post-update behaviour: a slice that the
            # ingress ACL (still) denies must not be extended out of a
            # forwarding port.
            allowed = self.provider.transfer_map(switch_id, record.in_port).get(
                to_port, self.hs.empty
            )
            h = bdd.and_(h, allowed)
            if h == self.hs.empty:
                continue
            self._extend_slice(record, to_port, h)

    def _extend_slice(self, record: ReachRecord, to_port: int, headers: int) -> None:
        """Push one re-traversed slice out of ``to_port`` at the record's switch."""
        switch_id = record.switch
        hop = Hop(record.in_port, switch_id, to_port)
        hops = record.hops + (hop,)
        tag = self.scheme.add(record.tag, hop)
        egress = PortRef(switch_id, to_port)
        visited = {PortRef(h_.switch, h_.in_port) for h_ in record.hops}
        visited.add(PortRef(switch_id, record.in_port))
        if to_port == DROP_PORT or self.topo.is_edge_port(egress):
            self._merge_entry(record.inport, egress, headers, hops, tag)
            return
        peer = self.topo.link(egress)
        if peer is None:
            self._merge_entry(record.inport, egress, headers, hops, tag)
            return
        self._continue_traverse(
            record.inport, peer, headers, hops, tag, frozenset(visited)
        )

    def _continue_traverse(
        self,
        inport: PortRef,
        current: PortRef,
        headers: int,
        hops: Tuple[Hop, ...],
        tag: int,
        visited: frozenset,
    ) -> None:
        """Algorithm 2's recursion, merging into the live table."""
        if current in visited or len(hops) >= self.builder.max_path_length:
            return
        self.builder.reach_index.setdefault(current.switch, []).append(
            ReachRecord(
                inport=inport,
                switch=current.switch,
                in_port=current.port,
                headers=headers,
                hops=hops,
                tag=tag,
            )
        )
        visited = visited | {current}
        bdd = self.hs.bdd
        transfer = self.provider.transfer_map(current.switch, current.port)
        for out_port in sorted(transfer):
            h_next = bdd.and_(headers, transfer[out_port])
            if h_next == self.hs.empty:
                continue
            hop = Hop(current.port, current.switch, out_port)
            hops_next = hops + (hop,)
            tag_next = self.scheme.add(tag, hop)
            egress = PortRef(current.switch, out_port)
            if (
                out_port == DROP_PORT
                or self.topo.is_edge_port(egress)
                or self.topo.link(egress) is None
            ):
                self._merge_entry(inport, egress, h_next, hops_next, tag_next)
                continue
            self._continue_traverse(
                inport, self.topo.link(egress), h_next, hops_next, tag_next, visited
            )

    def _merge_entry(
        self,
        inport: PortRef,
        outport: PortRef,
        headers: int,
        hops: Tuple[Hop, ...],
        tag: int,
    ) -> None:
        """Union into an existing same-hops entry, or append a new one."""
        bdd = self.hs.bdd
        for entry in self.table.lookup(inport, outport):
            if entry.hops == hops:
                merged = bdd.or_(entry.headers, headers)
                if merged != entry.headers:
                    entry.headers = merged
                    self.table.note_dirty(inport, outport)
                return
        self.table.add(inport, outport, PathEntry(headers, hops, tag))
