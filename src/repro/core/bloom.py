"""Bloom-filter path tags (Section 5, "Bloom filter").

Each switch ORs ``BF(input_port || switch_ID || output_port)`` into the
packet's tag.  Following the paper we use Kirsch-Mitzenmacher double hashing
[38] on top of a single 32-bit Murmur3 hash [12]:

* ``h1`` and ``h2`` are the two 16-bit halves of ``murmur3_32(hop_bytes)``,
* ``g_i(x) = h1(x) + i * h2(x)`` for ``i = 0, 1, ..., k-1`` (k = 3),
* each ``g_i`` selects one bit of the ``m``-bit filter.

``m`` defaults to 16 bits (the width the paper carries in a VLAN TCI) and is
swept from 8 to 64 in the Figure 12 experiment.

The module also implements the *hash-based XOR tagging* the authors
considered and rejected (Section 3.3): it detects deviations equally well
but destroys the per-hop membership information fault localization needs.
It is retained here for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from ..netmodel.hops import Hop

__all__ = [
    "murmur3_32",
    "BloomTagScheme",
    "XorTagScheme",
    "DEFAULT_TAG_BITS",
    "DEFAULT_NUM_HASHES",
]

DEFAULT_TAG_BITS = 16
DEFAULT_NUM_HASHES = 3

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, shift: int) -> int:
    value &= _MASK32
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit, implemented from scratch.

    Matches the reference implementation (verified against published test
    vectors in the unit tests).
    """
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h = seed & _MASK32
    length = len(data)
    rounded = length - (length % 4)

    for offset in range(0, rounded, 4):
        k = int.from_bytes(data[offset : offset + 4], "little")
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    tail = data[rounded:]
    k = 0
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * c1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * c2) & _MASK32
        h ^= k

    h ^= length
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


@dataclass(frozen=True)
class BloomTagScheme:
    """The paper's tagging scheme: a per-hop Bloom filter OR-ed into the tag.

    Instances are immutable and cheap; the hop->bitmask mapping is memoised
    per scheme in a module-level cache keyed by ``(bits, hashes)``.
    """

    bits: int = DEFAULT_TAG_BITS
    hashes: int = DEFAULT_NUM_HASHES

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"tag width must be positive, got {self.bits}")
        if self.hashes <= 0:
            raise ValueError(f"hash count must be positive, got {self.hashes}")

    @property
    def empty_tag(self) -> int:
        """The tag a packet carries when it enters the network (all zeros)."""
        return 0

    @property
    def tag_mask(self) -> int:
        """Bitmask of valid tag bits."""
        return (1 << self.bits) - 1

    def hop_filter(self, hop: Hop) -> int:
        """``BF(x || s || y)``: the k-bit-set Bloom filter of a single hop."""
        cache = _hop_filter_cache.setdefault((self.bits, self.hashes), {})
        cached = cache.get(hop)
        if cached is not None:
            return cached
        digest = murmur3_32(hop.key_bytes())
        h1 = digest & 0xFFFF
        h2 = digest >> 16
        mask = 0
        for i in range(self.hashes):
            mask |= 1 << ((h1 + i * h2) % self.bits)
        cache[hop] = mask
        return mask

    def add(self, tag: int, hop: Hop) -> int:
        """Algorithm 1 line 4: ``tag <- tag ⊔ BF(x||s||y)``."""
        return tag | self.hop_filter(hop)

    def tag_of_path(self, hops: Iterable[Hop]) -> int:
        """The tag a packet correctly following ``hops`` would carry."""
        tag = 0
        for hop in hops:
            tag |= self.hop_filter(hop)
        return tag

    def may_contain(self, tag: int, hop: Hop) -> bool:
        """Bloom membership test ``BF(hop) ⊓ tag == BF(hop)``.

        False means the hop is definitely *not* in the path the tag encodes;
        True means it probably is (one-sided error — this is what drives
        both Algorithm 4 and its false positives).
        """
        hop_filter = self.hop_filter(hop)
        return (hop_filter & tag) == hop_filter

    def saturation(self, tag: int) -> float:
        """Fraction of tag bits set — a diagnostic for path-length capacity."""
        return bin(tag & self.tag_mask).count("1") / self.bits

    def false_positive_probability(self, path_length: int) -> float:
        """Analytic single-hop false-positive estimate for an n-hop tag.

        Standard Bloom bound: ``(1 - (1 - 1/m)^{k n})^k``.  Used to sanity-
        check the measured Figure 12 curves.
        """
        if path_length <= 0:
            return 0.0
        fill = 1.0 - (1.0 - 1.0 / self.bits) ** (self.hashes * path_length)
        return fill**self.hashes


_hop_filter_cache: Dict[Tuple[int, int], Dict[Hop, int]] = {}


@dataclass(frozen=True)
class XorTagScheme:
    """The rejected hash-XOR tagging design (Section 3.3 discussion).

    ``tag <- tag XOR hash(hop)`` verifies full-path equality just as well as
    the Bloom scheme, but a partially-built tag carries no usable membership
    information, so :meth:`may_contain` cannot be implemented — the property
    the paper exploits for localization is structurally absent.  Kept for
    the ablation benchmark comparing detection vs localization power.
    """

    bits: int = DEFAULT_TAG_BITS

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"tag width must be positive, got {self.bits}")

    @property
    def empty_tag(self) -> int:
        """Initial tag value."""
        return 0

    @property
    def tag_mask(self) -> int:
        """Bitmask of valid tag bits."""
        return (1 << self.bits) - 1

    def hop_value(self, hop: Hop) -> int:
        """The per-hop hash folded to the tag width."""
        digest = murmur3_32(hop.key_bytes())
        value = 0
        remaining = digest
        while remaining:
            value ^= remaining & self.tag_mask
            remaining >>= self.bits
        return value or 1  # never contribute a zero (would be invisible)

    def add(self, tag: int, hop: Hop) -> int:
        """XOR-accumulate one hop."""
        return tag ^ self.hop_value(hop)

    def tag_of_path(self, hops: Iterable[Hop]) -> int:
        """Expected tag for a full path."""
        tag = 0
        for hop in hops:
            tag ^= self.hop_value(hop)
        return tag
